"""The fabric front-end: one monitor surface over N shard processes.

:class:`FabricMonitor` is shaped exactly like a
:class:`~repro.core.monitor.ConstraintMonitor`, so the existing
:class:`~repro.service.server.ConstraintService` serves it unchanged —
same wire protocol, same queue/deadline/backpressure machinery — and
every existing :class:`~repro.service.client.ServiceClient` talks to a
fleet without knowing it.  Underneath, each shard of the partition is a
``repro serve`` *subprocess* (spawned by a
:class:`~repro.fabric.supervisor.FleetSupervisor`), reached over its own
JSON-lines connection.

Routing decisions come from the shared
:class:`~repro.fabric.topology.ShardTopology` — the same planner that
drives the in-process :class:`~repro.service.shard.ShardedMonitor` — so
the fleet inherits its verdict-identity guarantees: commits and absorbs
fan out only to the ind/co-write coupled closure of affected shards,
decoupled shards backlog the op router-side, and ``status_all``
scatter-gathers across the fleet.

What the cross-process setting adds:

* **Router-side invalidation.**  Every applied op carries ``touched``
  (the coupled closure against that shard's own pending set), and the
  router holds mirror verdict caches (:class:`MonitorEntry` per
  constraint).  Invalidation lists are computed *here*, never asked of
  a shard — a freshly respawned shard has empty caches and would
  under-report, breaking parity with the single-process fleet.
* **A journal that is the source of truth.**  The router journals every
  wire op *before* sending it (and every backlogged op as a ``skip``
  record), optionally to a durable on-disk
  :class:`~repro.fabric.journal.FabricJournal`.  A shard's state is
  *defined* as its journal: when a shard dies — or answers ambiguously
  (``deadline``/``internal``: the op's fate on the shard is unknown) —
  the router respawns it from the seed database and replays the
  journal, forcing the shard back into exactly the journaled state.
  Only a *definitive* rejection (the shard was alive and refused the
  op) removes the record, via a durable ``revoke``.
* **Crash recovery.**  :meth:`FabricMonitor.recover` rebuilds the whole
  router — fleet map, verdict mirrors, per-shard backlogs, the front
  database's pending set — from the on-disk journal after a router
  crash, tolerating a torn final record and completing the at most one
  op the single-threaded mutation path can leave partially fanned out.
* **A liveness circuit breaker.**  A crash-looping shard (respawned
  over and over by the
  :class:`~repro.fabric.supervisor.LivenessWatchdog`) is *broken*:
  reads against it fail fast with ``code="circuit-open"``, mutations
  keep journaling durably, and ``/healthz``/``/fabricz`` degrade
  instead of the fleet respawn-storming.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.monitor import MonitorEntry, coupled_relations
from repro.core.results import DCSatResult
from repro.errors import FabricError, ReproError, ServiceError
from repro.fabric.journal import FabricJournal
from repro.fabric.topology import AppliedOp, ShardAction, ShardTopology
from repro.obs.log import get_logger
from repro.obs.trace import default_tracer, span as obs_span
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.relational.transaction import Transaction
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.metrics import MetricsRegistry

log = get_logger("fabric.router")

#: How long the router gives a shard for one replayed journal op.
REPLAY_DEADLINE = 60.0

#: Per-shard socket timeout when the caller does not pick one.  Heavy
#: solves stay well under it; a peer that never answers at all turns
#: into an ambiguous ``unavailable`` failure instead of a wedged router.
DEFAULT_SHARD_TIMEOUT = 120.0

#: Error codes after which the shard's state is unknowable from here:
#: ``unavailable`` (transport died), ``deadline`` (the server answers
#: early but still completes the op in its solver thread) and
#: ``internal`` (the op blew up somewhere midway).  The router resolves
#: all three the same way — respawn and replay the journal, forcing the
#: shard into exactly the journaled state.  Every other code is a
#: definitive rejection by a live shard.
AMBIGUOUS_CODES = frozenset({"unavailable", "deadline", "internal"})

#: The wire ops that change global database state (vs. placement ops).
STATE_OPS = frozenset({"issue", "commit", "forget", "absorb"})


def compact_records(records: list[dict]) -> list[dict] | None:
    """The absorb-rewrite: a semantically equivalent, shorter journal.

    * ``issue`` + later ``commit`` of the same transaction collapse into
      a single ``absorb`` record at the commit's position and sequence
      number — identical net database state (the insert lands in the
      base, the pending entry never existed), which is all a replay
      needs since replayed shards start with cold caches anyway.
    * ``issue`` + ``forget`` pairs vanish; so do ``register`` +
      ``unregister`` pairs.
    * ``skip`` records superseded by a later applied record with the
      same sequence number (the backlog entry was drained) are dropped;
      **live** skip records — the shard's actual backlog — are kept
      verbatim, preserving post-recovery drain behavior exactly.

    Returns ``None`` when the journal does not look self-contained (a
    commit or forget without its issue, an unregister without its
    register, an unknown record kind): compaction then refuses rather
    than guessing.
    """
    op_gs = {r["g"] for r in records if r.get("k") == "op"}
    drop: set[int] = set()
    replace: dict[int, dict] = {}
    register_at: dict[str, int] = {}
    issue_at: dict[str, int] = {}
    for i, record in enumerate(records):
        kind = record.get("k")
        if kind == "skip":
            if record["g"] in op_gs:
                drop.add(i)
            continue
        if kind != "op":
            return None
        op = record["op"]
        if op == "register":
            register_at[record["args"]["name"]] = i
        elif op == "unregister":
            j = register_at.pop(record["args"]["name"], None)
            if j is None:
                return None
            drop.add(j)
            drop.add(i)
        elif op == "issue":
            issue_at[record["args"]["tx"]["id"]] = i
        elif op == "commit":
            j = issue_at.pop(record["args"]["tx_id"], None)
            if j is None:
                return None
            drop.add(j)
            replace[i] = {
                "g": record["g"],
                "k": "op",
                "op": "absorb",
                "args": {"tx": records[j]["args"]["tx"]},
            }
        elif op == "forget":
            j = issue_at.pop(record["args"]["tx_id"], None)
            if j is None:
                return None
            drop.add(j)
            drop.add(i)
    return [
        replace.get(i, record)
        for i, record in enumerate(records)
        if i not in drop
    ]


class RemoteShard:
    """One shard connection plus the journal that can rebuild it."""

    def __init__(self, index: int, slot):
        self.index = index
        self._slot = slot
        self.client: ServiceClient | None = None
        #: Every journal record for this shard, in append order — the
        #: ``k == "op"`` records, replayed against a fresh seed-state
        #: server, reproduce the shard (``skip`` records are the
        #: router-side backlog; definitive rejections are removed here
        #: and revoked on disk).
        self.journal: list[dict] = []
        #: Serializes mutations, reads, revives and watchdog respawns
        #: touching this shard (scatter threads each lock their own).
        self.lock = threading.RLock()
        #: Below this journal length, skip re-attempting a compaction
        #: that could not shrink the journal last time.
        self.compact_floor = 0

    @property
    def footprint(self) -> frozenset[str]:
        return self._slot.footprint

    @property
    def names(self) -> list[str]:
        return self._slot.names

    @property
    def skipped(self) -> list:
        return self._slot.skipped

    @property
    def flushes(self) -> int:
        return self._slot.flushes

    def connect(self, handle, timeout: float | None = None) -> None:
        if self.client is not None:
            self.client.close()
        # Never block on a shard forever: a half-dead peer (wedged
        # server thread, socket accepted into a dying listener's
        # backlog) must surface as an ambiguous transport failure the
        # revive path handles, not hang the router.
        self.client = ServiceClient(
            handle.host,
            handle.port,
            timeout=DEFAULT_SHARD_TIMEOUT if timeout is None else timeout,
            connect_timeout=10.0,
        )

    def close(self) -> None:
        if self.client is not None:
            self.client.close()
            self.client = None


class FabricMonitor:
    """The routing front of a cross-process shard fleet.

    *fleet* is a started (or startable)
    :class:`~repro.fabric.supervisor.FleetSupervisor` — or any object
    with the same surface, e.g. a
    :class:`~repro.fabric.supervisor.ThreadFleet`; ``fleet.count``
    fixes the shard count.  *db* must be the same seed state the shard
    servers load, or journal replay would diverge from reality.

    *journal* makes the write-ahead journal durable: every record is
    framed to disk before the wire send, so
    :meth:`FabricMonitor.recover` can rebuild this whole object after a
    router crash.  *journal_max_ops* bounds the per-shard journal
    length: past it, the journal is compacted (see
    :func:`compact_records`) and — when durable — snapshotted, so disk
    use stays proportional to live state, not history.
    """

    def __init__(
        self,
        db: BlockchainDatabase,
        fleet,
        max_skipped: int = 512,
        metrics: MetricsRegistry | None = None,
        journal: FabricJournal | None = None,
        journal_max_ops: int = 0,
        shard_timeout: float | None = None,
    ):
        if journal is not None and journal.count != fleet.count:
            raise FabricError(
                f"journal is for {journal.count} shards, fleet has {fleet.count}"
            )
        self._topology = ShardTopology(db, fleet.count, max_skipped=max_skipped)
        self._fleet = fleet
        self._shards = [
            RemoteShard(slot.index, slot) for slot in self._topology.slots
        ]
        #: Mirror entries: verdict caches and counters, global order.
        self._entries: dict[str, MonitorEntry] = {}
        self._metrics = metrics
        self._journal = journal
        self._journal_max_ops = journal_max_ops
        self._shard_timeout = shard_timeout
        #: shard index -> reason, for circuit-broken (crash-looping)
        #: shards: no more respawns, reads fail fast, health degrades.
        self._broken: dict[int, str] = {}
        self._watchdog = None
        #: Times this router instance was rebuilt from the durable
        #: journal (0 for a fresh boot; :meth:`recover` sets it).
        self.recoveries = 0
        #: Per-constraint ledger components dirtied by the most recent
        #: routed state change, merged from every shard the op reached
        #: (each shard server reports its monitor's
        #: ``last_dirty_components`` on the wire).
        self.last_dirty_components: dict[str, int] = {}
        self._executor: ThreadPoolExecutor | None = None
        if any(handle is None for handle in fleet.handles):
            fleet.start()
        for shard in self._shards:
            shard.connect(fleet.handle(shard.index), timeout=shard_timeout)

    @property
    def epoch(self) -> int:
        return self._topology.epoch

    @property
    def topology(self) -> ShardTopology:
        return self._topology

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    # ------------------------------------------------------------------
    # Recovery

    @classmethod
    def recover(
        cls,
        db: BlockchainDatabase,
        fleet,
        journal: FabricJournal,
        max_skipped: int = 512,
        metrics: MetricsRegistry | None = None,
        journal_max_ops: int = 0,
        shard_timeout: float | None = None,
    ) -> "FabricMonitor":
        """Rebuild a router (and its shard fleet) from a durable journal.

        *fleet* must be freshly started over the same seed *db* the
        crashed router used.  The journal is loaded shard by shard
        (tolerating a torn final record per file), and from it this
        rebuilds: constraint placement and verdict-mirror entries, the
        front database's pending set, per-shard backlogs and pending
        mirrors, and the routing sequence.  The at-most-one state op the
        crash can have left partially fanned out (mutations are
        single-threaded) is completed through the normal routing rule.
        Finally every shard subprocess is replayed into its journaled
        state.
        """
        monitor = cls(
            db,
            fleet,
            max_skipped=max_skipped,
            metrics=metrics,
            journal=journal,
            journal_max_ops=journal_max_ops,
            shard_timeout=shard_timeout,
        )
        loaded = journal.load_all()
        torn = sum(lj.torn_bytes for lj in loaded)
        topo = monitor._topology
        for shard, lj in zip(monitor._shards, loaded):
            shard.journal = list(lj.records)

        # Placement + verdict mirrors: the surviving register records of
        # each shard's journal say exactly what lives there.
        for shard, lj in zip(monitor._shards, loaded):
            placed: dict[str, dict] = {}
            for record in lj.records:
                if record["k"] != "op":
                    continue
                if record["op"] == "register":
                    placed[record["args"]["name"]] = record["args"]
                elif record["op"] == "unregister":
                    placed.pop(record["args"]["name"], None)
            for name, args in placed.items():
                query = parse_query(args["query"])
                topo.restore_placement(name, query.relations(), shard.index)
                monitor._entries[name] = MonitorEntry(
                    name, query, dict(args.get("check_kwargs") or {})
                )

        # The global state-op history: union across shards keyed by the
        # routing sequence number.  Where a compacted journal holds an
        # ``absorb`` rewrite at the same sequence as another shard's
        # original record, the original (non-absorb) kind wins — each
        # journal is self-contained, so the original's issue is in the
        # union too and the net pending-set arithmetic comes out equal.
        by_g: dict[int, dict] = {}
        presence: dict[int, set[int]] = {}
        max_seq = 0
        for shard, lj in zip(monitor._shards, loaded):
            for record in lj.records:
                g = record["g"]
                max_seq = max(max_seq, g)
                if record["op"] in STATE_OPS:
                    presence.setdefault(g, set()).add(shard.index)
                    prev = by_g.get(g)
                    if prev is None or (
                        prev["op"] == "absorb" and record["op"] != "absorb"
                    ):
                        by_g[g] = record
        topo.resume_seq(max_seq)

        state_gs = sorted(by_g)
        g_last = state_gs[-1] if state_gs else 0
        everyone = set(range(len(monitor._shards)))
        partial = bool(state_gs) and presence[g_last] != everyone
        for g in state_gs:
            if partial and g == g_last:
                break
            record = by_g[g]
            if record["op"] in ("issue", "absorb"):
                topo.restore_front(
                    record["op"],
                    protocol.transaction_from_wire(record["args"]["tx"]),
                )
            else:
                topo.restore_front(record["op"], record["args"]["tx_id"])

        # Per-shard backlog and pending mirrors, from that shard's own
        # records: a skip record still stands unless a later applied
        # record with the same sequence drained it.
        for shard, lj in zip(monitor._shards, loaded):
            op_gs = {r["g"] for r in lj.records if r["k"] == "op"}
            backlog = []
            pending: dict[str, frozenset[str]] = {}
            for record in lj.records:
                if record["k"] == "skip":
                    if record["g"] not in op_gs:
                        kind = record["op"]
                        if kind in ("issue", "absorb"):
                            payload = protocol.transaction_from_wire(
                                record["args"]["tx"]
                            )
                        else:
                            payload = record["args"]["tx_id"]
                        backlog.append(
                            (record["g"], kind, payload, frozenset(record["rels"]))
                        )
                elif record["op"] == "issue":
                    tx = protocol.transaction_from_wire(record["args"]["tx"])
                    pending[tx.tx_id] = frozenset(tx.relation_names)
                elif record["op"] in ("commit", "forget"):
                    pending.pop(record["args"]["tx_id"], None)
            topo.restore_backlog(shard.index, backlog)
            topo.restore_pending(shard.index, pending)

        if partial:
            monitor._complete_partial(by_g[g_last], presence[g_last])

        # Force every (freshly started) shard into its journaled state.
        for shard in monitor._shards:
            with shard.lock:
                try:
                    monitor._replay(shard)
                except (ConnectionError, ServiceError):
                    # Leave it dead with the journal intact: the next
                    # access (or the watchdog) revives it from scratch.
                    monitor._fleet.kill(shard.index)
                    log.warning(
                        "shard replay failed during recovery; left dead",
                        extra={"ctx": {"shard": shard.index}},
                    )

        log.warning(
            "router recovered from journal",
            extra={
                "ctx": {
                    "journal_dir": journal.directory,
                    "constraints": len(monitor._entries),
                    "state_ops": len(state_gs),
                    "torn_bytes": torn,
                    "completed_partial": partial,
                }
            },
        )
        monitor.recoveries += 1
        if metrics is not None:
            metrics.counter(
                "repro_fabric_recoveries_total",
                "Router crash recoveries performed from the durable journal.",
            ).inc()
        return monitor

    def _complete_partial(self, record: dict, reached: set[int]) -> None:
        """Finish the one state op the crash cut off mid-fanout.

        ``reached`` holds the shards whose journal already has a record
        at the op's sequence — their replay covers them.  Every other
        shard gets the record the original fanout would have written:
        applied (with the usual backlog drain first) when the op's
        coupled closure meets the shard's footprint, a skip otherwise.
        """
        topo = self._topology
        g, kind = record["g"], record["op"]
        if kind in ("issue", "absorb"):
            payload = protocol.transaction_from_wire(record["args"]["tx"])
            relations = frozenset(payload.relation_names)
            topo.restore_front(kind, payload)
        else:
            tx_id = record["args"]["tx_id"]
            relations = frozenset(
                topo.front.transaction(tx_id).relation_names
            )
            topo.restore_front(kind, tx_id)
            payload = tx_id
        touched = coupled_relations(
            relations,
            topo.front.constraints,
            (tx.relation_names for tx in topo.front.pending),
        )
        for slot in topo.slots:
            if slot.index in reached:
                continue
            shard = self._shards[slot.index]
            if kind in ("commit", "forget"):
                in_backlog = any(
                    e[1] == "issue" and e[2].tx_id == payload
                    for e in slot.skipped
                )
                if payload not in slot.pending and not in_backlog:
                    # A compaction hole, not a crash: this shard's
                    # issue/commit (or issue/forget) pair was already
                    # rewritten away — its state is consistent as is.
                    continue
            if touched & slot.footprint:
                drained, _retained = topo._take_drainable(slot, slot.footprint)
                for op in drained:
                    wire_op, args = self._wire_of(op)
                    self._record(
                        shard,
                        {"g": op.seq, "k": "op", "op": wire_op, "args": args},
                    )
                applied = topo._applied(slot, kind, payload, relations, g)
                wire_op, args = self._wire_of(applied)
                self._record(
                    shard, {"g": g, "k": "op", "op": wire_op, "args": args}
                )
            else:
                entry = (g, kind, payload, relations)
                slot.skipped.append(entry)
                wire_op, args = self._wire_of(
                    AppliedOp(kind, payload, relations)
                )
                self._record(
                    shard,
                    {
                        "g": g,
                        "k": "skip",
                        "op": wire_op,
                        "args": args,
                        "rels": sorted(relations),
                    },
                )

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        name: str,
        query: ConjunctiveQuery | AggregateQuery | str,
        **check_kwargs,
    ) -> MonitorEntry:
        if isinstance(query, str):
            query = parse_query(query)
        plan = self._topology.place(name, query.relations())
        shard = self._shards[plan.shard]
        self._drain(shard, plan.drained, plan.retained)
        args: dict = {"name": name, "query": str(query)}
        if check_kwargs:
            args["check_kwargs"] = check_kwargs
        self._apply_wire(shard, "register", args)
        entry = MonitorEntry(name, query, dict(check_kwargs))
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        shard = self._shards[self._topology.slot_of(name)]
        self._topology.forget_placement(name)
        self._apply_wire(shard, "unregister", {"name": name})
        del self._entries[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def entry(self, name: str) -> MonitorEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ReproError(f"no constraint named {name!r}") from None

    # ------------------------------------------------------------------
    # Checking

    def status(self, name: str, use_subsumption: bool = True) -> DCSatResult:
        entry = self.entry(name)
        if entry.result is not None:
            entry.cache_hits += 1
            return entry.result
        shard = self._shards[self._topology.slot_of(name)]
        payload = self._query_shard(
            shard, "status", name=name, use_subsumption=use_subsumption
        )
        result = protocol.result_from_wire(payload)
        entry.result = result
        entry.checks_run += 1
        return result

    def status_all(self, batch: bool = True) -> dict[str, DCSatResult]:
        """Scatter-gather: every populated shard sweeps concurrently.

        This is the fleet's reason to exist: B coupled batteries sweep
        B·2^K worlds *in parallel across processes*, where the
        single-process :class:`ShardedMonitor` sweeps them serially.
        """
        tracer = default_tracer()
        parent = tracer.current()
        populated = [shard for shard in self._shards if shard.names]
        merged: dict[str, DCSatResult] = {}
        if populated:
            for shard, payload, elapsed, spans in self._scatter(
                populated, "status_all", batch=batch
            ):
                sp = None
                if parent is not None:
                    sp = tracer.record_span(
                        "fabric.call",
                        parent,
                        elapsed,
                        shard=shard.index,
                        op="status_all",
                        pid=getattr(self._fleet.handle(shard.index), "pid", None),
                    )
                if spans:
                    tracer.adopt(spans, parent=sp or parent)
                for name, wire in payload.items():
                    entry = self._entries.get(name)
                    result = protocol.result_from_wire(wire)
                    if entry is not None:
                        if entry.result is None:
                            entry.checks_run += 1
                        else:
                            entry.cache_hits += 1
                        entry.result = result
                    merged[name] = result
        return {name: merged[name] for name in self._entries if name in merged}

    def violated(self) -> dict[str, DCSatResult]:
        return {
            name: result
            for name, result in self.status_all().items()
            if not result.satisfied
        }

    def _scatter(
        self, shards: list[RemoteShard], op: str, **args
    ) -> list[tuple[RemoteShard, dict, float, list[dict] | None]]:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=len(self._shards),
                thread_name_prefix="repro-fabric",
            )

        def fetch(shard: RemoteShard):
            started = time.perf_counter()
            payload = self._query_shard(shard, op, **args)
            return (
                shard,
                payload,
                time.perf_counter() - started,
                shard.client.last_spans if shard.client else None,
            )

        return list(self._executor.map(fetch, shards))

    # ------------------------------------------------------------------
    # State changes (routed)

    def issue(self, tx: Transaction) -> list[str]:
        with obs_span("fabric.route", kind="issue") as sp:
            return self._run_actions("issue", self._topology.issue(tx), sp)

    def commit(self, tx_id: str) -> list[str]:
        with obs_span("fabric.route", kind="commit") as sp:
            return self._run_actions("commit", self._topology.commit(tx_id), sp)

    def forget(self, tx_id: str) -> list[str]:
        with obs_span("fabric.route", kind="forget") as sp:
            return self._run_actions("forget", self._topology.forget(tx_id), sp)

    def absorb(self, tx: Transaction) -> list[str]:
        with obs_span("fabric.route", kind="absorb") as sp:
            return self._run_actions("absorb", self._topology.absorb(tx), sp)

    def _run_actions(
        self, kind: str, actions: list[ShardAction], sp
    ) -> list[str]:
        self.last_dirty_components = {}
        invalidated: list[str] = []
        applied = skipped = 0
        for action in actions:
            shard = self._shards[action.shard]
            if action.skipped:
                skipped += 1
                if action.backlogged is not None:
                    seq, skind, payload, relations = action.backlogged
                    wire_op, args = self._wire_of(
                        AppliedOp(skind, payload, relations)
                    )
                    with shard.lock:
                        self._record(
                            shard,
                            {
                                "g": seq,
                                "k": "skip",
                                "op": wire_op,
                                "args": args,
                                "rels": sorted(relations),
                            },
                        )
                invalidated.extend(
                    self._drain(shard, action.drained, action.retained)
                )
            else:
                applied += 1
                invalidated.extend(
                    self._drain(shard, action.drained, action.retained)
                )
                invalidated.extend(self._invalidate(shard, action.op.touched))
                self._merge_dirty(self._apply_op(shard, action.op))
        sp.set(applied=applied, skipped=skipped)
        hit = set(invalidated)
        return [name for name in self._entries if name in hit]

    def _drain(
        self, shard: RemoteShard, drained: list[AppliedOp], retained: int
    ) -> list[str]:
        """Replay a backlog drain plan onto the shard, journaled."""
        if not drained and not retained:
            return []
        with obs_span("fabric.drain", shard=shard.index) as sp:
            invalidated: list[str] = []
            for op in drained:
                invalidated.extend(self._invalidate(shard, op.touched))
                self._merge_dirty(self._apply_op(shard, op))
            sp.set(drained=len(drained), retained=retained)
        return invalidated

    def _merge_dirty(self, payload: dict | None) -> None:
        """Fold one applied op's shard-reported component dirty-set into
        the router-level view.  Sums across shards: under replication a
        constraint name can only live on one shard, so in practice each
        name appears once per routed op."""
        if not payload:
            return
        for name, count in payload.get("dirty_components", {}).items():
            self.last_dirty_components[name] = (
                self.last_dirty_components.get(name, 0) + int(count)
            )

    def _invalidate(
        self, shard: RemoteShard, touched: frozenset[str]
    ) -> list[str]:
        """Drop mirror verdicts the op can reach on *shard* — exactly
        what the shard's own monitor does, mirrored router-side so the
        list survives a shard respawn (whose caches start empty)."""
        invalidated = []
        for name in shard.names:
            entry = self._entries.get(name)
            if (
                entry is not None
                and entry.result is not None
                and entry.relations & touched
            ):
                entry.result = None
                invalidated.append(name)
        return invalidated

    @staticmethod
    def _wire_of(op: AppliedOp) -> tuple[str, dict]:
        if op.kind in ("issue", "absorb"):
            return op.kind, {"tx": protocol.transaction_to_wire(op.payload)}
        return op.kind, {"tx_id": op.payload}

    def _apply_op(self, shard: RemoteShard, op: AppliedOp) -> dict | None:
        wire_op, args = self._wire_of(op)
        return self._apply_wire(shard, wire_op, args, seq=op.seq)

    def _record(self, shard: RemoteShard, record: dict) -> None:
        """Append one record to the shard's journal, durably if so
        configured — always *before* any wire send of the same op."""
        shard.journal.append(record)
        if self._journal is not None:
            self._journal.append(shard.index, record)

    def _apply_wire(
        self, shard: RemoteShard, op: str, args: dict, seq: int | None = None
    ) -> dict | None:
        """Journal, then send.  Journal-first makes every shard-side
        failure safe: a dead or ambiguous shard is respawned and
        replayed into exactly the journaled state (op included), so the
        op is never sent twice and never lost; only a live shard's
        definitive rejection removes it again (with a durable revoke).

        Returns the shard's response payload, or ``None`` on the
        revive/defer paths (the replayed shard recomputes its own dirty
        state, so there is nothing trustworthy to report)."""
        if seq is None:
            seq = self._topology.next_seq()
        record = {"g": seq, "k": "op", "op": op, "args": args}
        with shard.lock:
            self._record(shard, record)
            payload: dict | None = None
            try:
                payload = self._call(shard, op, **args)
            except ServiceError as error:
                if error.code in AMBIGUOUS_CODES:
                    self._revive_or_defer(shard)
                else:
                    # The shard is alive and rejected the op; keep the
                    # journal true to what the shard actually holds.
                    shard.journal.pop()
                    if self._journal is not None:
                        self._journal.append(
                            shard.index, {"g": seq, "k": "revoke", "op": op}
                        )
                    raise
            except ConnectionError:
                self._revive_or_defer(shard)
            self._maybe_compact(shard)
            return payload

    def _maybe_compact(self, shard: RemoteShard) -> None:
        if not self._journal_max_ops:
            return
        size = len(shard.journal)
        if size <= self._journal_max_ops or size <= shard.compact_floor:
            return
        compacted = compact_records(shard.journal)
        if compacted is None or len(compacted) >= size:
            # Nothing to gain right now; don't rescan on every append.
            shard.compact_floor = size * 2
            return
        shard.journal = compacted
        shard.compact_floor = 0
        if self._journal is not None:
            self._journal.shards[shard.index].write_snapshot(compacted)
        log.info(
            "shard journal compacted",
            extra={
                "ctx": {
                    "shard": shard.index,
                    "before": size,
                    "after": len(compacted),
                }
            },
        )
        if self._metrics is not None:
            self._metrics.counter(
                "repro_fabric_journal_compactions_total",
                "Shard journals rewritten by snapshot+truncate compaction.",
                labels={"shard": str(shard.index)},
            ).inc()

    # ------------------------------------------------------------------
    # Shard calls, liveness, replay

    def _call(self, shard: RemoteShard, op: str, **args) -> dict:
        tracer = default_tracer()
        assert shard.client is not None
        with tracer.span("fabric.call", shard=shard.index, op=op) as sp:
            result = shard.client.call(op, export_spans=True, **args)
            if shard.client.last_spans:
                tracer.adopt(shard.client.last_spans, parent=sp)
            return result

    def _query_shard(self, shard: RemoteShard, op: str, **args) -> dict:
        """A read-style call, with one revive-and-retry on failure."""
        with shard.lock:
            self._ensure_alive(shard)
            try:
                return self._call(shard, op, **args)
            except ServiceError as error:
                if error.code != "unavailable":
                    raise
                self._revive(shard)
                return self._call(shard, op, **args)
            except ConnectionError:
                self._revive(shard)
                return self._call(shard, op, **args)

    def _ensure_alive(self, shard: RemoteShard) -> None:
        if not self._fleet.alive(shard.index):
            self._revive(shard)

    def _revive_or_defer(self, shard: RemoteShard) -> None:
        """After an ambiguous failure the op is already journaled, i.e.
        durably applied as far as the fabric is concerned — so a failed
        revive (the respawn died too, or the breaker is open) defers to
        the next access or the watchdog instead of failing the op."""
        try:
            self._revive(shard)
        except (ConnectionError, ServiceError) as error:
            log.warning(
                "revive failed; shard left dead, journal stays authoritative",
                extra={"ctx": {"shard": shard.index, "error": str(error)}},
            )

    def revive_shard(self, index: int) -> None:
        """Respawn shard *index* and replay its journal (public surface
        for the liveness watchdog and operators); no-op when alive."""
        shard = self._shards[index]
        with shard.lock:
            if self._fleet.alive(index):
                return
            self._revive(shard)

    def _replay(self, shard: RemoteShard) -> None:
        """Send every applied-op record to the (fresh) shard, in order."""
        assert shard.client is not None
        for record in shard.journal:
            if record["k"] != "op":
                continue
            shard.client.call(
                record["op"], deadline=REPLAY_DEADLINE, **record["args"]
            )

    def _revive(self, shard: RemoteShard) -> None:
        """Respawn a dead shard from the seed db and replay its journal."""
        if shard.index in self._broken:
            raise FabricError(
                f"shard {shard.index} is circuit-broken "
                f"({self._broken[shard.index]}); not respawning",
                code="circuit-open",
                shard=shard.index,
            )
        with shard.lock:
            replayed = sum(1 for r in shard.journal if r["k"] == "op")
            with obs_span(
                "fabric.revive", shard=shard.index, journal_ops=replayed
            ):
                handle = self._fleet.restart(shard.index)
                shard.connect(handle, timeout=self._shard_timeout)
                try:
                    self._replay(shard)
                except Exception:
                    # A shard that died *mid-replay* must not pass for
                    # alive with half its history: kill it so the next
                    # access re-revives from the intact journal.
                    self._fleet.kill(shard.index)
                    raise
        log.warning(
            "shard revived from journal",
            extra={
                "ctx": {
                    "shard": shard.index,
                    "replayed_ops": replayed,
                    "pid": getattr(handle, "pid", None),
                }
            },
        )
        if self._metrics is not None:
            labels = {"shard": str(shard.index)}
            self._metrics.counter(
                "repro_fabric_revives_total",
                "Shard subprocesses respawned and journal-replayed.",
                labels=labels,
            ).inc()
            self._metrics.counter(
                "repro_fabric_replayed_ops_total",
                "Journal operations replayed into respawned shards.",
                labels=labels,
            ).inc(replayed)

    # ------------------------------------------------------------------
    # Circuit breaker

    def is_broken(self, index: int) -> bool:
        return index in self._broken

    def break_shard(self, index: int, reason: str) -> None:
        """Open the circuit: stop respawning a crash-looping shard.  Its
        reads fail fast with ``code="circuit-open"``, mutations keep
        journaling durably, and health endpoints degrade."""
        self._broken[index] = reason
        log.error(
            "shard circuit-broken",
            extra={"ctx": {"shard": index, "reason": reason}},
        )

    def reset_shard(self, index: int) -> None:
        """Close the circuit and revive the shard (operator surface)."""
        self._broken.pop(index, None)
        self.revive_shard(index)

    def start_watchdog(self, **kwargs):
        """Spawn a :class:`~repro.fabric.supervisor.LivenessWatchdog`
        probing this fleet; returns it (also stored for :meth:`close`)."""
        from repro.fabric.supervisor import LivenessWatchdog

        if self._watchdog is not None:
            return self._watchdog
        self._watchdog = LivenessWatchdog(self, metrics=self._metrics, **kwargs)
        self._watchdog.start()
        return self._watchdog

    # ------------------------------------------------------------------
    # Rebalance

    def rebalance(self) -> dict:
        """Migrate constraints by recorded solve cost (see
        :meth:`ShardTopology.rebalance`); the cost of a constraint is
        the worlds checked plus evaluations of its last mirror verdict."""
        costs = {
            name: float(
                entry.result.stats.worlds_checked
                + entry.result.stats.evaluations
            )
            or 1.0
            for name, entry in self._entries.items()
            if entry.result is not None
        }
        moves = []
        for plan in self._topology.rebalance(costs):
            executed = self._topology.migrate(plan.name, plan.target)
            target = self._shards[executed.target]
            source = self._shards[executed.source]
            self._drain(target, executed.drained, executed.retained)
            entry = self._entries[plan.name]
            args: dict = {"name": plan.name, "query": str(entry.query)}
            if entry.check_kwargs:
                args["check_kwargs"] = entry.check_kwargs
            self._apply_wire(target, "register", args)
            self._apply_wire(source, "unregister", {"name": plan.name})
            # The verdict would still hold, but the fresh placement has
            # no shard-side cache; stay conservative and recompute.
            entry.result = None
            moves.append(
                {"name": plan.name, "from": executed.source, "to": executed.target}
            )
            log.info(
                "constraint migrated",
                extra={"ctx": moves[-1]},
            )
        return {"migrated": moves, "shards": len(self._shards)}

    # ------------------------------------------------------------------
    # Introspection (the server's duck-typed surface)

    def pending_count(self) -> int:
        return self._topology.pending_count()

    def checkers(self) -> list:
        return []  # solving happens in the shard subprocesses

    def fleet_health(self) -> dict:
        """Per-shard liveness for ``/healthz`` — truthful, no revival:
        a dead shard shows dead until the next op lazily respawns it
        (or never, when its circuit breaker is open)."""
        shards = []
        dead = []
        for shard in self._shards:
            handle = self._fleet.handles[shard.index]
            alive = handle is not None and handle.alive()
            broken = shard.index in self._broken
            shards.append(
                {
                    "shard": shard.index,
                    "alive": alive,
                    "broken": broken,
                    "pid": getattr(handle, "pid", None),
                    "port": getattr(handle, "port", None),
                    "restarts": self._fleet.restarts[shard.index],
                    "journal_ops": len(shard.journal),
                }
            )
            if not alive:
                dead.append(shard.index)
        return {
            "ok": not dead and not self._broken,
            "dead": dead,
            "broken": sorted(self._broken),
            "shards": shards,
        }

    def describe(self) -> dict:
        info = self._topology.describe()
        info["fabric"] = True
        health = {item["shard"]: item for item in self.fleet_health()["shards"]}
        for item in info["detail"]:
            item.update(health[item["shard"]])
        if self._journal is not None:
            info["journal"] = {
                "dir": self._journal.directory,
                "fsync": self._journal.fsync,
                "bytes": self._journal.bytes,
                "max_ops": self._journal_max_ops,
            }
        info["recoveries"] = self.recoveries
        info["last_dirty_components"] = dict(self.last_dirty_components)
        if self._watchdog is not None:
            info["watchdog"] = {
                "interval": self._watchdog.interval,
                "respawns": self._watchdog.respawns,
            }
        return info

    def export_gauges(self, metrics: MetricsRegistry) -> None:
        for item in self.fleet_health()["shards"]:
            labels = {"shard": str(item["shard"])}
            shard = self._shards[item["shard"]]
            metrics.gauge(
                "repro_fabric_shard_alive",
                "1 when the shard subprocess is alive.",
                labels=labels,
            ).set(1 if item["alive"] else 0)
            metrics.gauge(
                "repro_fabric_shard_broken",
                "1 when the shard's respawn circuit breaker is open.",
                labels=labels,
            ).set(1 if item["broken"] else 0)
            metrics.gauge(
                "repro_fabric_shard_constraints",
                "Constraints placed on the shard.",
                labels=labels,
            ).set(len(shard.names))
            metrics.gauge(
                "repro_fabric_shard_skipped_ops",
                "State changes backlogged router-side for the shard.",
                labels=labels,
            ).set(len(shard.skipped))
            metrics.gauge(
                "repro_fabric_shard_flushes",
                "Times the shard's backlog was drained.",
                labels=labels,
            ).set(shard.flushes)
            metrics.gauge(
                "repro_fabric_shard_restarts",
                "Times the shard subprocess was respawned.",
                labels=labels,
            ).set(item["restarts"])
            metrics.gauge(
                "repro_fabric_shard_journal_ops",
                "Wire operations journaled for replay on respawn.",
                labels=labels,
            ).set(item["journal_ops"])
            if self._journal is not None:
                metrics.gauge(
                    "repro_fabric_journal_bytes",
                    "On-disk bytes of the shard's write-ahead journal.",
                    labels=labels,
                ).set(self._journal.shards[item["shard"]].bytes)
        # Registering without incrementing keeps the series visible at 0
        # on a fresh (non-recovered) boot; recover() owns the increments.
        metrics.counter(
            "repro_fabric_recoveries_total",
            "Router crash recoveries performed from the durable journal.",
        )

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for shard in self._shards:
            shard.close()
        self._fleet.stop()
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "FabricMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        journaled = sum(len(shard.journal) for shard in self._shards)
        return (
            f"FabricMonitor({len(self._shards)} shard processes, "
            f"{len(self._entries)} constraints, {journaled} journaled ops)"
        )


__all__ = [
    "AMBIGUOUS_CODES",
    "FabricMonitor",
    "RemoteShard",
    "REPLAY_DEADLINE",
    "compact_records",
]
