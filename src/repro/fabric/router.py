"""The fabric front-end: one monitor surface over N shard processes.

:class:`FabricMonitor` is shaped exactly like a
:class:`~repro.core.monitor.ConstraintMonitor`, so the existing
:class:`~repro.service.server.ConstraintService` serves it unchanged —
same wire protocol, same queue/deadline/backpressure machinery — and
every existing :class:`~repro.service.client.ServiceClient` talks to a
fleet without knowing it.  Underneath, each shard of the partition is a
``repro serve`` *subprocess* (spawned by a
:class:`~repro.fabric.supervisor.FleetSupervisor`), reached over its own
JSON-lines connection.

Routing decisions come from the shared
:class:`~repro.fabric.topology.ShardTopology` — the same planner that
drives the in-process :class:`~repro.service.shard.ShardedMonitor` — so
the fleet inherits its verdict-identity guarantees: commits and absorbs
fan out only to the ind/co-write coupled closure of affected shards,
decoupled shards backlog the op router-side, and ``status_all``
scatter-gathers across the fleet.

Two things the cross-process setting adds:

* **Router-side invalidation.**  Every applied op carries ``touched``
  (the coupled closure against that shard's own pending set), and the
  router holds mirror verdict caches (:class:`MonitorEntry` per
  constraint).  Invalidation lists are computed *here*, never asked of
  a shard — a freshly respawned shard has empty caches and would
  under-report, breaking parity with the single-process fleet.
* **Journal replay.**  The router journals every wire op it applied to
  each shard (registrations included).  When a shard dies — detected by
  a liveness probe before an op, or a connection failure during one —
  the supervisor respawns it from the seed database and the router
  replays its journal, reconstructing exactly the state the shard held.
  The op that was in flight when the shard died is journaled *before*
  the send, so the replay carries it and it is never sent twice.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.monitor import MonitorEntry
from repro.core.results import DCSatResult
from repro.errors import ReproError, ServiceError
from repro.fabric.topology import AppliedOp, ShardAction, ShardTopology
from repro.obs.log import get_logger
from repro.obs.trace import default_tracer, span as obs_span
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.relational.transaction import Transaction
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.metrics import MetricsRegistry

log = get_logger("fabric.router")

#: How long the router gives a shard for one replayed journal op.
REPLAY_DEADLINE = 60.0


class RemoteShard:
    """One shard connection plus the journal that can rebuild it."""

    def __init__(self, index: int, slot):
        self.index = index
        self._slot = slot
        self.client: ServiceClient | None = None
        #: Every wire op applied to this shard, in order — replaying it
        #: against a fresh seed-state server reproduces the shard.
        self.journal: list[tuple[str, dict]] = []

    @property
    def footprint(self) -> frozenset[str]:
        return self._slot.footprint

    @property
    def names(self) -> list[str]:
        return self._slot.names

    @property
    def skipped(self) -> list:
        return self._slot.skipped

    @property
    def flushes(self) -> int:
        return self._slot.flushes

    def connect(self, handle) -> None:
        if self.client is not None:
            self.client.close()
        self.client = ServiceClient(
            handle.host, handle.port, timeout=None, connect_timeout=10.0
        )

    def close(self) -> None:
        if self.client is not None:
            self.client.close()
            self.client = None


class FabricMonitor:
    """The routing front of a cross-process shard fleet.

    *fleet* is a started (or startable)
    :class:`~repro.fabric.supervisor.FleetSupervisor` — or any object
    with the same surface, e.g. a
    :class:`~repro.fabric.supervisor.ThreadFleet`; ``fleet.count``
    fixes the shard count.  *db* must be the same seed state the shard
    servers load, or journal replay would diverge from reality.
    """

    def __init__(
        self,
        db: BlockchainDatabase,
        fleet,
        max_skipped: int = 512,
        metrics: MetricsRegistry | None = None,
    ):
        self._topology = ShardTopology(db, fleet.count, max_skipped=max_skipped)
        self._fleet = fleet
        self._shards = [
            RemoteShard(slot.index, slot) for slot in self._topology.slots
        ]
        #: Mirror entries: verdict caches and counters, global order.
        self._entries: dict[str, MonitorEntry] = {}
        self._metrics = metrics
        self._executor: ThreadPoolExecutor | None = None
        if any(handle is None for handle in fleet.handles):
            fleet.start()
        for shard in self._shards:
            shard.connect(fleet.handle(shard.index))

    @property
    def epoch(self) -> int:
        return self._topology.epoch

    @property
    def topology(self) -> ShardTopology:
        return self._topology

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        name: str,
        query: ConjunctiveQuery | AggregateQuery | str,
        **check_kwargs,
    ) -> MonitorEntry:
        if isinstance(query, str):
            query = parse_query(query)
        plan = self._topology.place(name, query.relations())
        shard = self._shards[plan.shard]
        self._ensure_alive(shard)
        self._drain(shard, plan.drained, plan.retained)
        args: dict = {"name": name, "query": str(query)}
        if check_kwargs:
            args["check_kwargs"] = check_kwargs
        self._apply_wire(shard, "register", args)
        entry = MonitorEntry(name, query, dict(check_kwargs))
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        shard = self._shards[self._topology.slot_of(name)]
        self._topology.forget_placement(name)
        self._ensure_alive(shard)
        self._apply_wire(shard, "unregister", {"name": name})
        del self._entries[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def entry(self, name: str) -> MonitorEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ReproError(f"no constraint named {name!r}") from None

    # ------------------------------------------------------------------
    # Checking

    def status(self, name: str, use_subsumption: bool = True) -> DCSatResult:
        entry = self.entry(name)
        if entry.result is not None:
            entry.cache_hits += 1
            return entry.result
        shard = self._shards[self._topology.slot_of(name)]
        payload = self._query_shard(
            shard, "status", name=name, use_subsumption=use_subsumption
        )
        result = protocol.result_from_wire(payload)
        entry.result = result
        entry.checks_run += 1
        return result

    def status_all(self, batch: bool = True) -> dict[str, DCSatResult]:
        """Scatter-gather: every populated shard sweeps concurrently.

        This is the fleet's reason to exist: B coupled batteries sweep
        B·2^K worlds *in parallel across processes*, where the
        single-process :class:`ShardedMonitor` sweeps them serially.
        """
        tracer = default_tracer()
        parent = tracer.current()
        populated = [shard for shard in self._shards if shard.names]
        merged: dict[str, DCSatResult] = {}
        if populated:
            for shard, payload, elapsed, spans in self._scatter(
                populated, "status_all", batch=batch
            ):
                sp = None
                if parent is not None:
                    sp = tracer.record_span(
                        "fabric.call",
                        parent,
                        elapsed,
                        shard=shard.index,
                        op="status_all",
                        pid=getattr(self._fleet.handle(shard.index), "pid", None),
                    )
                if spans:
                    tracer.adopt(spans, parent=sp or parent)
                for name, wire in payload.items():
                    entry = self._entries.get(name)
                    result = protocol.result_from_wire(wire)
                    if entry is not None:
                        if entry.result is None:
                            entry.checks_run += 1
                        else:
                            entry.cache_hits += 1
                        entry.result = result
                    merged[name] = result
        return {name: merged[name] for name in self._entries if name in merged}

    def violated(self) -> dict[str, DCSatResult]:
        return {
            name: result
            for name, result in self.status_all().items()
            if not result.satisfied
        }

    def _scatter(
        self, shards: list[RemoteShard], op: str, **args
    ) -> list[tuple[RemoteShard, dict, float, list[dict] | None]]:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=len(self._shards),
                thread_name_prefix="repro-fabric",
            )

        def fetch(shard: RemoteShard):
            started = time.perf_counter()
            payload = self._query_shard(shard, op, **args)
            return (
                shard,
                payload,
                time.perf_counter() - started,
                shard.client.last_spans if shard.client else None,
            )

        return list(self._executor.map(fetch, shards))

    # ------------------------------------------------------------------
    # State changes (routed)

    def issue(self, tx: Transaction) -> list[str]:
        with obs_span("fabric.route", kind="issue") as sp:
            return self._run_actions("issue", self._topology.issue(tx), sp)

    def commit(self, tx_id: str) -> list[str]:
        with obs_span("fabric.route", kind="commit") as sp:
            return self._run_actions("commit", self._topology.commit(tx_id), sp)

    def forget(self, tx_id: str) -> list[str]:
        with obs_span("fabric.route", kind="forget") as sp:
            return self._run_actions("forget", self._topology.forget(tx_id), sp)

    def absorb(self, tx: Transaction) -> list[str]:
        with obs_span("fabric.route", kind="absorb") as sp:
            return self._run_actions("absorb", self._topology.absorb(tx), sp)

    def _run_actions(
        self, kind: str, actions: list[ShardAction], sp
    ) -> list[str]:
        invalidated: list[str] = []
        applied = skipped = 0
        for action in actions:
            shard = self._shards[action.shard]
            if action.skipped:
                skipped += 1
                invalidated.extend(
                    self._drain(shard, action.drained, action.retained)
                )
            else:
                applied += 1
                invalidated.extend(
                    self._drain(shard, action.drained, action.retained)
                )
                self._ensure_alive(shard)
                invalidated.extend(self._invalidate(shard, action.op.touched))
                self._apply_op(shard, action.op)
        sp.set(applied=applied, skipped=skipped)
        hit = set(invalidated)
        return [name for name in self._entries if name in hit]

    def _drain(
        self, shard: RemoteShard, drained: list[AppliedOp], retained: int
    ) -> list[str]:
        """Replay a backlog drain plan onto the shard, journaled."""
        if not drained and not retained:
            return []
        with obs_span("fabric.drain", shard=shard.index) as sp:
            if drained:
                self._ensure_alive(shard)
            invalidated: list[str] = []
            for op in drained:
                invalidated.extend(self._invalidate(shard, op.touched))
                self._apply_op(shard, op)
            sp.set(drained=len(drained), retained=retained)
        return invalidated

    def _invalidate(
        self, shard: RemoteShard, touched: frozenset[str]
    ) -> list[str]:
        """Drop mirror verdicts the op can reach on *shard* — exactly
        what the shard's own monitor does, mirrored router-side so the
        list survives a shard respawn (whose caches start empty)."""
        invalidated = []
        for name in shard.names:
            entry = self._entries.get(name)
            if (
                entry is not None
                and entry.result is not None
                and entry.relations & touched
            ):
                entry.result = None
                invalidated.append(name)
        return invalidated

    @staticmethod
    def _wire_of(op: AppliedOp) -> tuple[str, dict]:
        if op.kind in ("issue", "absorb"):
            return op.kind, {"tx": protocol.transaction_to_wire(op.payload)}
        return op.kind, {"tx_id": op.payload}

    def _apply_op(self, shard: RemoteShard, op: AppliedOp) -> None:
        wire_op, args = self._wire_of(op)
        self._apply_wire(shard, wire_op, args)

    def _apply_wire(self, shard: RemoteShard, op: str, args: dict) -> None:
        """Journal, then send.  Journal-first makes a mid-op shard death
        safe: the replay carries the op, so it is never sent twice and
        never lost."""
        shard.journal.append((op, args))
        try:
            self._call(shard, op, **args)
        except ServiceError as error:
            if error.code != "unavailable":
                # The shard is alive and rejected the op; keep the
                # journal true to what the shard actually holds.
                shard.journal.pop()
                raise
            self._revive(shard)
        except ConnectionError:
            self._revive(shard)

    # ------------------------------------------------------------------
    # Shard calls, liveness, replay

    def _call(self, shard: RemoteShard, op: str, **args) -> dict:
        tracer = default_tracer()
        assert shard.client is not None
        with tracer.span("fabric.call", shard=shard.index, op=op) as sp:
            result = shard.client.call(op, export_spans=True, **args)
            if shard.client.last_spans:
                tracer.adopt(shard.client.last_spans, parent=sp)
            return result

    def _query_shard(self, shard: RemoteShard, op: str, **args) -> dict:
        """A read-style call, with one revive-and-retry on failure."""
        self._ensure_alive(shard)
        try:
            return self._call(shard, op, **args)
        except ServiceError as error:
            if error.code != "unavailable":
                raise
            self._revive(shard)
            return self._call(shard, op, **args)
        except ConnectionError:
            self._revive(shard)
            return self._call(shard, op, **args)

    def _ensure_alive(self, shard: RemoteShard) -> None:
        if not self._fleet.alive(shard.index):
            self._revive(shard)

    def _revive(self, shard: RemoteShard) -> None:
        """Respawn a dead shard from the seed db and replay its journal."""
        with obs_span(
            "fabric.revive", shard=shard.index, journal_ops=len(shard.journal)
        ):
            handle = self._fleet.restart(shard.index)
            shard.connect(handle)
            for op, args in shard.journal:
                assert shard.client is not None
                shard.client.call(op, deadline=REPLAY_DEADLINE, **args)
        log.warning(
            "shard revived from journal",
            extra={
                "ctx": {
                    "shard": shard.index,
                    "replayed_ops": len(shard.journal),
                    "pid": getattr(handle, "pid", None),
                }
            },
        )
        if self._metrics is not None:
            labels = {"shard": str(shard.index)}
            self._metrics.counter(
                "repro_fabric_revives_total",
                "Shard subprocesses respawned and journal-replayed.",
                labels=labels,
            ).inc()
            self._metrics.counter(
                "repro_fabric_replayed_ops_total",
                "Journal operations replayed into respawned shards.",
                labels=labels,
            ).inc(len(shard.journal))

    # ------------------------------------------------------------------
    # Rebalance

    def rebalance(self) -> dict:
        """Migrate constraints by recorded solve cost (see
        :meth:`ShardTopology.rebalance`); the cost of a constraint is
        the worlds checked plus evaluations of its last mirror verdict."""
        costs = {
            name: float(
                entry.result.stats.worlds_checked
                + entry.result.stats.evaluations
            )
            or 1.0
            for name, entry in self._entries.items()
            if entry.result is not None
        }
        moves = []
        for plan in self._topology.rebalance(costs):
            executed = self._topology.migrate(plan.name, plan.target)
            target = self._shards[executed.target]
            source = self._shards[executed.source]
            self._ensure_alive(target)
            self._drain(target, executed.drained, executed.retained)
            entry = self._entries[plan.name]
            args: dict = {"name": plan.name, "query": str(entry.query)}
            if entry.check_kwargs:
                args["check_kwargs"] = entry.check_kwargs
            self._apply_wire(target, "register", args)
            self._ensure_alive(source)
            self._apply_wire(source, "unregister", {"name": plan.name})
            # The verdict would still hold, but the fresh placement has
            # no shard-side cache; stay conservative and recompute.
            entry.result = None
            moves.append(
                {"name": plan.name, "from": executed.source, "to": executed.target}
            )
            log.info(
                "constraint migrated",
                extra={"ctx": moves[-1]},
            )
        return {"migrated": moves, "shards": len(self._shards)}

    # ------------------------------------------------------------------
    # Introspection (the server's duck-typed surface)

    def pending_count(self) -> int:
        return self._topology.pending_count()

    def checkers(self) -> list:
        return []  # solving happens in the shard subprocesses

    def fleet_health(self) -> dict:
        """Per-shard liveness for ``/healthz`` — truthful, no revival:
        a dead shard shows dead until the next op lazily respawns it."""
        shards = []
        dead = []
        for shard in self._shards:
            handle = self._fleet.handles[shard.index]
            alive = handle is not None and handle.alive()
            shards.append(
                {
                    "shard": shard.index,
                    "alive": alive,
                    "pid": getattr(handle, "pid", None),
                    "port": getattr(handle, "port", None),
                    "restarts": self._fleet.restarts[shard.index],
                    "journal_ops": len(shard.journal),
                }
            )
            if not alive:
                dead.append(shard.index)
        return {"ok": not dead, "dead": dead, "shards": shards}

    def describe(self) -> dict:
        info = self._topology.describe()
        info["fabric"] = True
        health = {item["shard"]: item for item in self.fleet_health()["shards"]}
        for item in info["detail"]:
            item.update(health[item["shard"]])
        return info

    def export_gauges(self, metrics: MetricsRegistry) -> None:
        for item in self.fleet_health()["shards"]:
            labels = {"shard": str(item["shard"])}
            shard = self._shards[item["shard"]]
            metrics.gauge(
                "repro_fabric_shard_alive",
                "1 when the shard subprocess is alive.",
                labels=labels,
            ).set(1 if item["alive"] else 0)
            metrics.gauge(
                "repro_fabric_shard_constraints",
                "Constraints placed on the shard.",
                labels=labels,
            ).set(len(shard.names))
            metrics.gauge(
                "repro_fabric_shard_skipped_ops",
                "State changes backlogged router-side for the shard.",
                labels=labels,
            ).set(len(shard.skipped))
            metrics.gauge(
                "repro_fabric_shard_flushes",
                "Times the shard's backlog was drained.",
                labels=labels,
            ).set(shard.flushes)
            metrics.gauge(
                "repro_fabric_shard_restarts",
                "Times the shard subprocess was respawned.",
                labels=labels,
            ).set(item["restarts"])
            metrics.gauge(
                "repro_fabric_shard_journal_ops",
                "Wire operations journaled for replay on respawn.",
                labels=labels,
            ).set(item["journal_ops"])

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for shard in self._shards:
            shard.close()
        self._fleet.stop()

    def __enter__(self) -> "FabricMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        journaled = sum(len(shard.journal) for shard in self._shards)
        return (
            f"FabricMonitor({len(self._shards)} shard processes, "
            f"{len(self._entries)} constraints, {journaled} journaled ops)"
        )


__all__ = ["FabricMonitor", "RemoteShard", "REPLAY_DEADLINE"]
