"""The routing brain shared by the in-process and cross-process fleets.

:class:`ShardTopology` owns everything about a constraint fleet that is
*not* solving: the authoritative front database (which validates every
state change before routing), constraint placement by ind-coupled
footprint, the per-shard skipped-op backlogs with their drain/replay
semantics, and per-shard pending bookkeeping.  It emits **plans** —
ordered per-shard action lists — and never touches a monitor itself:

* :class:`~repro.service.shard.ShardedMonitor` executes plans against
  in-process :class:`~repro.core.monitor.ConstraintMonitor` shards;
* :class:`~repro.fabric.router.FabricMonitor` executes the same plans
  against shard *subprocesses* over the JSON-lines wire protocol.

Because both fronts share one decision engine, the cross-process fleet
inherits the verdict-identity guarantees pinned by the randomized-trace
suites in ``tests/service/test_shard.py`` and ``tests/fabric/``.

The routing semantics (unchanged from PR 2): a state change over
relations ``S`` can only affect shards whose footprint intersects the
ind-connectivity / co-write coupled closure of ``S``
(:func:`~repro.core.monitor.coupled_relations`); every other shard
appends the op to its backlog.  Skipped ops replay — in original global
order — before the next coupled op, before a registration that grows
the footprint over them, or wholesale when the backlog outgrows
``max_skipped``.

Every applied op additionally records ``touched``: the coupled closure
computed against *that shard's own pending set* after the op, exactly
as the shard's local monitor computes its invalidation set.  A router
holding cached-verdict mirrors can therefore reproduce the shard's
invalidation list without a round trip — which keeps invalidation
reporting correct even across a shard kill/replay (a freshly replayed
shard has no caches and would report nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import serialize
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.monitor import coupled_relations
from repro.errors import ReproError
from repro.relational.transaction import Transaction


def copy_database(db: BlockchainDatabase) -> BlockchainDatabase:
    """An independent deep copy (shards must not share mutable state)."""
    return serialize.database_from_dict(
        serialize.database_to_dict(db), validate=False
    )


@dataclass
class AppliedOp:
    """One state change to apply to a shard, with its invalidation reach."""

    kind: str  # issue | commit | forget | absorb
    payload: object  # Transaction, or tx_id for commit/forget
    relations: frozenset[str]
    #: Coupled closure over the shard's own pending set *after* this op
    #: — the relations whose constraint verdicts the op can invalidate
    #: on that shard (mirrors ConstraintMonitor._invalidate_touching).
    touched: frozenset[str] = frozenset()
    #: Global routing sequence number of the originating state change.
    #: A drained backlog op keeps the seq it was routed under, so the
    #: durable journal can match an applied record against the skip
    #: record it supersedes.
    seq: int = 0


@dataclass
class ShardAction:
    """What one shard must do for one routed state change."""

    shard: int
    #: Backlogged ops to replay first, in original global order.
    drained: list[AppliedOp] = field(default_factory=list)
    #: Ops left in the backlog after the drain (for tracing/metrics).
    retained: int = 0
    #: The routed op itself; None when it was skipped into the backlog
    #: (an overflow flush then carries it inside ``drained``).
    op: AppliedOp | None = None
    skipped: bool = False
    #: The backlog entry ``(seq, kind, payload, relations)`` appended
    #: when ``skipped`` — what a durable journal records for the shard.
    backlogged: tuple | None = None


@dataclass
class RegisterPlan:
    """Placement decision plus the backlog the new constraint observes."""

    shard: int
    drained: list[AppliedOp] = field(default_factory=list)
    retained: int = 0


@dataclass
class MigrationPlan:
    """One constraint moving between shards during a rebalance."""

    name: str
    source: int
    target: int
    #: Backlog of the *target* shard the constraint would observe.
    drained: list[AppliedOp] = field(default_factory=list)
    retained: int = 0


class ShardSlot:
    """Routing state for one shard (no monitor, no connection)."""

    __slots__ = (
        "index", "footprint", "skipped", "names",
        "pending", "flushes", "drained_ops",
    )

    def __init__(self, index: int):
        self.index = index
        #: Union of the raw relation footprints of placed constraints.
        self.footprint: frozenset[str] = frozenset()
        #: Backlogged ``(seq, kind, payload, relations)`` with seed
        #: relations recorded at skip time (a committed transaction's
        #: relations are not otherwise recoverable later) and the global
        #: sequence number the op was routed under.
        self.skipped: list[tuple[int, str, object, frozenset[str]]] = []
        #: Constraints placed here, in placement order.
        self.names: list[str] = []
        #: tx_id -> relations of pending transactions this shard has
        #: applied — its own db's pending set, tracked router-side.
        self.pending: dict[str, frozenset[str]] = {}
        self.flushes = 0
        self.drained_ops = 0


class ShardTopology:
    """Placement, routing and rebalance decisions for N shards."""

    def __init__(
        self,
        db: BlockchainDatabase,
        shards: int = 2,
        max_skipped: int = 512,
    ):
        if shards < 1:
            raise ReproError(f"need at least one shard, got {shards}")
        #: The front's own authoritative copy: validates ops and tracks
        #: the pending set whose co-write footprints drive routing.
        self.front = copy_database(db)
        self.slots = [ShardSlot(index) for index in range(shards)]
        #: constraint name -> shard index, in registration order.
        self.placement: dict[str, int] = {}
        #: constraint name -> raw relation footprint of its query.
        self.footprints: dict[str, frozenset[str]] = {}
        self.max_skipped = max_skipped
        #: Monotone state-change counter, mirroring ``DCSatChecker.epoch``.
        self.epoch = 0
        #: Global routing sequence: every routed state change (and every
        #: registration the router journals) takes the next value, so a
        #: durable journal can order records across shards.
        self.seq = 0

    def next_seq(self) -> int:
        """Advance and return the global routing sequence (used by the
        router to stamp registration records it journals itself)."""
        self.seq += 1
        return self.seq

    # ------------------------------------------------------------------
    # Placement

    def place(self, name: str, relations: frozenset[str]) -> RegisterPlan:
        """Choose a shard for a new constraint and record the placement.

        The returned plan's ``drained`` ops must replay on the shard
        *before* the constraint registers there: the footprint is about
        to grow, so every backlogged op the new constraint could observe
        has to land first.
        """
        if name in self.placement:
            raise ReproError(f"constraint {name!r} is already registered")
        slot = self._pick_slot(relations)
        drained, retained = self._take_drainable(
            slot, slot.footprint | relations
        )
        slot.footprint |= relations
        slot.names.append(name)
        self.placement[name] = slot.index
        self.footprints[name] = relations
        return RegisterPlan(slot.index, drained, retained)

    def _pick_slot(self, relations: frozenset[str]) -> ShardSlot:
        """Deterministic placement: co-locate with the shard sharing the
        most ind-coupled relations; otherwise balance by entry count."""
        expanded = self.front.constraints.ind_closure(relations)
        best: ShardSlot | None = None
        best_score = 0
        for slot in self.slots:
            score = len(expanded & slot.footprint)
            if score > best_score:
                best, best_score = slot, score
        if best is None:
            best = min(self.slots, key=lambda s: (len(s.names), s.index))
        return best

    def forget_placement(self, name: str) -> int:
        """Remove a constraint from the topology; returns its shard."""
        slot = self.slots[self.slot_of(name)]
        slot.names.remove(name)
        del self.placement[name]
        del self.footprints[name]
        self._refresh_footprint(slot)
        return slot.index

    def slot_of(self, name: str) -> int:
        try:
            return self.placement[name]
        except KeyError:
            raise ReproError(f"no constraint named {name!r}") from None

    def _refresh_footprint(self, slot: ShardSlot) -> None:
        footprint: set[str] = set()
        for name in slot.names:
            footprint |= self.footprints[name]
        slot.footprint = frozenset(footprint)

    # ------------------------------------------------------------------
    # State changes (front validation + routing)

    def issue(self, tx: Transaction) -> list[ShardAction]:
        self.front.add_pending(tx)  # validates id, relations, arity
        self.epoch += 1
        return self._route("issue", tx, frozenset(tx.relation_names))

    def commit(self, tx_id: str) -> list[ShardAction]:
        tx = self.front.remove_pending(tx_id)
        self.epoch += 1
        return self._route("commit", tx_id, frozenset(tx.relation_names))

    def forget(self, tx_id: str) -> list[ShardAction]:
        tx = self.front.remove_pending(tx_id)
        self.epoch += 1
        return self._route("forget", tx_id, frozenset(tx.relation_names))

    def absorb(self, tx: Transaction) -> list[ShardAction]:
        for rel in tx.relation_names:
            if rel not in self.front.current:
                raise ReproError(
                    f"transaction {tx.tx_id!r} targets unknown relation {rel!r}"
                )
            schema = self.front.current[rel].schema
            for values in tx.tuples(rel):
                schema.validate_tuple(values)
        self.epoch += 1
        return self._route("absorb", tx, frozenset(tx.relation_names))

    def _route(
        self, kind: str, payload, relations: frozenset[str]
    ) -> list[ShardAction]:
        seq = self.next_seq()
        touched = coupled_relations(
            relations,
            self.front.constraints,
            (tx.relation_names for tx in self.front.pending),
        )
        actions = []
        for slot in self.slots:
            if touched & slot.footprint:
                drained, retained = self._take_drainable(slot, slot.footprint)
                actions.append(
                    ShardAction(
                        slot.index,
                        drained,
                        retained,
                        self._applied(slot, kind, payload, relations, seq),
                    )
                )
            else:
                entry = (seq, kind, payload, relations)
                slot.skipped.append(entry)
                action = ShardAction(slot.index, skipped=True, backlogged=entry)
                if self.max_skipped and len(slot.skipped) > self.max_skipped:
                    action.drained, action.retained = self._take_drainable(
                        slot, None
                    )
                actions.append(action)
        return actions

    def _take_drainable(
        self, slot: ShardSlot, footprint: frozenset[str] | None
    ) -> tuple[list[AppliedOp], int]:
        """Split the backlog into (replay now, keep skipped).

        Ops in a different coupling component commute with everything
        the shard observes, so they stay skipped — that independence is
        what keeps each shard's world sweep small.  Coupled ops drain
        together (their seeds close over the same component), so the
        relative order among drained ops is the global one.  ``None``
        drains the whole backlog.
        """
        if not slot.skipped:
            return [], 0
        pending_footprints = [
            frozenset(tx.relation_names) for tx in self.front.pending
        ]
        drained: list[AppliedOp] = []
        retained: list[tuple[int, str, object, frozenset[str]]] = []
        for seq, kind, payload, relations in slot.skipped:
            coupled = footprint is None or (
                coupled_relations(
                    relations, self.front.constraints, pending_footprints
                )
                & footprint
            )
            if coupled:
                drained.append(
                    self._applied(slot, kind, payload, relations, seq)
                )
            else:
                retained.append((seq, kind, payload, relations))
        slot.skipped = retained
        if drained:
            slot.flushes += 1
            slot.drained_ops += len(drained)
        return drained, len(retained)

    def _applied(
        self,
        slot: ShardSlot,
        kind: str,
        payload,
        relations: frozenset[str],
        seq: int = 0,
    ) -> AppliedOp:
        """Record an op as applied to *slot* and compute its reach.

        Pending bookkeeping mirrors the shard's own checker (issue adds
        before the invalidation closure is taken; commit/forget remove
        first), so ``touched`` equals what the shard-local
        ``ConstraintMonitor._invalidate_touching`` would compute.
        """
        if kind == "issue":
            slot.pending[payload.tx_id] = relations
        elif kind in ("commit", "forget"):
            slot.pending.pop(payload, None)
        touched = coupled_relations(
            relations, self.front.constraints, slot.pending.values()
        )
        return AppliedOp(kind, payload, relations, touched, seq)

    # ------------------------------------------------------------------
    # Recovery restoration (see FabricMonitor.recover)

    def restore_placement(
        self, name: str, relations: frozenset[str], shard: int
    ) -> None:
        """Record a placement known from a durable journal, bypassing
        :meth:`_pick_slot` — recovery must land every constraint on the
        shard whose journal registered it, not wherever the heuristic
        would put it today."""
        if name in self.placement:
            raise ReproError(f"constraint {name!r} is already registered")
        slot = self.slots[shard]
        slot.footprint |= relations
        slot.names.append(name)
        self.placement[name] = shard
        self.footprints[name] = relations

    def restore_front(self, kind: str, payload) -> None:
        """Re-apply one recovered global state op to the front database
        only — no routing, no backlog effects.  Rebuilds the pending set
        a restarted router needs for coupled-closure decisions."""
        if kind == "issue":
            self.front.add_pending(payload)
        elif kind in ("commit", "forget"):
            self.front.remove_pending(payload)
        # absorb leaves the front untouched: the front's ``current`` is
        # never mutated, it only tracks the pending set.
        self.epoch += 1

    def restore_backlog(
        self,
        shard: int,
        entries: list[tuple[int, str, object, frozenset[str]]],
    ) -> None:
        """Install a shard's recovered skip backlog, in original order."""
        self.slots[shard].skipped = sorted(entries, key=lambda e: e[0])

    def restore_pending(
        self, shard: int, pending: dict[str, frozenset[str]]
    ) -> None:
        """Install a shard's recovered router-side pending mirror."""
        self.slots[shard].pending = dict(pending)

    def resume_seq(self, seq: int) -> None:
        """Fast-forward the routing sequence past every recovered record
        so new ops never reuse a journaled sequence number."""
        self.seq = max(self.seq, seq)

    # ------------------------------------------------------------------
    # Rebalance

    def coupling_groups(self) -> list[list[str]]:
        """Registered constraints grouped by ind-coupled footprint.

        Constraints in one group observe overlapping closure, so a
        rebalance moves them together — co-location is what lets the
        router skip decoupled shards on every op.
        """
        names = list(self.placement)
        expanded = {
            name: self.front.constraints.ind_closure(self.footprints[name])
            for name in names
        }
        parent = {name: name for name in names}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if expanded[a] & expanded[b]:
                    ra, rb = find(a), find(b)
                    if ra != rb:
                        parent[rb] = ra
        groups: dict[str, list[str]] = {}
        for name in names:
            groups.setdefault(find(name), []).append(name)
        return list(groups.values())

    def rebalance(
        self, costs: dict[str, float] | None = None
    ) -> list[MigrationPlan]:
        """Plan constraint migrations that even out per-shard load.

        *costs* maps constraint names to a recorded expense (e.g. the
        worlds checked by its last solve, off ``DCSatStats``); missing
        names cost 1.  Coupling groups are greedily bin-packed, heaviest
        first, onto the shard with the least assigned cost.  Returns
        only the moves — callers apply them via :meth:`migrate`.
        """
        costs = costs or {}
        groups = sorted(
            self.coupling_groups(),
            key=lambda g: (-sum(costs.get(n, 1.0) for n in g), g[0]),
        )
        load = {slot.index: 0.0 for slot in self.slots}
        assigned: dict[str, int] = {}
        for group in groups:
            weight = sum(costs.get(n, 1.0) for n in group)
            target = min(load, key=lambda idx: (load[idx], idx))
            load[target] += weight
            for name in group:
                assigned[name] = target
        return [
            MigrationPlan(name, self.placement[name], target)
            for name, target in assigned.items()
            if self.placement[name] != target
        ]

    def migrate(self, name: str, target: int) -> MigrationPlan:
        """Re-place one constraint; returns the target-shard drain plan.

        The executor must replay ``drained`` on the target shard, then
        register the constraint there, then unregister it at the source
        — the topology bookkeeping is already updated when this returns.
        """
        source = self.slot_of(name)
        if target == source:
            return MigrationPlan(name, source, target)
        if not 0 <= target < len(self.slots):
            raise ReproError(f"no shard {target} in a {len(self.slots)}-shard fleet")
        relations = self.footprints[name]
        source_slot = self.slots[source]
        target_slot = self.slots[target]
        drained, retained = self._take_drainable(
            target_slot, target_slot.footprint | relations
        )
        source_slot.names.remove(name)
        self._refresh_footprint(source_slot)
        target_slot.footprint |= relations
        target_slot.names.append(name)
        self.placement[name] = target
        return MigrationPlan(name, source, target, drained, retained)

    # ------------------------------------------------------------------
    # Introspection

    def pending_count(self) -> int:
        return len(self.front.pending_ids)

    def describe(self) -> dict:
        """Per-shard placement, footprint and routing-state summary."""
        return {
            "sharded": True,
            "shards": len(self.slots),
            "detail": [
                {
                    "shard": slot.index,
                    "constraints": sorted(slot.names),
                    "footprint": sorted(slot.footprint),
                    "pending": len(slot.pending),
                    "skipped_ops": len(slot.skipped),
                    "flushes": slot.flushes,
                }
                for slot in self.slots
            ],
        }

    def __repr__(self) -> str:
        skipped = sum(len(slot.skipped) for slot in self.slots)
        return (
            f"ShardTopology({len(self.slots)} shards, "
            f"{len(self.placement)} constraints, {skipped} skipped ops)"
        )


__all__ = [
    "AppliedOp",
    "MigrationPlan",
    "RegisterPlan",
    "ShardAction",
    "ShardSlot",
    "ShardTopology",
    "copy_database",
]
