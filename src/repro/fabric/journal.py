"""A durable write-ahead journal for the fabric shard fleet.

PR 6's router kept each shard's replay journal as an in-memory Python
list: a shard crash was invisible (respawn + replay), but a *router*
crash lost the whole fleet's state, and the list grew without bound.
This module makes that journal a real on-disk log, shaped like the
ordered-commit logs of the ledger databases the paper's related work
describes ("Blockchain Meets Database"):

* **Framed records.**  One record per line: ``<length> <crc32hex>
  <json>\\n``.  The length and checksum let the reader detect a torn
  final record (the process died mid-``write``) and distinguish it from
  mid-file corruption — the former is tolerated and dropped, the latter
  raises :class:`~repro.errors.FabricError`.
* **Segmented files per shard.**  Appends go to ``wal-<n>.jsonl``
  inside a per-shard directory; a segment that outgrows
  ``segment_bytes`` is closed and a new one opened.  Every process
  restart also starts a fresh segment, so a torn tail is always the
  last record of *some* segment and never gets appended after.
* **Configurable fsync.**  ``always`` fsyncs after every append (every
  acknowledged op survives a host crash), ``batch`` fsyncs every
  ``sync_every`` appends and on :meth:`ShardJournal.flush`, ``never``
  leaves durability to the OS page cache.
* **Snapshot + truncate compaction.**  :meth:`ShardJournal.write_snapshot`
  atomically replaces the whole history with a compacted record list
  (``snap-<n>.jsonl`` written to a temp file, fsynced, renamed) and
  unlinks the superseded segments.  The reader uses the highest
  snapshot plus the segments numbered after it, so a crash anywhere in
  the sequence leaves a readable journal.

Record shape (written by :class:`~repro.fabric.router.FabricMonitor`)::

    {"g": 17, "k": "op",   "op": "issue", "args": {"tx": {...}}}
    {"g": 18, "k": "skip", "op": "commit", "args": {"tx_id": "T3"},
     "rels": ["TxIn"]}
    {"g": 17, "k": "revoke", "op": "issue"}

``g`` is the router's global routing sequence number.  ``op`` records
are wire ops the router applied (journal-before-send); ``skip`` records
are ops parked in the shard's router-side backlog (they carry the
relations recorded at skip time); a ``revoke`` cancels the latest
``op`` record with the same ``g`` (the shard was alive and rejected the
op, so the journal must not replay it).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field

from repro.errors import FabricError
from repro.obs.log import get_logger

log = get_logger("fabric.journal")

#: Supported fsync policies for journal appends.
FSYNC_MODES = ("always", "batch", "never")

#: Default segment rollover size.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: In ``batch`` mode, fsync after this many unsynced appends.
DEFAULT_SYNC_EVERY = 32

_WAL_PREFIX = "wal-"
_SNAP_PREFIX = "snap-"
_SUFFIX = ".jsonl"


def encode_record(record: dict) -> bytes:
    """``<length> <crc32 hex> <json>\\n`` — self-delimiting and
    self-checking, so a reader can prove a record complete."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    head = f"{len(payload)} {zlib.crc32(payload):08x} ".encode("ascii")
    return head + payload + b"\n"


def decode_segment(data: bytes, path: str = "<segment>") -> tuple[list[dict], int]:
    """All complete records of one segment, plus the torn-byte count.

    A *torn* tail — the final record truncated mid-write, or its
    checksum wrong because only part of the payload reached disk — is
    dropped and counted.  Framing damage that is provably *not* the
    final record (complete records follow the bad bytes) raises
    :class:`FabricError`: that is corruption, not a crash artifact.
    """
    records: list[dict] = []
    offset = 0
    size = len(data)
    while offset < size:
        head_end = data.find(b" ", offset)
        if head_end < 0:
            return records, size - offset  # torn: no complete header
        crc_end = data.find(b" ", head_end + 1)
        if crc_end < 0:
            return records, size - offset
        try:
            length = int(data[offset:head_end])
            expected_crc = int(data[head_end + 1:crc_end], 16)
        except ValueError:
            raise FabricError(
                f"journal segment {path} has a malformed record header "
                f"at byte {offset}",
                code="journal-corrupt",
            ) from None
        payload_start = crc_end + 1
        payload_end = payload_start + length
        if payload_end + 1 > size:
            return records, size - offset  # torn: payload truncated
        payload = data[payload_start:payload_end]
        newline_ok = data[payload_end:payload_end + 1] == b"\n"
        crc_ok = zlib.crc32(payload) == expected_crc
        if not (newline_ok and crc_ok):
            if payload_end + 1 >= size:
                return records, size - offset  # torn final record
            raise FabricError(
                f"journal segment {path} fails its checksum at byte "
                f"{offset} with records following — corrupt, not torn",
                code="journal-corrupt",
            )
        try:
            record = json.loads(payload)
        except json.JSONDecodeError:
            raise FabricError(
                f"journal segment {path} holds unparseable JSON at byte "
                f"{offset}",
                code="journal-corrupt",
            ) from None
        records.append(record)
        offset = payload_end + 1
    return records, 0


@dataclass
class LoadedJournal:
    """One shard's journal read back from disk."""

    #: Every surviving record in replay order (snapshot first, then the
    #: post-snapshot segments; revoked ``op`` records already removed).
    records: list[dict] = field(default_factory=list)
    #: Bytes dropped as torn tails across all segments.
    torn_bytes: int = 0
    #: Segment/snapshot files that contributed records.
    files: list[str] = field(default_factory=list)

    @property
    def op_records(self) -> list[dict]:
        """Applied wire ops in replay (file) order."""
        return [r for r in self.records if r.get("k") == "op"]

    @property
    def skip_records(self) -> list[dict]:
        """Backlogged ops in original routing order."""
        return [r for r in self.records if r.get("k") == "skip"]


def _apply_revokes(records: list[dict]) -> list[dict]:
    """Drop each ``op`` record cancelled by a later ``revoke``."""
    out: list[dict] = []
    for record in records:
        if record.get("k") == "revoke":
            for i in range(len(out) - 1, -1, -1):
                candidate = out[i]
                if (
                    candidate.get("k") == "op"
                    and candidate.get("g") == record.get("g")
                    and candidate.get("op") == record.get("op")
                ):
                    del out[i]
                    break
        else:
            out.append(record)
    return out


class ShardJournal:
    """The segmented on-disk journal of one shard."""

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync_every: int = DEFAULT_SYNC_EVERY,
    ):
        if fsync not in FSYNC_MODES:
            raise FabricError(
                f"unknown fsync mode {fsync!r}; options: {FSYNC_MODES}"
            )
        self.directory = directory
        self.fsync = fsync
        self.segment_bytes = max(1, segment_bytes)
        self.sync_every = max(1, sync_every)
        os.makedirs(directory, exist_ok=True)
        self._file = None
        self._file_bytes = 0
        self._unsynced = 0
        self.appended = 0
        self.snapshots = 0

    # ------------------------------------------------------------------
    # File bookkeeping

    def _indexed_files(self) -> list[tuple[int, str, str]]:
        """``(index, kind, filename)`` for every journal file, sorted."""
        out = []
        for name in os.listdir(self.directory):
            if not name.endswith(_SUFFIX):
                continue
            for kind, prefix in (("wal", _WAL_PREFIX), ("snap", _SNAP_PREFIX)):
                if name.startswith(prefix):
                    stem = name[len(prefix):-len(_SUFFIX)]
                    try:
                        out.append((int(stem), kind, name))
                    except ValueError:
                        pass
        return sorted(out)

    def _next_index(self) -> int:
        files = self._indexed_files()
        return (files[-1][0] + 1) if files else 1

    def _open_segment(self) -> None:
        index = self._next_index()
        path = os.path.join(self.directory, f"{_WAL_PREFIX}{index:010d}{_SUFFIX}")
        self._close_file()
        self._file = open(path, "ab")
        self._file_bytes = 0

    def _close_file(self) -> None:
        if self._file is not None:
            try:
                self._file.flush()
                if self.fsync != "never":
                    os.fsync(self._file.fileno())
            except OSError:  # pragma: no cover - disk went away
                pass
            self._file.close()
            self._file = None
        self._unsynced = 0

    def _sync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Appending

    def append(self, record: dict) -> None:
        """Frame, write and (per policy) fsync one record."""
        data = encode_record(record)
        if self._file is None or (
            self._file_bytes and self._file_bytes + len(data) > self.segment_bytes
        ):
            self._open_segment()
        assert self._file is not None
        self._file.write(data)
        self._file.flush()
        self._file_bytes += len(data)
        self.appended += 1
        self._unsynced += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._unsynced >= self.sync_every
        ):
            os.fsync(self._file.fileno())
            self._unsynced = 0

    def flush(self) -> None:
        """Force unsynced appends to disk (no-op under ``never``)."""
        if self._file is not None and self._unsynced and self.fsync != "never":
            self._file.flush()
            os.fsync(self._file.fileno())
            self._unsynced = 0

    # ------------------------------------------------------------------
    # Snapshot + truncate compaction

    def write_snapshot(self, records: list[dict]) -> None:
        """Atomically replace the journal's history with *records*.

        The snapshot is written to a temp file, fsynced, and renamed
        into place; only then are the superseded segments unlinked.  A
        crash before the rename leaves the old history intact; a crash
        after it leaves stale segments the reader ignores (they are
        numbered at or below the snapshot).
        """
        index = self._next_index()
        final = os.path.join(
            self.directory, f"{_SNAP_PREFIX}{index:010d}{_SUFFIX}"
        )
        tmp = final + ".tmp"
        with open(tmp, "wb") as handle:
            for record in records:
                handle.write(encode_record(record))
            handle.flush()
            if self.fsync != "never":
                os.fsync(handle.fileno())
        os.replace(tmp, final)
        if self.fsync != "never":
            self._sync_directory()
        self._close_file()
        for file_index, _kind, name in self._indexed_files():
            if file_index < index:
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - already gone
                    pass
        self.snapshots += 1

    # ------------------------------------------------------------------
    # Reading

    def load(self) -> LoadedJournal:
        """Read the journal back: latest snapshot plus later segments."""
        self._close_file()
        files = self._indexed_files()
        snap_index = 0
        for index, kind, _name in files:
            if kind == "snap":
                snap_index = max(snap_index, index)
        loaded = LoadedJournal()
        raw: list[dict] = []
        for index, kind, name in files:
            if kind == "snap" and index != snap_index:
                continue
            if kind == "wal" and index <= snap_index:
                continue
            path = os.path.join(self.directory, name)
            with open(path, "rb") as handle:
                records, torn = decode_segment(handle.read(), path)
            raw.extend(records)
            loaded.torn_bytes += torn
            loaded.files.append(name)
            if torn:
                log.warning(
                    "dropped torn journal tail",
                    extra={"ctx": {"segment": path, "torn_bytes": torn}},
                )
        loaded.records = _apply_revokes(raw)
        return loaded

    # ------------------------------------------------------------------
    # Introspection / lifecycle

    @property
    def bytes(self) -> int:
        """Total on-disk size of the journal (all live files)."""
        total = 0
        for _index, _kind, name in self._indexed_files():
            try:
                total += os.path.getsize(os.path.join(self.directory, name))
            except OSError:  # pragma: no cover - raced a compaction
                pass
        return total

    @property
    def segment_count(self) -> int:
        return len(self._indexed_files())

    def close(self) -> None:
        self._close_file()


class FabricJournal:
    """The fleet-wide journal directory: one :class:`ShardJournal` per
    shard plus a small metadata file pinning the shard count."""

    META_NAME = "journal.json"
    FLEET_STATE_NAME = "fleet.json"

    def __init__(
        self,
        directory: str,
        shards: int | None = None,
        fsync: str = "batch",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync_every: int = DEFAULT_SYNC_EVERY,
    ):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        meta_path = os.path.join(directory, self.META_NAME)
        if os.path.exists(meta_path):
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            existing = int(meta.get("shards", 0))
            if shards is not None and shards != existing:
                raise FabricError(
                    f"journal at {directory} was written by a "
                    f"{existing}-shard fleet; cannot reuse it with "
                    f"{shards} shards",
                    code="journal-mismatch",
                )
            shards = existing
        elif shards is None:
            raise FabricError(
                f"no journal metadata at {directory} and no shard count given"
            )
        else:
            with open(meta_path, "w", encoding="utf-8") as handle:
                json.dump({"version": 1, "shards": shards}, handle)
                handle.write("\n")
        self.count = int(shards)
        self.fsync = fsync
        self.shards = [
            ShardJournal(
                os.path.join(directory, f"shard-{index:02d}"),
                fsync=fsync,
                segment_bytes=segment_bytes,
                sync_every=sync_every,
            )
            for index in range(self.count)
        ]

    @staticmethod
    def exists(directory: str) -> bool:
        """True when *directory* holds a fabric journal."""
        return os.path.exists(os.path.join(directory, FabricJournal.META_NAME))

    @property
    def fleet_state_path(self) -> str:
        """Where the supervisor records live shard pids for orphan
        reaping after a router crash."""
        return os.path.join(self.directory, self.FLEET_STATE_NAME)

    def append(self, shard: int, record: dict) -> None:
        self.shards[shard].append(record)

    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    def load_all(self) -> list[LoadedJournal]:
        return [shard.load() for shard in self.shards]

    @property
    def bytes(self) -> int:
        return sum(shard.bytes for shard in self.shards)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_SYNC_EVERY",
    "FSYNC_MODES",
    "FabricJournal",
    "LoadedJournal",
    "ShardJournal",
    "decode_segment",
    "encode_record",
]
