"""Shard process lifecycle: spawn, ready-probe, liveness, respawn.

A fleet shard is just ``repro serve`` over the seed database with a
single monitor — one interpreter, one GIL, one solver thread, its own
optional fork pool.  :class:`FleetSupervisor` spawns those subprocesses
(``sys.executable -m repro serve ... --port 0``), parses the ready line
for the ephemeral port, answers liveness questions from ``poll()``, and
respawns dead shards on demand.  It knows nothing about constraints or
routing: the router (:class:`~repro.fabric.router.FabricMonitor`) owns
the op journal and replays it into a respawned shard.

:class:`ThreadFleet` implements the same surface over in-process
servers on daemon threads (:func:`~repro.service.server.serve_in_thread`)
— the router logic is then testable without paying a subprocess spawn
per shard, and embedders get a single-process fleet for free.  Only the
subprocess fleet survives a SIGKILL test, of course.
"""

from __future__ import annotations

import json
import os
import select
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import FabricError, ServiceError
from repro.obs.log import get_logger

log = get_logger("fabric.supervisor")

#: What ``repro serve`` prints once it is accepting connections.
READY_PREFIX = "repro-service listening on "

#: A shard that prints this much without a ready line is talking
#: garbage (wrong binary, import-time spew): reap it, don't wait out
#: the spawn timeout.
MAX_PRE_READY_BYTES = 64 * 1024

#: How much captured stderr rides along on a spawn-failure FabricError.
STDERR_TAIL_BYTES = 4 * 1024


@dataclass
class ShardSpec:
    """How to build one shard server (shared by every shard of a fleet)."""

    db_path: str
    host: str = "127.0.0.1"
    backend: str | None = None
    engine: str | None = None
    pool_size: int = 1  # 1 = sequential solver, no nested fork pool
    queue_limit: int = 64
    deadline: float = 30.0
    log_level: str = "warning"

    def argv(self) -> list[str]:
        argv = [
            sys.executable, "-m", "repro",
            "--log-level", self.log_level,
            "serve", self.db_path,
            "--host", self.host,
            "--port", "0",
            "--pool-size", str(self.pool_size),
            "--queue-limit", str(self.queue_limit),
            "--deadline", str(self.deadline),
        ]
        if self.backend:
            argv += ["--backend", self.backend]
        if self.engine:
            argv += ["--engine", self.engine]
        return argv


class SubprocessShard:
    """One running shard server subprocess."""

    def __init__(
        self,
        index: int,
        process: subprocess.Popen,
        host: str,
        port: int,
        stderr_file=None,
    ):
        self.index = index
        self.process = process
        self.host = host
        self.port = port
        #: Anonymous temp file collecting the child's stderr, read back
        #: when a spawn fails (and freed with the handle).
        self.stderr_file = stderr_file

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def _close_files(self) -> None:
        if self.process.stdout is not None:
            self.process.stdout.close()
        if self.stderr_file is not None:
            try:
                self.stderr_file.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.stderr_file = None

    def kill(self) -> None:
        """SIGKILL — the failure-injection path; no drain, no goodbye."""
        if self.alive():
            self.process.kill()
        self.process.wait()

    def stop(self, grace: float = 5.0) -> None:
        """SIGTERM and wait; escalate to SIGKILL after *grace* seconds."""
        if self.alive():
            self.process.terminate()
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck shard
                self.process.kill()
                self.process.wait()
        else:
            self.process.wait()
        self._close_files()


def _repro_pythonpath() -> str:
    """A PYTHONPATH under which ``-m repro`` resolves to *this* package
    (the parent of the package directory, prepended to any existing)."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH")
    return package_root + (os.pathsep + existing if existing else "")


class FleetSupervisor:
    """Spawns and respawns the shard server subprocesses of one fleet."""

    def __init__(
        self,
        spec: ShardSpec,
        shards: int,
        spawn_timeout: float = 30.0,
        state_path: str | None = None,
    ):
        if shards < 1:
            raise ServiceError(f"need at least one shard, got {shards}")
        self.spec = spec
        self.count = shards
        self.spawn_timeout = spawn_timeout
        #: When set, every spawn/stop rewrites this JSON file with the
        #: live shard pids — what :func:`reap_stale` reads after a
        #: router crash to kill orphaned shard subprocesses (they run in
        #: their own sessions and survive the router's SIGKILL).
        self.state_path = state_path
        self.handles: list[SubprocessShard | None] = [None] * shards
        self.restarts: list[int] = [0] * shards

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        try:
            for index in range(self.count):
                self.handles[index] = self._spawn(index)
        except Exception:
            self.stop()
            raise
        self._write_state()

    def stop(self) -> None:
        for handle in self.handles:
            if handle is not None:
                handle.stop()
        self._write_state()

    def _write_state(self) -> None:
        if self.state_path is None:
            return
        state = {
            "shards": [
                {
                    "index": handle.index,
                    "pid": handle.pid,
                    "port": handle.port,
                }
                for handle in self.handles
                if handle is not None and handle.alive()
            ]
        }
        tmp = self.state_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as out:
                json.dump(state, out)
                out.write("\n")
            os.replace(tmp, self.state_path)
        except OSError:  # pragma: no cover - state file is best-effort
            log.warning(
                "could not write fleet state file",
                extra={"ctx": {"path": self.state_path}},
            )

    def handle(self, index: int) -> SubprocessShard:
        handle = self.handles[index]
        if handle is None:
            raise ServiceError(f"shard {index} was never started")
        return handle

    def alive(self, index: int) -> bool:
        handle = self.handles[index]
        return handle is not None and handle.alive()

    def restart(self, index: int) -> SubprocessShard:
        """Respawn a (dead or live) shard; its state starts from the
        seed database — the router replays its journal on top."""
        old = self.handles[index]
        if old is not None:
            old.kill()
            old._close_files()
        handle = self._spawn(index)
        self.handles[index] = handle
        self.restarts[index] += 1
        self._write_state()
        log.info(
            "shard respawned",
            extra={"ctx": {"shard": index, "pid": handle.pid, "port": handle.port}},
        )
        return handle

    def kill(self, index: int) -> None:
        """Failure injection: SIGKILL the shard, leave the slot dead."""
        handle = self.handles[index]
        if handle is not None:
            handle.kill()
            self._write_state()

    # ------------------------------------------------------------------
    # Spawning

    def _spawn(self, index: int) -> SubprocessShard:
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        env["PYTHONUNBUFFERED"] = "1"
        stderr_file = tempfile.TemporaryFile()
        process = subprocess.Popen(
            self.spec.argv(),
            stdout=subprocess.PIPE,
            stderr=stderr_file,
            env=env,
            text=True,
            # Its own process group: a Ctrl-C at the router's terminal
            # must not tear the shards down before the drain does.
            start_new_session=True,
        )
        try:
            host, port = self._await_ready(process, index, stderr_file)
        except Exception:
            if process.poll() is None:
                process.kill()
            process.wait()
            stderr_file.close()
            raise
        log.info(
            "shard listening",
            extra={"ctx": {"shard": index, "pid": process.pid, "port": port}},
        )
        return SubprocessShard(index, process, host, port, stderr_file)

    @staticmethod
    def _stderr_tail(stderr_file) -> str:
        """The captured stderr tail of a failed child, best-effort."""
        try:
            stderr_file.seek(0, os.SEEK_END)
            size = stderr_file.tell()
            stderr_file.seek(max(0, size - STDERR_TAIL_BYTES))
            return stderr_file.read().decode("utf-8", "replace").strip()
        except (OSError, ValueError):  # pragma: no cover - file torn down
            return ""

    def _await_ready(
        self, process: subprocess.Popen, index: int, stderr_file
    ) -> tuple[str, int]:
        """Block until the child prints its ready line; parse the port.

        A child that exits, closes stdout, or floods it with garbage
        before the ready line is reaped and surfaced as a
        :class:`FabricError` carrying its captured stderr — never a
        silent hang until the spawn timeout.
        """

        def fail(reason: str) -> FabricError:
            stderr = self._stderr_tail(stderr_file)
            message = f"shard {index} {reason}"
            if stderr:
                message += f"; stderr tail:\n{stderr}"
            return FabricError(
                message, code="spawn-failed", shard=index, stderr=stderr or None
            )

        assert process.stdout is not None
        deadline = time.monotonic() + self.spawn_timeout
        buffered = ""
        seen = 0
        fd = process.stdout.fileno()
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise fail(
                    f"did not become ready within {self.spawn_timeout}s"
                )
            if process.poll() is not None:
                raise fail(
                    f"exited with status {process.returncode} before ready"
                )
            readable, _, _ = select.select([fd], [], [], min(remaining, 0.25))
            if not readable:
                continue
            chunk = os.read(fd, 4096).decode("utf-8", "replace")
            if not chunk:
                raise fail("closed stdout before ready")
            buffered += chunk
            seen += len(chunk)
            while "\n" in buffered:
                line, buffered = buffered.split("\n", 1)
                if line.startswith(READY_PREFIX):
                    address = line[len(READY_PREFIX):].split(" ", 1)[0]
                    host, _, port = address.rpartition(":")
                    return host, int(port)
            if seen > MAX_PRE_READY_BYTES:
                raise fail(
                    f"wrote {seen} bytes of output without a ready line"
                )


def reap_stale(state_path: str) -> list[int]:
    """Kill orphaned shard subprocesses left by a crashed router.

    Shards run in their own sessions (``start_new_session=True``), so a
    SIGKILLed router leaves them alive, holding ports and CPU.  Before
    a ``--recover`` start, this reads the fleet state file the previous
    supervisor maintained and kills each recorded pid — but only after
    confirming via ``/proc/<pid>/cmdline`` that the pid still belongs
    to a ``repro`` process (pids get recycled; never kill a stranger).
    Returns the pids actually killed.  On platforms without ``/proc``
    this does nothing: better leaked shards than a wrong SIGKILL.
    """
    try:
        with open(state_path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, json.JSONDecodeError, ValueError):
        return []
    reaped: list[int] = []
    for item in state.get("shards", []):
        pid = item.get("pid")
        if not isinstance(pid, int) or pid <= 0:
            continue
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as handle:
                cmdline = handle.read()
        except OSError:
            continue  # gone already, or no /proc
        if b"repro" not in cmdline:
            continue  # pid recycled by something else
        try:
            os.kill(pid, SHARD_KILL_SIGNAL)
            reaped.append(pid)
        except OSError:  # pragma: no cover - raced its exit
            continue
    if reaped:
        log.warning(
            "reaped orphaned shard processes",
            extra={"ctx": {"pids": reaped, "state_path": state_path}},
        )
    try:
        os.unlink(state_path)
    except OSError:
        pass
    return reaped


class LivenessWatchdog:
    """Proactive shard liveness: probe, respawn, and circuit-break.

    PR 6's router only noticed a dead shard lazily, on the next op that
    happened to route there — a quiet fleet could sit half-dead for
    minutes.  The watchdog probes every ``interval`` seconds and
    respawns dead shards through the router's journal-replaying
    :meth:`~repro.fabric.router.FabricMonitor.revive_shard`, with
    exponential backoff between failed attempts.  A shard that crashes
    ``flap_limit`` times within ``flap_window`` seconds is crash-looping
    (bad seed file, poisoned op, OOM loop): the watchdog opens its
    circuit breaker via ``router.break_shard`` so ``/healthz`` and
    ``/fabricz`` degrade honestly instead of the fleet respawn-storming.

    *router* is duck-typed: ``shard_count``, ``is_broken(i)``,
    ``break_shard(i, reason)``, ``revive_shard(i)``, and ``_fleet``.
    :meth:`check_once` is the whole probe pass, public so tests drive
    it without threads or sleeps.
    """

    def __init__(
        self,
        router,
        interval: float = 2.0,
        backoff_base: float = 0.5,
        backoff_max: float = 30.0,
        flap_limit: int = 5,
        flap_window: float = 30.0,
        metrics=None,
    ):
        self._router = router
        self.interval = interval
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.flap_limit = max(1, flap_limit)
        self.flap_window = flap_window
        self._metrics = metrics
        count = router.shard_count
        #: Monotonic timestamps of recently observed crashes, per shard.
        self._crashes: list[deque] = [deque() for _ in range(count)]
        self._failures = [0] * count
        self._next_attempt = [0.0] * count
        self.respawns = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if metrics is not None:
            # Pre-register every per-shard series so a healthy fleet
            # still exposes the counters at 0 — dashboards can alert on
            # "went up" without waiting for the first respawn to create
            # the series.
            for index in range(count):
                metrics.counter(
                    "repro_fabric_watchdog_respawns_total",
                    "Dead shards proactively respawned by the watchdog.",
                    labels={"shard": str(index)},
                )

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-fabric-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.check_once()
            except Exception:  # pragma: no cover - never kill the thread
                log.warning("watchdog pass failed", exc_info=True)

    def check_once(self, now: float | None = None) -> None:
        """One probe pass over every shard (the thread's loop body)."""
        router = self._router
        for index in range(router.shard_count):
            if router.is_broken(index):
                continue
            if router._fleet.alive(index):
                self._failures[index] = 0
                continue
            if now is None:
                now = time.monotonic()
            if now < self._next_attempt[index]:
                continue
            crashes = self._crashes[index]
            crashes.append(now)
            while crashes and now - crashes[0] > self.flap_window:
                crashes.popleft()
            if len(crashes) >= self.flap_limit:
                router.break_shard(
                    index,
                    f"{len(crashes)} crashes within {self.flap_window:g}s",
                )
                continue
            try:
                router.revive_shard(index)
            except (ConnectionError, ServiceError) as error:
                self._failures[index] += 1
                delay = min(
                    self.backoff_base * (2 ** (self._failures[index] - 1)),
                    self.backoff_max,
                )
                self._next_attempt[index] = now + delay
                log.warning(
                    "watchdog respawn failed; backing off",
                    extra={
                        "ctx": {
                            "shard": index,
                            "failures": self._failures[index],
                            "retry_in": delay,
                            "error": str(error),
                        }
                    },
                )
                continue
            self._failures[index] = 0
            self.respawns += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "repro_fabric_watchdog_respawns_total",
                    "Dead shards proactively respawned by the watchdog.",
                    labels={"shard": str(index)},
                ).inc()


class ThreadShard:
    """An in-process shard server on a daemon thread (tests, embedding)."""

    def __init__(self, index: int, handle, service):
        self.index = index
        self._handle = handle
        self._service = service
        self.host = handle.host
        self.port = handle.port
        self.pid = os.getpid()
        self._dead = False

    def alive(self) -> bool:
        return not self._dead

    def kill(self) -> None:
        self.stop()

    def stop(self, grace: float = 5.0) -> None:
        if not self._dead:
            self._dead = True
            self._handle.stop(join_timeout=grace)
            monitor = self._service.monitor
            close = getattr(getattr(monitor, "checker", None), "close", None)
            if callable(close):
                close()


class ThreadFleet:
    """The supervisor surface over in-process servers (no subprocesses).

    ``monitor_factory()`` builds a fresh monitor-shaped object from the
    seed state for every (re)spawn — state reconstruction on restart is
    the router's journal replay, exactly as with real subprocesses.
    """

    def __init__(self, monitor_factory, shards: int):
        from repro.service.server import ConstraintService, serve_in_thread

        if shards < 1:
            raise ServiceError(f"need at least one shard, got {shards}")
        self._factory = monitor_factory
        self._serve = lambda: serve_in_thread(ConstraintService(self._factory()))
        self.count = shards
        self.handles: list[ThreadShard | None] = [None] * shards
        self.restarts: list[int] = [0] * shards

    def start(self) -> None:
        for index in range(self.count):
            self.handles[index] = self._spawn(index)

    def stop(self) -> None:
        for handle in self.handles:
            if handle is not None:
                handle.stop()

    def handle(self, index: int) -> ThreadShard:
        handle = self.handles[index]
        if handle is None:
            raise ServiceError(f"shard {index} was never started")
        return handle

    def alive(self, index: int) -> bool:
        handle = self.handles[index]
        return handle is not None and handle.alive()

    def restart(self, index: int) -> ThreadShard:
        old = self.handles[index]
        if old is not None:
            old.stop()
        handle = self._spawn(index)
        self.handles[index] = handle
        self.restarts[index] += 1
        return handle

    def kill(self, index: int) -> None:
        handle = self.handles[index]
        if handle is not None:
            handle.kill()

    def _spawn(self, index: int) -> ThreadShard:
        server_handle = self._serve()
        return ThreadShard(index, server_handle, server_handle.service)


# SIGKILL is what the chaos tests send; re-export so they need no
# platform-conditional import.
SHARD_KILL_SIGNAL = signal.SIGKILL if hasattr(signal, "SIGKILL") else signal.SIGTERM

__all__ = [
    "FleetSupervisor",
    "LivenessWatchdog",
    "ShardSpec",
    "SubprocessShard",
    "ThreadFleet",
    "ThreadShard",
    "SHARD_KILL_SIGNAL",
    "READY_PREFIX",
    "reap_stale",
]
