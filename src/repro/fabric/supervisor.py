"""Shard process lifecycle: spawn, ready-probe, liveness, respawn.

A fleet shard is just ``repro serve`` over the seed database with a
single monitor — one interpreter, one GIL, one solver thread, its own
optional fork pool.  :class:`FleetSupervisor` spawns those subprocesses
(``sys.executable -m repro serve ... --port 0``), parses the ready line
for the ephemeral port, answers liveness questions from ``poll()``, and
respawns dead shards on demand.  It knows nothing about constraints or
routing: the router (:class:`~repro.fabric.router.FabricMonitor`) owns
the op journal and replays it into a respawned shard.

:class:`ThreadFleet` implements the same surface over in-process
servers on daemon threads (:func:`~repro.service.server.serve_in_thread`)
— the router logic is then testable without paying a subprocess spawn
per shard, and embedders get a single-process fleet for free.  Only the
subprocess fleet survives a SIGKILL test, of course.
"""

from __future__ import annotations

import os
import select
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.obs.log import get_logger

log = get_logger("fabric.supervisor")

#: What ``repro serve`` prints once it is accepting connections.
READY_PREFIX = "repro-service listening on "


@dataclass
class ShardSpec:
    """How to build one shard server (shared by every shard of a fleet)."""

    db_path: str
    host: str = "127.0.0.1"
    backend: str | None = None
    engine: str | None = None
    pool_size: int = 1  # 1 = sequential solver, no nested fork pool
    queue_limit: int = 64
    deadline: float = 30.0
    log_level: str = "warning"

    def argv(self) -> list[str]:
        argv = [
            sys.executable, "-m", "repro",
            "--log-level", self.log_level,
            "serve", self.db_path,
            "--host", self.host,
            "--port", "0",
            "--pool-size", str(self.pool_size),
            "--queue-limit", str(self.queue_limit),
            "--deadline", str(self.deadline),
        ]
        if self.backend:
            argv += ["--backend", self.backend]
        if self.engine:
            argv += ["--engine", self.engine]
        return argv


class SubprocessShard:
    """One running shard server subprocess."""

    def __init__(self, index: int, process: subprocess.Popen, host: str, port: int):
        self.index = index
        self.process = process
        self.host = host
        self.port = port

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the failure-injection path; no drain, no goodbye."""
        if self.alive():
            self.process.kill()
        self.process.wait()

    def stop(self, grace: float = 5.0) -> None:
        """SIGTERM and wait; escalate to SIGKILL after *grace* seconds."""
        if self.alive():
            self.process.terminate()
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck shard
                self.process.kill()
                self.process.wait()
        else:
            self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()


def _repro_pythonpath() -> str:
    """A PYTHONPATH under which ``-m repro`` resolves to *this* package
    (the parent of the package directory, prepended to any existing)."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH")
    return package_root + (os.pathsep + existing if existing else "")


class FleetSupervisor:
    """Spawns and respawns the shard server subprocesses of one fleet."""

    def __init__(
        self,
        spec: ShardSpec,
        shards: int,
        spawn_timeout: float = 30.0,
    ):
        if shards < 1:
            raise ServiceError(f"need at least one shard, got {shards}")
        self.spec = spec
        self.count = shards
        self.spawn_timeout = spawn_timeout
        self.handles: list[SubprocessShard | None] = [None] * shards
        self.restarts: list[int] = [0] * shards

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        try:
            for index in range(self.count):
                self.handles[index] = self._spawn(index)
        except Exception:
            self.stop()
            raise

    def stop(self) -> None:
        for handle in self.handles:
            if handle is not None:
                handle.stop()

    def handle(self, index: int) -> SubprocessShard:
        handle = self.handles[index]
        if handle is None:
            raise ServiceError(f"shard {index} was never started")
        return handle

    def alive(self, index: int) -> bool:
        handle = self.handles[index]
        return handle is not None and handle.alive()

    def restart(self, index: int) -> SubprocessShard:
        """Respawn a (dead or live) shard; its state starts from the
        seed database — the router replays its journal on top."""
        old = self.handles[index]
        if old is not None:
            old.kill()
            if old.process.stdout is not None:
                old.process.stdout.close()
        handle = self._spawn(index)
        self.handles[index] = handle
        self.restarts[index] += 1
        log.info(
            "shard respawned",
            extra={"ctx": {"shard": index, "pid": handle.pid, "port": handle.port}},
        )
        return handle

    def kill(self, index: int) -> None:
        """Failure injection: SIGKILL the shard, leave the slot dead."""
        handle = self.handles[index]
        if handle is not None:
            handle.kill()

    # ------------------------------------------------------------------
    # Spawning

    def _spawn(self, index: int) -> SubprocessShard:
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            self.spec.argv(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
            # Its own process group: a Ctrl-C at the router's terminal
            # must not tear the shards down before the drain does.
            start_new_session=True,
        )
        try:
            host, port = self._await_ready(process)
        except Exception:
            if process.poll() is None:
                process.kill()
            process.wait()
            raise
        log.info(
            "shard listening",
            extra={"ctx": {"shard": index, "pid": process.pid, "port": port}},
        )
        return SubprocessShard(index, process, host, port)

    def _await_ready(self, process: subprocess.Popen) -> tuple[str, int]:
        """Block until the child prints its ready line; parse the port."""
        assert process.stdout is not None
        deadline = time.monotonic() + self.spawn_timeout
        buffered = ""
        fd = process.stdout.fileno()
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"shard did not become ready within {self.spawn_timeout}s"
                )
            if process.poll() is not None:
                raise ServiceError(
                    f"shard exited with status {process.returncode} before ready"
                )
            readable, _, _ = select.select([fd], [], [], min(remaining, 0.25))
            if not readable:
                continue
            chunk = os.read(fd, 4096).decode("utf-8", "replace")
            if not chunk:
                raise ServiceError("shard closed stdout before ready")
            buffered += chunk
            while "\n" in buffered:
                line, buffered = buffered.split("\n", 1)
                if line.startswith(READY_PREFIX):
                    address = line[len(READY_PREFIX):].split(" ", 1)[0]
                    host, _, port = address.rpartition(":")
                    return host, int(port)


class ThreadShard:
    """An in-process shard server on a daemon thread (tests, embedding)."""

    def __init__(self, index: int, handle, service):
        self.index = index
        self._handle = handle
        self._service = service
        self.host = handle.host
        self.port = handle.port
        self.pid = os.getpid()
        self._dead = False

    def alive(self) -> bool:
        return not self._dead

    def kill(self) -> None:
        self.stop()

    def stop(self, grace: float = 5.0) -> None:
        if not self._dead:
            self._dead = True
            self._handle.stop(join_timeout=grace)
            monitor = self._service.monitor
            close = getattr(getattr(monitor, "checker", None), "close", None)
            if callable(close):
                close()


class ThreadFleet:
    """The supervisor surface over in-process servers (no subprocesses).

    ``monitor_factory()`` builds a fresh monitor-shaped object from the
    seed state for every (re)spawn — state reconstruction on restart is
    the router's journal replay, exactly as with real subprocesses.
    """

    def __init__(self, monitor_factory, shards: int):
        from repro.service.server import ConstraintService, serve_in_thread

        if shards < 1:
            raise ServiceError(f"need at least one shard, got {shards}")
        self._factory = monitor_factory
        self._serve = lambda: serve_in_thread(ConstraintService(self._factory()))
        self.count = shards
        self.handles: list[ThreadShard | None] = [None] * shards
        self.restarts: list[int] = [0] * shards

    def start(self) -> None:
        for index in range(self.count):
            self.handles[index] = self._spawn(index)

    def stop(self) -> None:
        for handle in self.handles:
            if handle is not None:
                handle.stop()

    def handle(self, index: int) -> ThreadShard:
        handle = self.handles[index]
        if handle is None:
            raise ServiceError(f"shard {index} was never started")
        return handle

    def alive(self, index: int) -> bool:
        handle = self.handles[index]
        return handle is not None and handle.alive()

    def restart(self, index: int) -> ThreadShard:
        old = self.handles[index]
        if old is not None:
            old.stop()
        handle = self._spawn(index)
        self.handles[index] = handle
        self.restarts[index] += 1
        return handle

    def kill(self, index: int) -> None:
        handle = self.handles[index]
        if handle is not None:
            handle.kill()

    def _spawn(self, index: int) -> ThreadShard:
        server_handle = self._serve()
        return ThreadShard(index, server_handle, server_handle.service)


# SIGKILL is what the chaos tests send; re-export so they need no
# platform-conditional import.
SHARD_KILL_SIGNAL = signal.SIGKILL if hasattr(signal, "SIGKILL") else signal.SIGTERM

__all__ = [
    "FleetSupervisor",
    "ShardSpec",
    "SubprocessShard",
    "ThreadFleet",
    "ThreadShard",
    "SHARD_KILL_SIGNAL",
    "READY_PREFIX",
]
