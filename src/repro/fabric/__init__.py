"""repro.fabric — a cross-process shard fleet behind one wire endpoint.

The fabric promotes :class:`~repro.service.shard.ShardedMonitor`'s
in-process constraint partitioning to B-way *hardware* parallelism:
every shard runs as its own ``repro serve`` subprocess (one interpreter,
one GIL, one solver each), and a router process speaks the same
JSON-lines protocol to clients, so existing
:class:`~repro.service.client.ServiceClient` code works unchanged
against a fleet.

* :mod:`~repro.fabric.topology` — :class:`ShardTopology`, the routing
  brain shared with ``ShardedMonitor``: constraint placement by coupled
  footprint, skip/replay backlogs, per-shard pending bookkeeping, and
  footprint-driven rebalance plans.  It only *decides*; executors apply.
* :mod:`~repro.fabric.supervisor` — shard process lifecycle: spawn,
  ready-probe, liveness, kill and respawn (:class:`FleetSupervisor`
  over subprocesses; :class:`ThreadFleet` over in-process servers for
  tests and embedding).
* :mod:`~repro.fabric.router` — :class:`FabricMonitor`, the
  monitor-shaped front that :class:`~repro.service.server.ConstraintService`
  serves: it fans state changes to the coupled closure of affected
  shards, scatter-gathers ``status_all``, journals every applied op so
  a killed shard can be respawned and replayed, adopts shard-side trace
  spans over the socket, and migrates constraints on ``rebalance``.

Run a fleet from the command line with ``repro fabric --shards N``;
see ``docs/FABRIC.md`` for topology and failure semantics.
"""

from repro.fabric.router import FabricMonitor
from repro.fabric.supervisor import FleetSupervisor, ShardSpec, ThreadFleet
from repro.fabric.topology import ShardTopology

__all__ = [
    "FabricMonitor",
    "FleetSupervisor",
    "ShardSpec",
    "ThreadFleet",
    "ShardTopology",
]
