"""repro.fabric — a cross-process shard fleet behind one wire endpoint.

The fabric promotes :class:`~repro.service.shard.ShardedMonitor`'s
in-process constraint partitioning to B-way *hardware* parallelism:
every shard runs as its own ``repro serve`` subprocess (one interpreter,
one GIL, one solver each), and a router process speaks the same
JSON-lines protocol to clients, so existing
:class:`~repro.service.client.ServiceClient` code works unchanged
against a fleet.

* :mod:`~repro.fabric.topology` — :class:`ShardTopology`, the routing
  brain shared with ``ShardedMonitor``: constraint placement by coupled
  footprint, skip/replay backlogs, per-shard pending bookkeeping, and
  footprint-driven rebalance plans.  It only *decides*; executors apply.
* :mod:`~repro.fabric.supervisor` — shard process lifecycle: spawn,
  ready-probe, liveness, kill and respawn (:class:`FleetSupervisor`
  over subprocesses; :class:`ThreadFleet` over in-process servers for
  tests and embedding).
* :mod:`~repro.fabric.router` — :class:`FabricMonitor`, the
  monitor-shaped front that :class:`~repro.service.server.ConstraintService`
  serves: it fans state changes to the coupled closure of affected
  shards, scatter-gathers ``status_all``, journals every applied op so
  a killed shard can be respawned and replayed, adopts shard-side trace
  spans over the socket, and migrates constraints on ``rebalance``.
* :mod:`~repro.fabric.journal` — the durable half of that journal:
  segmented, checksummed JSON-lines write-ahead files per shard
  (:class:`FabricJournal`), written *before* each op is sent, with
  snapshot-and-truncate compaction.  :meth:`FabricMonitor.recover`
  rebuilds a whole router from one after a crash.
* :mod:`~repro.fabric.chaos` — fault injection: a seeded
  :class:`ChaosProxy` per shard (connection drops, delayed / truncated
  replies, kill-during-replay) behind a fleet-shaped
  :class:`ChaosFleet`, for crash-parity testing.

Run a fleet from the command line with ``repro fabric --shards N``
(add ``--journal-dir`` for durability, ``--recover`` after a crash);
see ``docs/FABRIC.md`` for topology, durability and failure semantics.
"""

from repro.fabric.chaos import ChaosFleet, ChaosProxy, FaultPlan
from repro.fabric.journal import FabricJournal, ShardJournal
from repro.fabric.router import FabricMonitor
from repro.fabric.supervisor import (
    FleetSupervisor,
    LivenessWatchdog,
    ShardSpec,
    ThreadFleet,
    reap_stale,
)
from repro.fabric.topology import ShardTopology

__all__ = [
    "ChaosFleet",
    "ChaosProxy",
    "FabricJournal",
    "FabricMonitor",
    "FaultPlan",
    "FleetSupervisor",
    "LivenessWatchdog",
    "ShardJournal",
    "ShardSpec",
    "ThreadFleet",
    "ShardTopology",
    "reap_stale",
]
