"""Fault injection for the shard fabric: a chaos proxy per shard.

The durability story of :mod:`repro.fabric` — journal-before-send,
revive-by-replay, recovery from disk — is only as good as the failure
modes it has actually met.  This module injects them deterministically:
a :class:`ChaosProxy` sits on its own TCP port between the router and
each shard server and, driven by a seeded :class:`FaultPlan`, injects

* **connection drops** before the request is forwarded (the op never
  reached the shard),
* **reply drops** after the shard applied the op (the classic
  "sent, reply lost" ambiguity the idempotency classification exists
  for),
* **delayed replies** (the router's per-shard socket timeout fires),
* **truncated replies** (a partial JSON line, then EOF), and
* **kill-during-replay**: after a respawn, the shard is SIGKILLed again
  once K replayed ops have passed through — the revive path's own crash
  window.

:class:`ChaosFleet` wraps any fleet (a
:class:`~repro.fabric.supervisor.FleetSupervisor` or
:class:`~repro.fabric.supervisor.ThreadFleet`) so a
:class:`~repro.fabric.router.FabricMonitor` dials the proxies without
knowing it; the randomized crash-parity suite in
``tests/fabric/test_chaos.py`` then proves verdicts stay identical to a
single uninterrupted monitor under every injected fault.  Same seed,
same schedule — a failing run reproduces exactly.
"""

from __future__ import annotations

import random
import socket
import threading
import time

from repro.errors import ServiceError
from repro.obs.log import get_logger

log = get_logger("fabric.chaos")

FAULT_KINDS = ("drop", "reply_drop", "delay", "truncate")


class FaultPlan:
    """A seeded schedule of faults: probabilities per request, plus a
    per-respawn chance of arming a kill-during-replay."""

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        reply_drop: float = 0.0,
        delay: float = 0.0,
        truncate: float = 0.0,
        kill_replay: float = 0.0,
        delay_seconds: float = 0.5,
        kill_after: int = 2,
    ):
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.drop = drop
        self.reply_drop = reply_drop
        self.delay = delay
        self.truncate = truncate
        self.kill_replay = kill_replay
        self.delay_seconds = delay_seconds
        self.kill_after = kill_after

    def next_fault(self, shard: int) -> str | None:
        """The fault (if any) to inject on the next request of *shard*."""
        with self._lock:
            roll = self._rng.random()
        for kind in FAULT_KINDS:
            threshold = getattr(self, kind)
            if roll < threshold:
                return kind
            roll -= threshold
        return None

    def replay_kill(self, shard: int) -> int | None:
        """On a respawn of *shard*: requests to let through before
        SIGKILLing it again, or ``None`` to leave this replay alone."""
        with self._lock:
            if self._rng.random() < self.kill_replay:
                return self.kill_after
        return None


class ChaosProxy:
    """A line-granularity TCP proxy for one shard, injecting faults."""

    def __init__(
        self,
        index: int,
        backend_host: str,
        backend_port: int,
        plan: FaultPlan,
        kill_backend,
    ):
        self.index = index
        self._backend = (backend_host, backend_port)
        self._plan = plan
        self._kill_backend = kill_backend
        self._lock = threading.Lock()
        self._kill_after: int | None = None
        self._closed = False
        #: fault kind -> times injected (``"kill_replay"`` included).
        self.injected: dict[str, int] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self._thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-chaos-{index}",
            daemon=True,
        )
        self._thread.start()

    def arm_kill(self, after_requests: int) -> None:
        """SIGKILL the backend once this many more requests pass."""
        with self._lock:
            self._kill_after = max(1, after_requests)

    def _count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: proxy stopped
            threading.Thread(
                target=self._handle_conn, args=(conn,), daemon=True
            ).start()

    def _handle_conn(self, client: socket.socket) -> None:
        try:
            backend = socket.create_connection(self._backend, timeout=10.0)
        except OSError:
            client.close()
            return
        client_file = client.makefile("rb")
        backend_file = backend.makefile("rb")
        try:
            while True:
                line = client_file.readline()
                if not line:
                    return
                kill_now = False
                with self._lock:
                    if self._kill_after is not None:
                        self._kill_after -= 1
                        if self._kill_after <= 0:
                            self._kill_after = None
                            kill_now = True
                if kill_now:
                    self._count("kill_replay")
                    self._kill_backend()
                    return
                fault = self._plan.next_fault(self.index)
                if fault == "drop":
                    self._count(fault)
                    return  # request never reaches the shard
                if fault == "delay":
                    self._count(fault)
                    time.sleep(self._plan.delay_seconds)
                backend.sendall(line)
                reply = backend_file.readline()
                if not reply:
                    return  # backend died mid-request
                if fault == "reply_drop":
                    self._count(fault)
                    return  # the shard applied the op; the reply is lost
                if fault == "truncate":
                    self._count(fault)
                    client.sendall(reply[: max(1, len(reply) // 2)])
                    return
                client.sendall(reply)
        except OSError:
            return
        finally:
            for closer in (client_file, backend_file, client, backend):
                try:
                    closer.close()
                except OSError:
                    pass

    def stop(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # close() alone does NOT wake a thread blocked in accept() (the
        # in-flight syscall pins the kernel socket, so the port would
        # stay bound and silently swallow later connections); shutdown()
        # is what actually unblocks it.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # never connected, or already dead — fine either way
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._thread.join(timeout=5.0)


class ProxyHandle:
    """What the router sees as a shard handle: the proxy's address,
    the backend's liveness."""

    def __init__(self, proxy: ChaosProxy, backend_handle):
        self.proxy = proxy
        self.backend = backend_handle
        self.host = proxy.host
        self.port = proxy.port

    @property
    def pid(self):
        return getattr(self.backend, "pid", None)

    def alive(self) -> bool:
        return self.backend.alive()


class ChaosFleet:
    """A fleet wrapper interposing one :class:`ChaosProxy` per shard.

    Duck-types the supervisor surface the router consumes (``count``,
    ``handles``, ``start/stop/handle/alive/restart/kill``,
    ``restarts``), so ``FabricMonitor(db, ChaosFleet(fleet, plan))``
    runs the real routing, journaling and revive machinery with every
    wire exchange at the plan's mercy.
    """

    def __init__(self, fleet, plan: FaultPlan):
        self._fleet = fleet
        self.plan = plan
        self.count = fleet.count
        self.handles: list[ProxyHandle | None] = [None] * fleet.count
        self._proxies: list[ChaosProxy | None] = [None] * fleet.count
        #: Faults injected by proxies already retired by a restart.
        self._retired_faults: dict[str, int] = {}

    @property
    def restarts(self) -> list[int]:
        return self._fleet.restarts

    def start(self) -> None:
        self._fleet.start()
        for index in range(self.count):
            self.handles[index] = self._wrap(index)

    def _wrap(self, index: int) -> ProxyHandle:
        backend = self._fleet.handle(index)
        old = self._proxies[index]
        if old is not None:
            old.stop()
            for kind, count in old.injected.items():
                self._retired_faults[kind] = (
                    self._retired_faults.get(kind, 0) + count
                )
        proxy = ChaosProxy(
            index,
            backend.host,
            backend.port,
            self.plan,
            lambda i=index: self._fleet.kill(i),
        )
        self._proxies[index] = proxy
        return ProxyHandle(proxy, backend)

    def handle(self, index: int) -> ProxyHandle:
        handle = self.handles[index]
        if handle is None:
            raise ServiceError(f"shard {index} was never started")
        return handle

    def alive(self, index: int) -> bool:
        return self._fleet.alive(index)

    def restart(self, index: int) -> ProxyHandle:
        self._fleet.restart(index)
        handle = self._wrap(index)
        self.handles[index] = handle
        kill_after = self.plan.replay_kill(index)
        if kill_after is not None:
            log.info(
                "arming kill-during-replay",
                extra={"ctx": {"shard": index, "after": kill_after}},
            )
            self._proxies[index].arm_kill(kill_after)
        return handle

    def kill(self, index: int) -> None:
        self._fleet.kill(index)

    def stop(self) -> None:
        for proxy in self._proxies:
            if proxy is not None:
                proxy.stop()
        self._fleet.stop()

    def fault_counts(self) -> dict[str, int]:
        """Aggregated injected-fault counts across all proxies, retired
        ones included."""
        totals = dict(self._retired_faults)
        for proxy in self._proxies:
            if proxy is None:
                continue
            for kind, count in proxy.injected.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals


__all__ = [
    "ChaosFleet",
    "ChaosProxy",
    "FAULT_KINDS",
    "FaultPlan",
    "ProxyHandle",
]
