"""Structured, trace-correlated logging for the stack.

Built on :mod:`logging` (dependency-free), namespaced under the
``repro`` root logger.  Two formatters:

* :class:`JsonFormatter` — one JSON object per line: ``ts``, ``level``,
  ``logger``, ``message``, plus ``trace_id`` / ``span_id`` when the
  record was emitted inside an active span (see
  :mod:`repro.obs.trace`), plus any mapping passed as the ``ctx``
  extra::

      log.warning("drain timed out", extra={"ctx": {"timeout": 10.0}})

* :class:`TextFormatter` — the same fields human-readably, with a
  ``[trace=...]`` suffix when correlated.

Library code obtains loggers with :func:`get_logger` and logs freely;
nothing is printed unless the embedding application (or the
``repro serve --log-level/--log-json`` CLI) calls
:func:`configure_logging`, which installs exactly one handler on the
``repro`` root (idempotent — reconfiguring replaces it).
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Mapping, TextIO

from repro.obs import trace as obs_trace

LEVELS = ("debug", "info", "warning", "error", "critical")

#: Marker so reconfiguration replaces our handler and only ours.
_HANDLER_FLAG = "_repro_obs_handler"


def _record_context(record: logging.LogRecord) -> dict[str, Any]:
    payload: dict[str, Any] = {}
    span = obs_trace.current()
    if span is not None and span.trace_id is not None:
        payload["trace_id"] = span.trace_id
        payload["span_id"] = span.span_id
    ctx = getattr(record, "ctx", None)
    if isinstance(ctx, Mapping):
        payload.update(ctx)
    return payload


class JsonFormatter(logging.Formatter):
    """One JSON object per line; see the module docstring for schema."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_record_context(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextFormatter(logging.Formatter):
    """Human-readable line with the same correlation fields."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (
            f"{stamp}.{int(record.msecs):03d} "
            f"{record.levelname.lower():<8} {record.name}: "
            f"{record.getMessage()}"
        )
        context = _record_context(record)
        trace_id = context.pop("trace_id", None)
        context.pop("span_id", None)
        if context:
            line += " " + " ".join(
                f"{key}={value}" for key, value in sorted(context.items())
            )
        if trace_id:
            line += f" [trace={trace_id}]"
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install (or replace) the single ``repro`` log handler.

    Returns the configured root-of-namespace logger.  Raises
    ``ValueError`` on an unknown level name.
    """
    if level.lower() not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}")
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    root.handlers = [
        existing
        for existing in root.handlers
        if not getattr(existing, _HANDLER_FLAG, False)
    ] + [handler]
    root.propagate = False
    return root


__all__ = [
    "JsonFormatter",
    "TextFormatter",
    "configure_logging",
    "get_logger",
    "LEVELS",
]
