"""repro.obs — dependency-free observability for the DCSat stack.

Three pieces, usable separately or together:

* :mod:`~repro.obs.trace` — a contextvar-based span tracer with
  monotonic-clock timing, per-span attributes folded from
  :class:`~repro.core.results.DCSatStats`, a bounded ring of recent
  traces, JSON export and an ASCII tree/flame renderer.  The solver
  stack (checker, OptDCSat, monitor, pool, shards, server) is
  instrumented with it end to end; spans produced inside pool fork
  workers are serialized back and re-parented under the submitting
  span.
* :mod:`~repro.obs.http` — an asyncio HTTP endpoint serving
  ``GET /metrics`` (Prometheus text), ``GET /healthz`` and
  ``GET /tracez`` next to the JSON-lines port
  (``repro serve --http-port``).
* :mod:`~repro.obs.log` — structured JSON logging correlated with the
  active trace/span (``repro serve --log-level/--log-json``).

See ``docs/OBSERVABILITY.md`` for the span model, endpoint reference
and log schema.
"""

from repro.obs.http import ObservabilityEndpoint
from repro.obs.log import JsonFormatter, TextFormatter, configure_logging, get_logger
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current,
    current_trace_id,
    default_tracer,
    render_tree,
    span,
    trace,
)

__all__ = [
    "ObservabilityEndpoint",
    "JsonFormatter",
    "TextFormatter",
    "configure_logging",
    "get_logger",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current",
    "current_trace_id",
    "default_tracer",
    "render_tree",
    "span",
    "trace",
]
