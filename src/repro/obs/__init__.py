"""repro.obs — dependency-free observability for the DCSat stack.

Three pieces, usable separately or together:

* :mod:`~repro.obs.trace` — a contextvar-based span tracer with
  monotonic-clock timing, per-span attributes folded from
  :class:`~repro.core.results.DCSatStats`, a bounded ring of recent
  traces, JSON export and an ASCII tree/flame renderer.  The solver
  stack (checker, OptDCSat, monitor, pool, shards, server) is
  instrumented with it end to end; spans produced inside pool fork
  workers are serialized back and re-parented under the submitting
  span.
* :mod:`~repro.obs.http` — an asyncio HTTP endpoint serving
  ``GET /metrics`` (Prometheus text), ``GET /healthz``,
  ``GET /tracez`` and ``GET /perfz`` next to the JSON-lines port
  (``repro serve --http-port``).
* :mod:`~repro.obs.log` — structured JSON logging correlated with the
  active trace/span (``repro serve --log-level/--log-json``).
* :mod:`~repro.obs.perf` — the perf telemetry plane: a rolling
  component :class:`~repro.obs.perf.CostModel` fed by per-solve stats,
  driving the solver pool's cost-aware group planning and the
  ``/perfz`` exposition.
* :mod:`~repro.obs.bench` — committed bench-artifact trend reports and
  the CI regression gate (``repro bench report`` / ``repro bench
  diff``).

See ``docs/OBSERVABILITY.md`` for the span model, endpoint reference
and log schema.
"""

from repro.obs.http import ObservabilityEndpoint
from repro.obs.log import JsonFormatter, TextFormatter, configure_logging, get_logger
from repro.obs.perf import CostModel, build_info, default_cost_model
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current,
    current_trace_id,
    default_tracer,
    render_tree,
    span,
    trace,
)

__all__ = [
    "ObservabilityEndpoint",
    "CostModel",
    "build_info",
    "default_cost_model",
    "JsonFormatter",
    "TextFormatter",
    "configure_logging",
    "get_logger",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current",
    "current_trace_id",
    "default_tracer",
    "render_tree",
    "span",
    "trace",
]
