"""A minimal asyncio HTTP/1.1 endpoint for scrapes and probes.

Serves four read-only routes next to the JSON-lines service port,
dependency-free (hand-rolled request parsing — GET only, no bodies):

* ``GET /metrics`` — the Prometheus text exposition
  (:meth:`~repro.service.metrics.MetricsRegistry.render_text`);
* ``GET /healthz`` — liveness JSON (status code 200, or 503 while the
  service drains);
* ``GET /tracez`` — the recent-trace ring as JSON (``?limit=N`` caps
  the count, ``?trace_id=...`` selects one trace);
* ``GET /perfz`` — the perf telemetry plane: the component cost model
  (:mod:`repro.obs.perf`) plus latency-histogram quantile summaries.

The endpoint is provider-driven: the constructor takes callables, not
service objects, so it composes with anything (and tests can feed it
stubs).  Responses always carry ``Content-Length`` and
``Connection: close``; each connection serves exactly one request.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.obs.log import get_logger
from repro.obs.trace import Tracer, default_tracer

log = get_logger("obs.http")

MAX_REQUEST_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


def _response(
    status: int, body: str, content_type: str = "text/plain; charset=utf-8"
) -> bytes:
    payload = body.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


class ObservabilityEndpoint:
    """``/metrics`` + ``/healthz`` + ``/tracez`` over plain HTTP.

    ``metrics_text`` returns the exposition body; ``health`` and
    ``perf`` return ``(status_code, payload_dict)``; ``tracer``
    supplies the recent traces.  All are optional — a missing provider
    turns its route into a 404.  ``extra`` adds JSON routes
    generically: a map of path (``"/fabricz"``) to a
    ``() -> (status_code, payload_dict)`` provider, rendered exactly
    like ``/healthz``.
    """

    def __init__(
        self,
        metrics_text: Callable[[], str] | None = None,
        health: Callable[[], tuple[int, dict]] | None = None,
        tracer: Tracer | None = None,
        extra: dict[str, Callable[[], tuple[int, dict]]] | None = None,
        perf: Callable[[], tuple[int, dict]] | None = None,
    ):
        self.metrics_text = metrics_text
        self.health = health
        self.perf = perf
        self.tracer = tracer if tracer is not None else default_tracer()
        self.extra = dict(extra) if extra else {}
        self._server: asyncio.AbstractServer | None = None
        self.host: str | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=MAX_REQUEST_BYTES
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Request handling

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line = await asyncio.wait_for(
                    reader.readline(), timeout=10.0
                )
                # Drain headers up to the blank line; their content is
                # irrelevant to the three routes.
                while True:
                    header = await asyncio.wait_for(
                        reader.readline(), timeout=10.0
                    )
                    if header in (b"\r\n", b"\n", b""):
                        break
            except (asyncio.TimeoutError, ConnectionError, ValueError) as error:
                log.debug("dropping unreadable http request: %s", error)
                return
            writer.write(self._route(request_line))
            try:
                await writer.drain()
            except ConnectionError:  # pragma: no cover - peer vanished
                log.debug("http peer vanished mid-response")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer vanished
                pass

    def _route(self, request_line: bytes) -> bytes:
        try:
            method, target, _version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError):
            return _response(400, "malformed request line\n")
        if method != "GET":
            return _response(405, "only GET is supported\n")
        parts = urlsplit(target)
        query = parse_qs(parts.query)
        try:
            if parts.path == "/metrics" and self.metrics_text is not None:
                return _response(
                    200,
                    self.metrics_text(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            if parts.path == "/healthz" and self.health is not None:
                status, payload = self.health()
                return _response(
                    status,
                    json.dumps(payload, default=str) + "\n",
                    content_type="application/json",
                )
            if parts.path == "/perfz" and self.perf is not None:
                status, payload = self.perf()
                return _response(
                    status,
                    json.dumps(payload, default=str) + "\n",
                    content_type="application/json",
                )
            if parts.path == "/tracez":
                return _response(
                    200,
                    self._tracez(query) + "\n",
                    content_type="application/json",
                )
            provider = self.extra.get(parts.path)
            if provider is not None:
                status, payload = provider()
                return _response(
                    status,
                    json.dumps(payload, default=str) + "\n",
                    content_type="application/json",
                )
        except Exception as error:
            # A scrape must never take the service down with it.
            log.warning(
                "error serving %s: %s", parts.path, error, exc_info=True
            )
            return _response(500, "internal error\n")
        return _response(404, f"no route for {parts.path}\n")

    def _tracez(self, query: dict[str, list[str]]) -> str:
        trace_id = query.get("trace_id", [None])[0]
        if trace_id:
            found = self.tracer.find(trace_id)
            return json.dumps(
                {"traces": [found] if found else []}, default=str
            )
        limit = None
        raw = query.get("limit", [None])[0]
        if raw is not None:
            try:
                limit = max(0, int(raw))
            except ValueError:
                limit = None
        return self.tracer.export_json(limit)


_REASONS[500] = "Internal Server Error"

__all__ = ["ObservabilityEndpoint", "MAX_REQUEST_BYTES"]
