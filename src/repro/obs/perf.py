"""The perf telemetry plane: a runtime component cost model.

Per-component solve timings (the per-solve
:class:`~repro.core.results.DCSatStats` the solver pool and sequential
paths already produce) feed a rolling :class:`CostModel`: exponentially
weighted moving averages of solve cost, keyed by **component size
bucket × engine × planner × mode** (``"sweep"`` for full clique sweeps,
``"revalidate"`` for the verdict ledger's cheap probes).  The model
answers two questions:

* *Prediction* — :meth:`CostModel.predict` estimates how long a
  component of a given size will take under a given engine/planner, so
  :class:`~repro.service.pool.SolverPool` can bin-pack components into
  worker groups by predicted cost instead of striping them round-robin.
* *Exposition* — every observation lands in the default metrics
  registry (``repro_cost_model_estimate_seconds`` gauges plus an
  observation counter), and :meth:`CostModel.snapshot` renders the full
  model state for the ``GET /perfz`` endpoint.

Sizes are bucketed by powers of two (a component of 12 transactions
lands in the ``8-15`` bucket): clique-sweep cost grows with ``2^K``
worlds, so fine-grained size keys would never re-observe, while log
buckets keep the gauge cardinality bounded and still separate "tiny"
from "giant" components by orders of magnitude.

Thread-safety: observations arrive from the solver thread and the
coordinator's dispatch loop while ``/perfz`` scrapes from the event
loop, so every mutation and read takes the model lock.

:func:`build_info` also lives here: the git revision / package version
/ python triple stamped into ``/healthz`` and the bench artifacts, so a
scraped metric or a committed ``BENCH_*.json`` row can be correlated to
the exact serving revision.
"""

from __future__ import annotations

import pathlib
import platform
import subprocess
import threading
from dataclasses import dataclass, field

#: Observations before the model considers itself warm enough to drive
#: scheduling decisions (below this, callers should fall back to a
#: model-free strategy such as round-robin).
DEFAULT_WARM_AFTER = 8
#: EWMA smoothing factor: one observation moves the estimate a quarter
#: of the way to the new sample — responsive to drift, robust to noise.
DEFAULT_ALPHA = 0.25


def size_bucket(size: int) -> int:
    """The power-of-two bucket index for a component size (0 for empty)."""
    return size.bit_length() if size > 0 else 0


def bucket_label(bucket: int) -> str:
    """A human-readable ``"8-15"``-style label for a bucket index."""
    if bucket <= 0:
        return "0"
    low = 1 << (bucket - 1)
    high = (1 << bucket) - 1
    return str(low) if low == high else f"{low}-{high}"


@dataclass
class CostEstimate:
    """The rolling state of one (size bucket, engine, planner, mode) key."""

    bucket: int
    engine: str
    planner: str
    #: What kind of work was timed: ``"sweep"`` (a full per-component
    #: clique sweep) or ``"revalidate"`` (the verdict ledger's witness /
    #: short-circuit probe — docs/INCREMENTAL.md).  Kept as a separate
    #: key dimension so the probe series never pollutes the sweep
    #: predictions the pool's bin-packing reads.
    mode: str = "sweep"
    ewma_seconds: float = 0.0
    ewma_size: float = 0.0
    ewma_cliques: float = 0.0
    samples: int = 0
    last_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "size_bucket": bucket_label(self.bucket),
            "engine": self.engine,
            "planner": self.planner,
            "mode": self.mode,
            "ewma_seconds": self.ewma_seconds,
            "ewma_size": self.ewma_size,
            "ewma_cliques": self.ewma_cliques,
            "samples": self.samples,
            "last_seconds": self.last_seconds,
        }


@dataclass
class CostModel:
    """Rolling EWMA solve-cost estimates, safe to share across threads."""

    alpha: float = DEFAULT_ALPHA
    warm_after: int = DEFAULT_WARM_AFTER
    export_metrics: bool = True
    _estimates: dict[tuple[int, str, str, str], CostEstimate] = field(
        default_factory=dict, repr=False
    )
    _observations: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- ingestion ------------------------------------------------------

    def observe(
        self,
        seconds: float,
        size: int,
        engine: str = "",
        planner: str = "",
        cliques: int = 0,
        mode: str = "sweep",
    ) -> None:
        """Fold one per-component solve timing into the model."""
        key = (size_bucket(size), engine, planner, mode)
        with self._lock:
            estimate = self._estimates.get(key)
            if estimate is None:
                estimate = CostEstimate(*key)
                self._estimates[key] = estimate
            if estimate.samples == 0:
                estimate.ewma_seconds = seconds
                estimate.ewma_size = float(size)
                estimate.ewma_cliques = float(cliques)
            else:
                a = self.alpha
                estimate.ewma_seconds += a * (seconds - estimate.ewma_seconds)
                estimate.ewma_size += a * (size - estimate.ewma_size)
                estimate.ewma_cliques += a * (cliques - estimate.ewma_cliques)
            estimate.samples += 1
            estimate.last_seconds = seconds
            self._observations += 1
            exported = estimate.ewma_seconds if self.export_metrics else None
        if exported is not None:
            from repro.service.metrics import default_registry

            registry = default_registry()
            registry.gauge(
                "repro_cost_model_estimate_seconds",
                "EWMA solve cost per component, by size bucket.",
                labels={
                    "bucket": bucket_label(key[0]),
                    "engine": engine,
                    "planner": planner,
                    "mode": mode,
                },
            ).set(exported)
            registry.counter(
                "repro_cost_model_observations_total",
                "Per-component solve timings folded into the cost model.",
            ).inc()

    def ingest(
        self,
        stats,
        size: int,
        planner: str = "",
        seconds: float | None = None,
    ) -> None:
        """Fold a :class:`~repro.core.results.DCSatStats` into the model.

        *seconds* overrides ``stats.elapsed_seconds`` when the caller
        timed the component more precisely than the merged aggregate.
        """
        self.observe(
            seconds if seconds is not None else stats.elapsed_seconds,
            size,
            engine=stats.engine,
            planner=planner,
            cliques=stats.cliques_enumerated,
        )

    # -- prediction -----------------------------------------------------

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    @property
    def warm(self) -> bool:
        """Enough history to trust predictions for scheduling."""
        with self._lock:
            return self._observations >= self.warm_after

    def predict(
        self, size: int, engine: str = "", planner: str = "",
        mode: str = "sweep",
    ) -> float | None:
        """Predicted solve seconds for a component of *size*, or ``None``
        when the model holds nothing usable.

        An exact (bucket, engine, planner, mode) hit answers directly; a
        miss falls back to the nearest observed bucket under the same
        engine, planner and mode, scaled linearly by the size ratio — a
        coarse extrapolation, but bin-packing only needs the relative
        order of component costs, not their absolute values.
        """
        bucket = size_bucket(size)
        with self._lock:
            exact = self._estimates.get((bucket, engine, planner, mode))
            if exact is not None and exact.samples > 0:
                return exact.ewma_seconds
            candidates = [
                estimate
                for (b, e, p, m), estimate in self._estimates.items()
                if e == engine and p == planner and m == mode
                and estimate.samples > 0
            ]
            if not candidates:
                candidates = [
                    estimate
                    for estimate in self._estimates.values()
                    if estimate.samples > 0
                ]
            if not candidates:
                return None
            nearest = min(candidates, key=lambda est: abs(est.bucket - bucket))
            if nearest.ewma_size <= 0:
                return nearest.ewma_seconds
            return nearest.ewma_seconds * (size / nearest.ewma_size)

    # -- exposition -----------------------------------------------------

    def snapshot(self) -> dict:
        """The full model state as one JSON-serializable dict (``/perfz``)."""
        with self._lock:
            estimates = sorted(
                (estimate.to_dict() for estimate in self._estimates.values()),
                key=lambda row: (
                    row["engine"], row["planner"], row["mode"],
                    row["ewma_size"],
                ),
            )
            observations = self._observations
        return {
            "observations": observations,
            "warm": observations >= self.warm_after,
            "warm_after": self.warm_after,
            "alpha": self.alpha,
            "estimates": estimates,
        }

    def reset(self) -> None:
        """Drop all history (tests; model isolation between workloads)."""
        with self._lock:
            self._estimates.clear()
            self._observations = 0


_DEFAULT_COST_MODEL = CostModel()


def default_cost_model() -> CostModel:
    """The process-wide cost model the solver pool feeds and ``/perfz``
    exposes, mirroring :func:`~repro.service.metrics.default_registry`."""
    return _DEFAULT_COST_MODEL


# ----------------------------------------------------------------------
# Build info (served by /healthz, stamped into bench artifacts)

_build_info_cache: dict | None = None


def git_rev(cwd: str | None = None) -> str:
    """The short git revision of *cwd* (the package checkout by
    default), or ``"unknown"`` outside a git checkout — an installed
    package must still answer ``/healthz``."""
    if cwd is None:
        cwd = str(pathlib.Path(__file__).resolve().parent)
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10.0, cwd=cwd,
        ).stdout.strip()
        return out or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def build_info() -> dict:
    """Revision / version / runtime identity, computed once per process."""
    global _build_info_cache
    if _build_info_cache is None:
        from repro import __version__

        _build_info_cache = {
            "git_rev": git_rev(),
            "version": __version__,
            "python": platform.python_version(),
        }
    return dict(_build_info_cache)


__all__ = [
    "CostEstimate",
    "CostModel",
    "bucket_label",
    "build_info",
    "default_cost_model",
    "git_rev",
    "size_bucket",
]
