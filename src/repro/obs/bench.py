"""Bench-artifact trend reports and the CI regression gate.

The benchmark suite writes one canonical artifact per run
(``BENCH_<rev>.json``, see ``benchmarks/conftest.py``): a list of rows,
each identified by its benchmark *name* plus the dimensions it was
measured under (algorithm / engine / backend / planner) and carrying
its measurements (``seconds`` medians, counters).  A pinned run of that
artifact lives in the repository as ``benchmarks/BASELINE.json``.

This module turns artifacts into decisions:

* ``repro bench report <artifact>`` — render one artifact as a
  markdown trend table (or JSON).
* ``repro bench diff <baseline> <current>`` — align rows by identity,
  compute per-row deltas, and render the trend.  With ``--gate``, exit
  non-zero when any row the baseline marks ``"gate": true`` regressed
  by more than the threshold (``--gate-pct``, default
  ``$REPRO_BENCH_GATE_PCT`` or 25) — the CI regression gate.

Rows whose timings sit below the noise floor (``--min-seconds``,
default 0.005s on both sides) are never gated: at sub-5ms scale the
scheduler, not the solver, dominates the delta.  Metadata drift between
the two artifacts (python version, platform, cpu count, schema) is
reported as warnings, because a "regression" measured on different
hardware is usually just different hardware.

``python -m benchmarks.trend`` is a thin wrapper over the same
:func:`main` for checkouts where the package is not installed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field

from repro.errors import ReproError

#: The row-identity dimensions: two rows in different artifacts are the
#: same measurement iff name and all of these match.
DIMENSIONS = ("algorithm", "engine", "backend", "planner")

#: Regression threshold (percent) when neither --gate-pct nor
#: $REPRO_BENCH_GATE_PCT overrides it.
DEFAULT_GATE_PCT = 25.0

#: Both-sides noise floor in seconds: rows faster than this are never
#: gated (informational only).
DEFAULT_MIN_SECONDS = 0.005

GATE_PCT_ENV = "REPRO_BENCH_GATE_PCT"

#: Artifact metadata keys compared by :func:`metadata_warnings`.
METADATA_KEYS = ("schema", "python", "platform", "cpu_count")


def gate_threshold_pct(override: float | None = None) -> float:
    """The regression threshold: explicit override, else the
    ``$REPRO_BENCH_GATE_PCT`` environment knob, else 25%."""
    if override is not None:
        return override
    raw = os.environ.get(GATE_PCT_ENV)
    if raw:
        try:
            return float(raw)
        except ValueError:
            raise ReproError(
                f"{GATE_PCT_ENV} must be a number, got {raw!r}"
            )
    return DEFAULT_GATE_PCT


def sample_quantiles(
    samples: list[float], qs: tuple[float, ...] = (0.5, 0.95)
) -> dict[str, float]:
    """Linear-interpolation quantiles of raw timing samples.

    The same estimator :meth:`repro.service.metrics.Histogram.quantile`
    applies to bucket counts, applied here to the exact samples a
    benchmark kept — ``{"p50": ..., "p95": ...}`` for the trend report.
    """
    if not samples:
        return {}
    ordered = sorted(samples)
    out: dict[str, float] = {}
    for q in qs:
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        out[f"p{int(q * 100)}"] = ordered[low] + (position - low) * (
            ordered[high] - ordered[low]
        )
    return out


def row_key(row: dict) -> tuple:
    """The identity of one benchmark row: name + dimension values."""
    return (row.get("name", ""),) + tuple(
        str(row.get(dim, "")) for dim in DIMENSIONS
    )


def describe_key(key: tuple) -> str:
    """``name[dim=value,...]`` — how gate failures name a row."""
    name = key[0]
    dims = [
        f"{dim}={value}"
        for dim, value in zip(DIMENSIONS, key[1:])
        if value
    ]
    return f"{name}[{','.join(dims)}]" if dims else name


def load_artifact(path: str) -> dict:
    """Read one ``BENCH_*.json`` artifact, validating the basic shape."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            artifact = json.load(handle)
    except OSError as error:
        raise ReproError(f"cannot read bench artifact {path}: {error}")
    except json.JSONDecodeError as error:
        raise ReproError(f"malformed bench artifact {path}: {error}")
    if not isinstance(artifact, dict) or not isinstance(
        artifact.get("benchmarks"), list
    ):
        raise ReproError(
            f"{path} is not a bench artifact "
            '(expected {"benchmarks": [...], ...})'
        )
    return artifact


def index_rows(artifact: dict) -> dict[tuple, dict]:
    rows: dict[tuple, dict] = {}
    for row in artifact["benchmarks"]:
        rows[row_key(row)] = row
    return rows


@dataclass
class RowDiff:
    """One aligned row of a baseline/current comparison."""

    key: tuple
    base_seconds: float | None
    cur_seconds: float | None
    delta_pct: float | None
    #: "ok" | "regression" | "improved" | "new" | "missing" | "untimed"
    status: str
    #: The baseline marked this row ``"gate": true`` (hot path).
    gated: bool
    #: Below the noise floor on both sides — never gated.
    noisy: bool

    @property
    def label(self) -> str:
        return describe_key(self.key)

    def to_dict(self) -> dict:
        return {
            "row": self.label,
            "base_seconds": self.base_seconds,
            "cur_seconds": self.cur_seconds,
            "delta_pct": self.delta_pct,
            "status": self.status,
            "gated": self.gated,
            "noisy": self.noisy,
        }


@dataclass
class BenchDiff:
    """The full comparison: aligned rows, metadata warnings, verdict."""

    rows: list[RowDiff]
    warnings: list[str]
    gate_pct: float
    min_seconds: float
    baseline_rev: str = ""
    current_rev: str = ""
    #: Gated rows that regressed past the threshold (or vanished).
    failures: list[RowDiff] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "baseline_rev": self.baseline_rev,
            "current_rev": self.current_rev,
            "gate_pct": self.gate_pct,
            "min_seconds": self.min_seconds,
            "ok": self.ok,
            "failures": [row.label for row in self.failures],
            "warnings": self.warnings,
            "rows": [row.to_dict() for row in self.rows],
        }


def metadata_warnings(baseline: dict, current: dict) -> list[str]:
    """Human-readable drift between two artifacts' run environments."""
    warnings = []
    for meta_key in METADATA_KEYS:
        base, cur = baseline.get(meta_key), current.get(meta_key)
        if base != cur and (base is not None or cur is not None):
            warnings.append(
                f"{meta_key} differs: baseline={base!r} current={cur!r}"
            )
    return warnings


def diff_artifacts(
    baseline: dict,
    current: dict,
    gate_pct: float | None = None,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BenchDiff:
    """Align *current* against *baseline* row-by-row.

    A gated baseline row fails the diff when it regressed by more than
    *gate_pct* percent, or when it is missing from *current* entirely
    (a silently dropped hot-path benchmark must not pass the gate).
    New rows and un-gated regressions are informational.
    """
    threshold = gate_threshold_pct(gate_pct)
    base_rows = index_rows(baseline)
    cur_rows = index_rows(current)
    diffs: list[RowDiff] = []
    failures: list[RowDiff] = []
    for key in sorted(set(base_rows) | set(cur_rows)):
        base_row, cur_row = base_rows.get(key), cur_rows.get(key)
        gated = bool(base_row.get("gate")) if base_row else False
        base_seconds = base_row.get("seconds") if base_row else None
        cur_seconds = cur_row.get("seconds") if cur_row else None
        delta_pct: float | None = None
        noisy = False
        if base_row is None:
            status = "new"
        elif cur_row is None:
            status = "missing"
        elif base_seconds is None or cur_seconds is None:
            # A counters-only row (no timing) can drift but not regress.
            status = "untimed"
        else:
            noisy = base_seconds < min_seconds and cur_seconds < min_seconds
            if base_seconds > 0:
                delta_pct = (cur_seconds - base_seconds) / base_seconds * 100.0
            if delta_pct is not None and delta_pct > threshold and not noisy:
                status = "regression"
            elif delta_pct is not None and delta_pct < -threshold and not noisy:
                status = "improved"
            else:
                status = "ok"
        diff = RowDiff(
            key=key,
            base_seconds=base_seconds,
            cur_seconds=cur_seconds,
            delta_pct=delta_pct,
            status=status,
            gated=gated,
            noisy=noisy,
        )
        diffs.append(diff)
        if gated and status in ("regression", "missing"):
            failures.append(diff)
    return BenchDiff(
        rows=diffs,
        warnings=metadata_warnings(baseline, current),
        gate_pct=threshold,
        min_seconds=min_seconds,
        baseline_rev=str(baseline.get("rev", "")),
        current_rev=str(current.get("rev", "")),
        failures=failures,
    )


# ----------------------------------------------------------------------
# Rendering


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "—"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


def _fmt_delta(delta_pct: float | None) -> str:
    if delta_pct is None:
        return "—"
    return f"{delta_pct:+.1f}%"


def render_report(artifact: dict) -> str:
    """One artifact as a markdown trend table."""
    lines = [
        f"# Bench report — rev `{artifact.get('rev', '?')}`",
        "",
        f"- created: {artifact.get('created', '?')}",
        f"- python: {artifact.get('python', '?')} on "
        f"{artifact.get('platform', '?')} "
        f"({artifact.get('cpu_count', '?')} cpus)",
        "",
        "| row | seconds | p50 | p95 | gate |",
        "|---|---:|---:|---:|:---:|",
    ]
    for row in sorted(artifact["benchmarks"], key=row_key):
        quantiles = sample_quantiles(row.get("samples") or [])
        lines.append(
            "| {label} | {seconds} | {p50} | {p95} | {gate} |".format(
                label=describe_key(row_key(row)),
                seconds=_fmt_seconds(row.get("seconds")),
                p50=_fmt_seconds(quantiles.get("p50")),
                p95=_fmt_seconds(quantiles.get("p95")),
                gate="✓" if row.get("gate") else "",
            )
        )
    return "\n".join(lines) + "\n"


def render_diff(diff: BenchDiff) -> str:
    """A baseline/current comparison as a markdown trend table."""
    verdict = "OK" if diff.ok else f"FAIL ({len(diff.failures)} gated row(s))"
    lines = [
        f"# Bench diff — `{diff.baseline_rev or '?'}` → "
        f"`{diff.current_rev or '?'}`: {verdict}",
        "",
        f"- gate threshold: +{diff.gate_pct:g}% on rows the baseline "
        "marks `gate: true`",
        f"- noise floor: {diff.min_seconds * 1000:g}ms (both sides)",
    ]
    for warning in diff.warnings:
        lines.append(f"- ⚠ {warning}")
    lines += [
        "",
        "| row | baseline | current | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in diff.rows:
        status = row.status
        if row.gated:
            status += " (gated)"
        if row.noisy:
            status += " (noise floor)"
        lines.append(
            f"| {row.label} | {_fmt_seconds(row.base_seconds)} "
            f"| {_fmt_seconds(row.cur_seconds)} "
            f"| {_fmt_delta(row.delta_pct)} | {status} |"
        )
    if diff.failures:
        lines += ["", "Gated regressions:"]
        for row in diff.failures:
            lines.append(
                f"- `{row.label}`: {_fmt_seconds(row.base_seconds)} → "
                f"{_fmt_seconds(row.cur_seconds)} ({_fmt_delta(row.delta_pct)})"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI (`repro bench ...` and `python -m benchmarks.trend`)


def add_bench_subcommands(sub: argparse._SubParsersAction) -> None:
    """Register ``report`` and ``diff`` on an existing subparser set."""
    report = sub.add_parser(
        "report", help="render one BENCH_*.json artifact as a trend table"
    )
    report.add_argument("artifact")
    report.add_argument(
        "--json", action="store_true", help="emit the artifact summary as JSON"
    )
    report.add_argument(
        "--out", default=None, help="also write the rendering to this path"
    )
    report.set_defaults(func=cmd_report)

    diff = sub.add_parser(
        "diff",
        help="compare a bench artifact against a baseline "
        "(exit 1 on gated regressions with --gate)",
    )
    diff.add_argument("baseline")
    diff.add_argument("current")
    diff.add_argument(
        "--gate", action="store_true",
        help="exit 1 when a row the baseline marks gate:true regressed "
        "past the threshold (or disappeared)",
    )
    diff.add_argument(
        "--gate-pct", type=float, default=None,
        help=f"regression threshold in percent "
        f"(default: ${GATE_PCT_ENV} or {DEFAULT_GATE_PCT:g})",
    )
    diff.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help="noise floor: rows faster than this on both sides are "
        "never gated",
    )
    diff.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON"
    )
    diff.add_argument(
        "--out", default=None, help="also write the rendering to this path"
    )
    diff.set_defaults(func=cmd_diff)


def _emit(text: str, out: str | None) -> None:
    print(text, end="")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)


def cmd_report(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    if args.json:
        payload = dict(artifact)
        for row in payload["benchmarks"]:
            samples = row.get("samples")
            if samples and "p50" not in row:
                row.update(sample_quantiles(samples))
        text = json.dumps(payload, indent=2) + "\n"
    else:
        text = render_report(artifact)
    _emit(text, args.out)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_artifacts(
        load_artifact(args.baseline),
        load_artifact(args.current),
        gate_pct=args.gate_pct,
        min_seconds=args.min_seconds,
    )
    if args.json:
        text = json.dumps(diff.to_dict(), indent=2) + "\n"
    else:
        text = render_diff(diff)
    _emit(text, args.out)
    for warning in diff.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.gate and not diff.ok:
        names = ", ".join(row.label for row in diff.failures)
        print(f"bench gate FAILED: {names}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="benchmark trend reports and the CI regression gate",
    )
    sub = parser.add_subparsers(dest="bench_command", required=True)
    add_bench_subcommands(sub)
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


__all__ = [
    "BenchDiff",
    "DEFAULT_GATE_PCT",
    "DEFAULT_MIN_SECONDS",
    "DIMENSIONS",
    "RowDiff",
    "add_bench_subcommands",
    "describe_key",
    "diff_artifacts",
    "gate_threshold_pct",
    "index_rows",
    "load_artifact",
    "main",
    "metadata_warnings",
    "render_diff",
    "render_report",
    "row_key",
    "sample_quantiles",
]
