"""A contextvar-based span tracer for the DCSat stack.

Dependency-free, cheap when idle: instrumentation calls
:func:`span` freely, and the context manager is a no-op (yielding the
shared :data:`NULL_SPAN`) unless some caller higher up opened a trace
with :meth:`Tracer.trace` / :meth:`Tracer.start_trace`.  The server
opens one trace per queued request, so a standalone library user pays
one contextvar read per instrumented call and nothing else.

Spans carry monotonic-clock durations, wall-clock start times (for
display only), and free-form attributes; :meth:`Span.fold_stats` copies
the non-default counters of a :class:`~repro.core.results.DCSatStats`
(or any dataclass) into the attributes, so every solver span shows
where cliques, worlds and evaluations went.

Finished traces land in a bounded in-memory ring
(:meth:`Tracer.recent`), exportable as JSON (``GET /tracez``) or
rendered as an ASCII tree with proportional duration bars
(:func:`render_tree`).

Cross-process spans: a pool fork worker traces its task locally,
serializes the finished spans with :meth:`Span.to_wire`, and the
coordinator re-parents them under its own active span with
:meth:`Tracer.adopt` — span ids are prefixed with the worker's pid, so
no remapping is needed.

Thread-safety: the current span is a :class:`contextvars.ContextVar`
(per-thread by default), and the per-trace buffers plus the ring are
guarded by one lock, because the server records spans for the same
trace from both the event loop and the solver thread.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Iterator, Mapping

#: Traces kept in the in-memory ring (newest evicts oldest).
DEFAULT_RING_SIZE = 64
#: Per-trace span cap: a runaway sweep must not grow memory unboundedly.
DEFAULT_MAX_SPANS = 2048

_ids = itertools.count(1)


def new_trace_id() -> str:
    """Unique across processes and restarts (pid + ns clock + counter)."""
    return f"t{os.getpid():x}-{time.time_ns():x}-{next(_ids):x}"


def new_span_id() -> str:
    """Unique across fork workers too: ids carry the creating pid."""
    return f"s{os.getpid():x}-{next(_ids):x}"


@dataclass
class Span:
    """One timed operation within a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    started_at: float  # wall clock (UNIX seconds), display only
    start_mono: float  # monotonic, authoritative for duration
    duration: float | None = None  # seconds; None while still open
    attributes: dict[str, Any] = field(default_factory=dict)

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; chainable inside a ``with span(...)``."""
        self.attributes.update(attributes)
        return self

    def fold_stats(self, stats: Any) -> "Span":
        """Copy the non-default fields of a stats dataclass into the
        attributes (``DCSatStats`` in practice; any dataclass works)."""
        for f in dataclass_fields(stats):
            value = getattr(stats, f.name)
            if value != f.default:
                self.attributes[f.name] = value
        return self

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            name=str(payload.get("name", "?")),
            trace_id="",
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            started_at=float(payload.get("started_at", 0.0)),
            start_mono=0.0,
            duration=payload.get("duration"),
            attributes=dict(payload.get("attributes") or {}),
        )


class _NullSpan:
    """The do-nothing span yielded when no trace is active."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    attributes: dict = {}

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def fold_stats(self, stats: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into traces; keeps a bounded ring of recent ones."""

    def __init__(
        self,
        ring_size: int = DEFAULT_RING_SIZE,
        max_spans_per_trace: int = DEFAULT_MAX_SPANS,
    ):
        self._current: ContextVar[Span | None] = ContextVar(
            "repro-obs-span", default=None
        )
        self._lock = threading.Lock()
        #: trace_id -> finished spans of a still-open trace.
        self._open: dict[str, list[Span]] = {}
        self._ring: deque[dict] = deque(maxlen=ring_size)
        self._dropped = 0
        self.max_spans_per_trace = max_spans_per_trace

    # ------------------------------------------------------------------
    # Context

    def current(self) -> Span | None:
        """The active span in this thread/context, if any."""
        return self._current.get()

    def current_trace_id(self) -> str | None:
        span = self._current.get()
        return span.trace_id if span is not None else None

    @contextmanager
    def use(self, span: Span) -> Iterator[Span]:
        """Activate an existing open span in this thread/context.

        This is how a trace crosses threads: the event loop starts the
        root, the solver thread runs the operation under ``use(root)``.
        """
        token = self._current.set(span)
        try:
            yield span
        finally:
            self._current.reset(token)

    # ------------------------------------------------------------------
    # Producing spans

    def start_trace(
        self, name: str, trace_id: str | None = None, **attributes: Any
    ) -> Span:
        """Open a root span (not yet active — pair with :meth:`use`,
        finish with :meth:`finish`).  A caller-supplied *trace_id* (the
        wire protocol's correlation id) is truncated defensively."""
        if trace_id is not None:
            trace_id = str(trace_id)[:64]
        root = Span(
            name=name,
            trace_id=trace_id or new_trace_id(),
            span_id=new_span_id(),
            parent_id=None,
            started_at=time.time(),
            start_mono=time.perf_counter(),
            attributes=dict(attributes),
        )
        with self._lock:
            self._open[root.trace_id] = []
        return root

    @contextmanager
    def trace(
        self, name: str, trace_id: str | None = None, **attributes: Any
    ) -> Iterator[Span]:
        """Open, activate and (on exit) finish a root span."""
        root = self.start_trace(name, trace_id=trace_id, **attributes)
        token = self._current.set(root)
        try:
            yield root
        finally:
            self._current.reset(token)
            self.finish(root)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span | _NullSpan]:
        """A child of the current span — or :data:`NULL_SPAN` (and no
        recording at all) when no trace is active."""
        parent = self._current.get()
        if parent is None:
            yield NULL_SPAN
            return
        child = Span(
            name=name,
            trace_id=parent.trace_id,
            span_id=new_span_id(),
            parent_id=parent.span_id,
            started_at=time.time(),
            start_mono=time.perf_counter(),
            attributes=dict(attributes),
        )
        token = self._current.set(child)
        try:
            yield child
        finally:
            self._current.reset(token)
            if child.duration is None:
                child.duration = time.perf_counter() - child.start_mono
            self._record(child)

    def record_span(
        self,
        name: str,
        parent: Span,
        duration: float,
        started_at: float | None = None,
        **attributes: Any,
    ) -> Span:
        """Add an already-timed span (e.g. a measured queue wait)."""
        span = Span(
            name=name,
            trace_id=parent.trace_id,
            span_id=new_span_id(),
            parent_id=parent.span_id,
            started_at=started_at if started_at is not None else time.time() - duration,
            start_mono=0.0,
            duration=duration,
            attributes=dict(attributes),
        )
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        with self._lock:
            buffer = self._open.get(span.trace_id)
            if buffer is None:
                return  # trace already finished (or never started)
            if len(buffer) >= self.max_spans_per_trace:
                self._dropped += 1
                return
            buffer.append(span)

    def adopt(
        self, wire_spans: list[dict], parent: Span | _NullSpan | None = None
    ) -> None:
        """Graft spans exported by another process (``Span.to_wire``)
        into the current trace, re-parenting their roots under *parent*
        (default: the active span).  Worker span ids embed the worker
        pid, so they cannot collide with local ones."""
        if parent is None:
            parent = self._current.get()
        if parent is None or isinstance(parent, _NullSpan):
            return
        local_ids = {str(w.get("span_id")) for w in wire_spans}
        spans = []
        for wire in wire_spans:
            span = Span.from_wire(wire)
            span.trace_id = parent.trace_id
            if span.parent_id not in local_ids:
                span.parent_id = parent.span_id
            spans.append(span)
        with self._lock:
            buffer = self._open.get(parent.trace_id)
            if buffer is None:
                return
            room = self.max_spans_per_trace - len(buffer)
            buffer.extend(spans[:room])
            self._dropped += max(0, len(spans) - room)

    def finish(self, root: Span) -> dict:
        """Close a root span; its trace moves into the recent ring."""
        if root.duration is None:
            root.duration = time.perf_counter() - root.start_mono
        with self._lock:
            spans = self._open.pop(root.trace_id, [])
            spans.append(root)
            trace = {
                "trace_id": root.trace_id,
                "name": root.name,
                "started_at": root.started_at,
                "duration": root.duration,
                "attributes": root.attributes,
                "spans": [span.to_wire() for span in spans],
            }
            self._ring.append(trace)
        return trace

    # ------------------------------------------------------------------
    # Export

    def recent(self, limit: int | None = None) -> list[dict]:
        """Finished traces, newest first."""
        with self._lock:
            traces = list(self._ring)
        traces.reverse()
        if limit is not None:
            traces = traces[: max(0, limit)]
        return traces

    def find(self, trace_id: str) -> dict | None:
        with self._lock:
            for trace in reversed(self._ring):
                if trace["trace_id"] == trace_id:
                    return trace
        return None

    def wire_spans(self, trace_id: str | None) -> list[dict] | None:
        """A finished trace's spans, ready to ship across a process
        boundary (the wire protocol's ``export_spans`` path) and be
        grafted by the peer's :meth:`adopt` — ``None`` when the trace
        is unknown or still open."""
        if trace_id is None:
            return None
        finished = self.find(trace_id)
        return finished["spans"] if finished is not None else None

    def export_json(self, limit: int | None = None) -> str:
        return json.dumps(
            {"traces": self.recent(limit), "dropped_spans": self._dropped},
            default=str,
        )

    def reset(self) -> None:
        """Drop all buffered traces (tests)."""
        with self._lock:
            self._open.clear()
            self._ring.clear()
            self._dropped = 0


# ----------------------------------------------------------------------
# ASCII rendering


def _span_tree(trace: dict) -> list[tuple[int, dict]]:
    """Depth-first (depth, span) pairs; orphans parent to the root."""
    spans = trace["spans"]
    ids = {span["span_id"] for span in spans}
    children: dict[str | None, list[dict]] = {}
    for span in spans:
        parent = span["parent_id"]
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span["started_at"])
    out: list[tuple[int, dict]] = []

    def visit(parent: str | None, depth: int) -> None:
        for span in children.get(parent, ()):
            out.append((depth, span))
            visit(span["span_id"], depth + 1)

    visit(None, 0)
    return out


def render_tree(trace: dict, width: int = 28) -> str:
    """An ASCII tree with a proportional duration bar per span.

    ::

        request (op=status)                 12.31ms  |############|
          queue_wait                         0.42ms  |#           |
          solve                              11.80ms |  ##########|
    """
    rows = _span_tree(trace)
    total = max(
        (span["duration"] or 0.0 for _, span in rows), default=0.0
    ) or 1e-9
    lines = [f"trace {trace['trace_id']} ({trace['duration'] * 1000:.2f}ms)"]
    labels = []
    for depth, span in rows:
        attrs = span.get("attributes") or {}
        suffix = ""
        if attrs:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            suffix = f" ({inner})"
        labels.append("  " * depth + span["name"] + suffix)
    pad = max((len(label) for label in labels), default=0) + 2
    for (depth, span), label in zip(rows, labels):
        duration = span["duration"] or 0.0
        filled = max(1, round(width * duration / total)) if duration else 0
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{label:<{pad}}{duration * 1000:>10.2f}ms  |{bar}|")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Module-level default tracer: what the stack's instrumentation uses.

_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    return _DEFAULT


def span(name: str, **attributes: Any):
    """A child span on the default tracer (no-op without a trace)."""
    return _DEFAULT.span(name, **attributes)


def trace(name: str, trace_id: str | None = None, **attributes: Any):
    """A root span (new trace) on the default tracer."""
    return _DEFAULT.trace(name, trace_id=trace_id, **attributes)


def current() -> Span | None:
    return _DEFAULT.current()


def current_trace_id() -> str | None:
    return _DEFAULT.current_trace_id()


__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "new_trace_id",
    "new_span_id",
    "render_tree",
    "default_tracer",
    "span",
    "trace",
    "current",
    "current_trace_id",
]
