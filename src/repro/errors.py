"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems define narrower types
below it (schema problems, constraint violations, query issues, chain
validation failures, storage errors).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation, attribute or arity does not match the declared schema."""


class ConstraintError(ReproError):
    """An integrity-constraint definition is malformed."""


class IntegrityViolationError(ReproError):
    """A state update would violate the declared integrity constraints.

    Attributes:
        violations: the list of :class:`repro.relational.checking.Violation`
            objects describing every constraint breached, when available.
    """

    def __init__(self, message: str, violations: list | None = None):
        super().__init__(message)
        self.violations = violations or []


class QueryError(ReproError):
    """A denial constraint / query is malformed (unsafe, bad arity, ...)."""


class ParseError(QueryError):
    """The textual query could not be parsed.

    Attributes:
        position: offset in the input where parsing failed, if known.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class ChainValidationError(ReproError):
    """A Bitcoin-style block or transaction failed substrate validation."""


class StorageError(ReproError):
    """A storage backend could not complete the requested operation."""


class ServiceError(ReproError):
    """A request to the constraint-checking service failed.

    Attributes:
        code: machine-readable failure class (``"busy"``, ``"deadline"``,
            ``"shutting-down"``, ``"bad-request"``, ``"error"``).
        retry_after: suggested back-off in seconds for retryable
            failures (backpressure rejections), when the server sent one.
    """

    def __init__(
        self,
        message: str,
        code: str = "error",
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class FabricError(ServiceError):
    """A shard-fleet operation failed: a shard subprocess died before its
    ready line, its write-ahead journal is corrupt, or its respawn
    circuit breaker is open.

    Subclasses :class:`ServiceError` so the wire server answers it as a
    structured error instead of an internal one.

    Attributes:
        shard: the index of the shard involved, when known.
        stderr: captured stderr tail of a failed shard subprocess,
            when available.
    """

    def __init__(
        self,
        message: str,
        code: str = "fabric",
        shard: int | None = None,
        stderr: str | None = None,
    ):
        super().__init__(message, code=code)
        self.shard = shard
        self.stderr = stderr


class AlgorithmError(ReproError):
    """A DCSat algorithm was asked to run outside its supported scope
    (e.g. OptDCSat on a disconnected query, a tractable-case solver on a
    database whose constraints fall outside the tractable fragment)."""
