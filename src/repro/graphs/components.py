"""Connected components (iterative BFS)."""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.graphs.undirected import UndirectedGraph


def connected_components(graph: UndirectedGraph) -> list[frozenset]:
    """Return the connected components of *graph* as frozensets of nodes.

    Deterministic order: components are emitted in first-seen node order
    (insertion order of the underlying adjacency dict).
    """
    seen: set[Hashable] = set()
    components: list[frozenset] = []
    for start in graph:
        if start in seen:
            continue
        queue: deque = deque([start])
        seen.add(start)
        component = {start}
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(frozenset(component))
    return components


def component_of(graph: UndirectedGraph, node: Hashable) -> frozenset:
    """The connected component containing *node*."""
    if node not in graph:
        return frozenset()
    queue: deque = deque([node])
    seen = {node}
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return frozenset(seen)
