"""A minimal undirected graph over hashable nodes (adjacency sets)."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator


class UndirectedGraph:
    """Simple undirected graph: nodes are hashable, edges unweighted.

    Self-loops are ignored (a transaction is always consistent with
    itself in the graphs we build, so a loop carries no information).
    """

    def __init__(self, nodes: Iterable[Hashable] = (), edges: Iterable[tuple] = ()):
        self._adj: dict[Hashable, set] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    def add_node(self, node: Hashable) -> None:
        self._adj.setdefault(node, set())

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        if u == v:
            self.add_node(u)
            return
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def remove_node(self, node: Hashable) -> None:
        for neighbor in self._adj.pop(node, set()):
            self._adj[neighbor].discard(node)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return v in self._adj.get(u, ())

    def neighbors(self, node: Hashable) -> frozenset:
        return frozenset(self._adj.get(node, ()))

    def degree(self, node: Hashable) -> int:
        return len(self._adj.get(node, ()))

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._adj)

    def edges(self) -> Iterator[tuple]:
        seen: set = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if (v, u) not in seen:
                    seen.add((u, v))
                    yield (u, v)

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def subgraph(self, nodes: Iterable[Hashable]) -> "UndirectedGraph":
        """The induced subgraph on *nodes* (unknown nodes are ignored)."""
        keep = {n for n in nodes if n in self._adj}
        sub = UndirectedGraph(nodes=keep)
        for u in keep:
            for v in self._adj[u] & keep:
                sub.add_edge(u, v)
        return sub

    def adjacency(self) -> dict[Hashable, frozenset]:
        """A frozen copy of the adjacency structure."""
        return {u: frozenset(nbrs) for u, nbrs in self._adj.items()}

    def __contains__(self, node: Hashable) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._adj)

    def __repr__(self) -> str:
        return f"UndirectedGraph({len(self)} nodes, {self.edge_count()} edges)"
