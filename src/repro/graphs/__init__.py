"""Graph utilities used by the DCSat engine.

The paper's implementation enumerates maximal cliques of the
fd-transaction graph with the Bron–Kerbosch algorithm [9] using the
pivoting optimization of Tomita et al. [44], and splits the
ind-q-transaction graph into connected components.  Both are implemented
here over a minimal adjacency-set graph type.
"""

from repro.graphs.undirected import UndirectedGraph
from repro.graphs.cliques import bron_kerbosch, maximal_cliques
from repro.graphs.components import connected_components

__all__ = [
    "UndirectedGraph",
    "bron_kerbosch",
    "maximal_cliques",
    "connected_components",
]
