"""Maximal clique enumeration: Bron–Kerbosch with Tomita pivoting.

NaiveDCSat and OptDCSat iterate over the maximal cliques of the
fd-transaction graph — each maximal clique determines one maximal
possible world.  We implement the classical Bron–Kerbosch algorithm [9]
with the pivot selection of Tomita, Tanaka and Takahashi [44] (choose
the vertex of ``P ∪ X`` with the most neighbours in ``P``), exactly as
the paper's implementation does.  A no-pivot variant is kept for the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.graphs.undirected import UndirectedGraph


def bron_kerbosch(
    graph: UndirectedGraph, pivot: bool = True
) -> Iterator[frozenset]:
    """Yield every maximal clique of *graph* as a frozenset of nodes.

    Iterative (explicit stack) to survive graphs whose recursion depth
    would exceed Python's limit.  With ``pivot=False`` runs the plain
    Bron–Kerbosch recurrence — exponentially slower on dense graphs,
    retained for the pivoting ablation.
    """
    adjacency = graph.adjacency()
    if not adjacency:
        return

    # Stack frames: (R, P, X, iterator over candidate vertices).
    def candidates(p: set, x: set) -> list:
        if not p:
            return []
        if not pivot:
            return list(p)
        # Tomita pivot: vertex of P ∪ X maximizing |N(u) ∩ P|.
        best = max(p | x, key=lambda u: len(adjacency[u] & p))
        return list(p - adjacency[best])

    stack: list[tuple[set, set, set, list]] = []
    r: set = set()
    p: set = set(adjacency)
    x: set = set()
    stack.append((r, p, x, candidates(p, x)))
    while stack:
        r, p, x, cands = stack[-1]
        if not p and not x:
            yield frozenset(r)
            stack.pop()
            continue
        if not cands:
            stack.pop()
            continue
        v = cands.pop()
        if v not in p:
            continue
        p.remove(v)
        x.add(v)
        nv = adjacency[v]
        new_r = r | {v}
        new_p = p & nv
        new_x = x & nv
        # x already contains v, but v ∉ nv (no self loops), so new_x is
        # exactly the excluded set for the child call.
        stack.append((new_r, new_p, new_x, candidates(new_p, new_x)))


def maximal_cliques(graph: UndirectedGraph, pivot: bool = True) -> list[frozenset]:
    """All maximal cliques of *graph*, as a list (see :func:`bron_kerbosch`)."""
    return list(bron_kerbosch(graph, pivot=pivot))


def is_clique(graph: UndirectedGraph, nodes: set | frozenset) -> bool:
    """True when *nodes* induces a complete subgraph of *graph*."""
    nodes = list(nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if not graph.has_edge(u, v):
                return False
    return True


def maximal_cliques_containing(
    graph: UndirectedGraph, seed: frozenset, pivot: bool = True
) -> Iterator[frozenset]:
    """Yield the maximal cliques of *graph* that contain every node of *seed*.

    Used by the assignment-driven solver: restrict the search to the
    common neighbourhood of the seed and extend.  The seed itself must be
    a clique; otherwise nothing is yielded.
    """
    if not seed:
        yield from bron_kerbosch(graph, pivot=pivot)
        return
    if not is_clique(graph, seed):
        return
    common: set | None = None
    for node in seed:
        if node not in graph:
            return
        nbrs = set(graph.neighbors(node))
        common = nbrs if common is None else common & nbrs
    assert common is not None
    common -= set(seed)
    if not common:
        yield frozenset(seed)
        return
    for clique in bron_kerbosch(graph.subgraph(common), pivot=pivot):
        yield frozenset(seed) | clique
