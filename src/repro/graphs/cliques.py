"""Maximal clique enumeration: Bron–Kerbosch with Tomita pivoting.

NaiveDCSat and OptDCSat iterate over the maximal cliques of the
fd-transaction graph — each maximal clique determines one maximal
possible world.  We implement the classical Bron–Kerbosch algorithm [9]
with the pivot selection of Tomita, Tanaka and Takahashi [44] (choose
the vertex of ``P ∪ X`` with the most neighbours in ``P``), exactly as
the paper's implementation does.  A no-pivot variant is kept for the
ablation benchmarks.

Emission order is *canonical*: nodes are ranked by their sorted order,
candidates are explored ascending, and pivot ties break toward the
lowest rank.  The sequence of emitted cliques is therefore a pure
function of the graph — independent of hash randomization — which is
the contract that lets the bitset planner
(:mod:`repro.core.bitset`) reproduce the exact same evaluation plans
with machine-word masks.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.graphs.undirected import UndirectedGraph


def canonical_ranks(nodes: Iterable[Hashable]) -> dict:
    """A deterministic total order over *nodes*: ``node -> rank``.

    Sorted order where the nodes are mutually comparable; a
    type-name/repr key otherwise (mixed-type graphs in tests).
    """
    try:
        ordered = sorted(nodes)
    except TypeError:
        ordered = sorted(nodes, key=lambda n: (type(n).__name__, repr(n)))
    return {node: index for index, node in enumerate(ordered)}


def bron_kerbosch(
    graph: UndirectedGraph, pivot: bool = True
) -> Iterator[frozenset]:
    """Yield every maximal clique of *graph* as a frozenset of nodes.

    Iterative (explicit stack) to survive graphs whose recursion depth
    would exceed Python's limit.  With ``pivot=False`` runs the plain
    Bron–Kerbosch recurrence — exponentially slower on dense graphs,
    retained for the pivoting ablation.  Cliques are emitted in the
    canonical order described in the module docstring.
    """
    adjacency = graph.adjacency()
    if not adjacency:
        return
    rank = canonical_ranks(adjacency)

    # Stack frames: (R, P, X, candidate vertices, popped lowest-rank
    # first).
    def candidates(p: set, x: set) -> list:
        if not p:
            return []
        if pivot:
            # Tomita pivot: vertex of P ∪ X maximizing |N(u) ∩ P|;
            # ties break toward the lowest rank (ascending scan with a
            # strict improvement test).
            best = None
            best_score = -1
            for u in sorted(p | x, key=rank.__getitem__):
                score = len(adjacency[u] & p)
                if score > best_score:
                    best, best_score = u, score
            pool = p - adjacency[best]
        else:
            pool = p
        # Descending rank: ``pop()`` then processes ascending.
        return sorted(pool, key=rank.__getitem__, reverse=True)

    stack: list[tuple[set, set, set, list]] = []
    r: set = set()
    p: set = set(adjacency)
    x: set = set()
    stack.append((r, p, x, candidates(p, x)))
    while stack:
        r, p, x, cands = stack[-1]
        if not p and not x:
            yield frozenset(r)
            stack.pop()
            continue
        if not cands:
            stack.pop()
            continue
        v = cands.pop()
        if v not in p:
            continue
        p.remove(v)
        x.add(v)
        nv = adjacency[v]
        new_r = r | {v}
        new_p = p & nv
        new_x = x & nv
        # x already contains v, but v ∉ nv (no self loops), so new_x is
        # exactly the excluded set for the child call.
        stack.append((new_r, new_p, new_x, candidates(new_p, new_x)))


def maximal_cliques(graph: UndirectedGraph, pivot: bool = True) -> list[frozenset]:
    """All maximal cliques of *graph*, as a list (see :func:`bron_kerbosch`)."""
    return list(bron_kerbosch(graph, pivot=pivot))


def is_clique(graph: UndirectedGraph, nodes: set | frozenset) -> bool:
    """True when *nodes* induces a complete subgraph of *graph*."""
    nodes = list(nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if not graph.has_edge(u, v):
                return False
    return True


def maximal_cliques_containing(
    graph: UndirectedGraph, seed: frozenset, pivot: bool = True
) -> Iterator[frozenset]:
    """Yield the maximal cliques of *graph* that contain every node of *seed*.

    Used by the assignment-driven solver: restrict the search to the
    common neighbourhood of the seed and extend.  The seed itself must be
    a clique; otherwise nothing is yielded.
    """
    if not seed:
        yield from bron_kerbosch(graph, pivot=pivot)
        return
    if not is_clique(graph, seed):
        return
    common: set | None = None
    for node in seed:
        if node not in graph:
            return
        nbrs = set(graph.neighbors(node))
        common = nbrs if common is None else common & nbrs
    assert common is not None
    common -= set(seed)
    if not common:
        yield frozenset(seed)
        return
    for clique in bron_kerbosch(graph.subgraph(common), pivot=pivot):
        yield frozenset(seed) | clique
