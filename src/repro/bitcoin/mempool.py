"""The mempool: pending transactions awaiting inclusion (Section 2).

A node's mempool holds valid-but-unconfirmed transactions.  Transactions
may spend the outputs of other mempool transactions (child pays for
parent chains).  Conflicting transactions — sharing an input with a
resident — are rejected by default, accepted as *replacements* when they
pay a strictly higher feerate and ``allow_replacement`` is set (RBF),
or admitted side by side when ``allow_conflicts`` is set.  The last mode
models the *network-wide* pending set the paper reasons about: different
nodes may hold contradicting transactions, and the DCSat machinery is
exactly about not knowing which will win.
"""

from __future__ import annotations

from typing import Iterator

from repro.bitcoin.chain import Blockchain, UTXOSet
from repro.bitcoin.transactions import BitcoinTransaction, OutPoint, TxOutput
from repro.errors import ChainValidationError


class Mempool:
    """Pending transactions with conflict policy and fee tracking."""

    def __init__(
        self,
        allow_replacement: bool = False,
        allow_conflicts: bool = False,
    ):
        self.allow_replacement = allow_replacement
        self.allow_conflicts = allow_conflicts
        self._txs: dict[str, BitcoinTransaction] = {}
        self._fees: dict[str, int] = {}
        # outpoint -> txids spending it (plural only with allow_conflicts)
        self._spenders: dict[OutPoint, set[str]] = {}

    # ------------------------------------------------------------------
    # Views

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, txid: str) -> bool:
        return txid in self._txs

    def __iter__(self) -> Iterator[BitcoinTransaction]:
        return iter(self._txs.values())

    def get(self, txid: str) -> BitcoinTransaction | None:
        return self._txs.get(txid)

    def fee(self, txid: str) -> int:
        return self._fees[txid]

    def feerate(self, txid: str) -> float:
        tx = self._txs[txid]
        return self._fees[txid] / tx.size

    def transactions(self) -> list[BitcoinTransaction]:
        return list(self._txs.values())

    def spent_outpoints(self) -> set[OutPoint]:
        """Every outpoint some resident spends (coin-selection exclusion)."""
        return set(self._spenders)

    def conflicts_of(self, tx: BitcoinTransaction) -> set[str]:
        """Resident txids sharing an input with *tx*."""
        out: set[str] = set()
        for outpoint in tx.outpoints():
            out |= self._spenders.get(outpoint, set())
        out.discard(tx.txid)
        return out

    # ------------------------------------------------------------------
    # The extended UTXO view (chain UTXOs + mempool outputs)

    def extended_utxos(self, chain: Blockchain) -> UTXOSet:
        """Chain UTXOs plus the outputs created by mempool transactions.

        Inputs already spent by residents are *not* removed — with
        ``allow_conflicts`` several residents may spend the same output,
        and each must still validate individually.
        """
        view = chain.utxos.copy()
        extra: dict[OutPoint, TxOutput] = {}
        for tx in self._txs.values():
            for index, output in enumerate(tx.outputs):
                extra[OutPoint(tx.txid, index)] = output
        return UTXOSet({**{o: view.require(o) for o in view}, **extra})

    # ------------------------------------------------------------------
    # Admission

    def add(self, tx: BitcoinTransaction, chain: Blockchain) -> int:
        """Validate and admit a transaction; return its fee.

        Raises :class:`ChainValidationError` when the transaction is
        invalid against the extended UTXO view or loses a conflict.
        """
        if tx.txid in self._txs:
            return self._fees[tx.txid]
        if chain.contains_transaction(tx.txid):
            raise ChainValidationError(f"{tx.txid[:12]} is already on-chain")
        fee = chain.validate_transaction(tx, self.extended_utxos(chain))
        conflicts = self.conflicts_of(tx)
        if conflicts and not self.allow_conflicts:
            if not self.allow_replacement:
                raise ChainValidationError(
                    f"{tx.txid[:12]} conflicts with mempool txs "
                    f"{sorted(c[:12] for c in conflicts)}"
                )
            feerate = fee / tx.size
            if any(self.feerate(c) >= feerate for c in conflicts):
                raise ChainValidationError(
                    f"{tx.txid[:12]} does not pay enough to replace its "
                    "conflicts"
                )
            for conflict in conflicts:
                self.remove(conflict)
        self._txs[tx.txid] = tx
        self._fees[tx.txid] = fee
        for outpoint in tx.outpoints():
            self._spenders.setdefault(outpoint, set()).add(tx.txid)
        return fee

    def remove(self, txid: str) -> BitcoinTransaction | None:
        tx = self._txs.pop(txid, None)
        if tx is None:
            return None
        self._fees.pop(txid, None)
        for outpoint in tx.outpoints():
            spenders = self._spenders.get(outpoint)
            if spenders is not None:
                spenders.discard(txid)
                if not spenders:
                    del self._spenders[outpoint]
        return tx

    def remove_confirmed(self, block_txids: set[str]) -> list[str]:
        """Evict transactions that were confirmed in a block.

        Residents that now conflict with a confirmed spend are handled
        separately by :meth:`evict_invalid`.  Returns the evicted ids.
        """
        evicted = [txid for txid in block_txids if txid in self._txs]
        for txid in evicted:
            self.remove(txid)
        return evicted

    def evict_invalid(self, chain: Blockchain) -> list[str]:
        """Re-validate residents against the chain; drop the now-invalid.

        Called after a block lands: residents whose inputs were spent by
        confirmed transactions can never be mined and are evicted.
        Residents are retried until a fixpoint because evicting a parent
        invalidates its children.
        """
        evicted: list[str] = []
        changed = True
        while changed:
            changed = False
            view = self.extended_utxos(chain)
            for tx in list(self._txs.values()):
                try:
                    chain.validate_transaction(tx, view)
                except ChainValidationError:
                    self.remove(tx.txid)
                    evicted.append(tx.txid)
                    changed = True
        return evicted

    def __repr__(self) -> str:
        return f"Mempool({len(self._txs)} txs)"
