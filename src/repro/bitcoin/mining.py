"""The miner: greedy fee-maximizing block assembly plus proof-of-work.

The paper notes that choosing transactions to include is a constrained
knapsack — blocks have a maximum size, transactions have sizes and fees,
and inclusion may depend on other transactions being in (parents) or out
(conflicts) of the block.  We implement the classic greedy heuristic
real miners use: sort by feerate, take a transaction when its parents
are available and it conflicts with nothing already selected.
"""

from __future__ import annotations

from repro.bitcoin.blocks import Block
from repro.bitcoin.chain import Blockchain, block_subsidy
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.script import P2PKScript
from repro.bitcoin.transactions import BitcoinTransaction, OutPoint, TxOutput
from repro.errors import ChainValidationError


class Miner:
    """Assembles and mines blocks paying rewards to *reward_public_key*."""

    def __init__(self, reward_public_key: str, max_block_size: int = 400):
        self.reward_public_key = reward_public_key
        self.max_block_size = max_block_size

    # ------------------------------------------------------------------
    # Selection

    def select_transactions(
        self, mempool: Mempool, chain: Blockchain
    ) -> list[BitcoinTransaction]:
        """Greedy knapsack: highest feerate first, dependency- and
        conflict-aware, until the block is full."""
        candidates = sorted(
            mempool.transactions(),
            key=lambda tx: (-mempool.feerate(tx.txid), tx.txid),
        )
        selected: list[BitcoinTransaction] = []
        selected_ids: set[str] = set()
        spent: set[OutPoint] = set()
        size = 0
        progress = True
        while progress:
            progress = False
            for tx in candidates:
                if tx.txid in selected_ids:
                    continue
                if size + tx.size > self.max_block_size:
                    continue
                outpoints = tx.outpoints()
                if any(op in spent for op in outpoints):
                    continue  # conflicts with a selected transaction
                ready = all(
                    op.txid in selected_ids
                    or chain.utxos.get(op) is not None
                    for op in outpoints
                )
                if not ready:
                    continue  # parent not yet available
                selected.append(tx)
                selected_ids.add(tx.txid)
                spent.update(outpoints)
                size += tx.size
                progress = True
        return selected

    # ------------------------------------------------------------------
    # Assembly and mining

    def build_block(
        self, chain: Blockchain, transactions: list[BitcoinTransaction]
    ) -> Block:
        """Build (and solve) the next block containing *transactions*."""
        height = len(chain.blocks)
        scratch = chain.utxos.copy()
        total_fees = 0
        for tx in transactions:
            total_fees += chain.validate_transaction(tx, scratch)
            scratch.apply(tx)
        reward = block_subsidy(height) + total_fees
        if reward <= 0:
            raise ChainValidationError("mining would produce a zero coinbase")
        coinbase = BitcoinTransaction(
            [], [TxOutput(reward, P2PKScript(self.reward_public_key))],
            tag=f"coinbase:{height}",
        )
        block = Block(height, chain.tip_hash, (coinbase, *transactions))
        return block.solve(chain.difficulty)

    def mine(self, mempool: Mempool, chain: Blockchain) -> Block:
        """Select, assemble, solve and append one block; prune the mempool."""
        transactions = self.select_transactions(mempool, chain)
        block = self.build_block(chain, transactions)
        chain.append_block(block)
        mempool.remove_confirmed({tx.txid for tx in block.transactions})
        mempool.evict_invalid(chain)
        return block
