"""A small node network with gossip propagation.

Nodes hold a chain copy and a mempool; broadcasting a transaction offers
it to every node (each applies its own admission policy, so a node that
already holds a conflicting transaction silently drops the newcomer —
exactly the divergence in pending sets the paper's model allows).  Blocks
are propagated to all nodes; consensus is single-chain (Remark 1: forks
are out of scope).
"""

from __future__ import annotations

from repro.bitcoin.blocks import Block
from repro.bitcoin.chain import Blockchain
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.transactions import BitcoinTransaction
from repro.errors import ChainValidationError, ReproError


class Node:
    """A network participant: chain copy + mempool (+ optional miner)."""

    def __init__(
        self,
        node_id: str,
        difficulty: int = 0,
        allow_replacement: bool = False,
        allow_conflicts: bool = False,
        miner: Miner | None = None,
    ):
        self.node_id = node_id
        self.chain = Blockchain(difficulty=difficulty)
        self.mempool = Mempool(
            allow_replacement=allow_replacement, allow_conflicts=allow_conflicts
        )
        self.miner = miner

    def offer_transaction(self, tx: BitcoinTransaction) -> bool:
        """Apply the admission policy; True when the tx entered the pool."""
        try:
            self.mempool.add(tx, self.chain)
            return True
        except ChainValidationError:
            return False

    def accept_block(self, block: Block) -> None:
        self.chain.append_block(block)
        self.mempool.remove_confirmed({tx.txid for tx in block.transactions})
        self.mempool.evict_invalid(self.chain)

    def __repr__(self) -> str:
        return (
            f"Node({self.node_id}, height={self.chain.height}, "
            f"mempool={len(self.mempool)})"
        )


class Network:
    """All nodes, with flood-style gossip."""

    def __init__(self, nodes: list[Node] | None = None):
        self.nodes: dict[str, Node] = {}
        for node in nodes or []:
            self.add_node(node)

    def add_node(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ReproError(f"duplicate node id {node.node_id!r}")
        if self.nodes:
            reference = next(iter(self.nodes.values()))
            for block in reference.chain.blocks:
                node.chain.append_block(block)
        self.nodes[node.node_id] = node

    def broadcast_transaction(self, tx: BitcoinTransaction) -> dict[str, bool]:
        """Offer *tx* to every node; returns acceptance per node."""
        return {
            node_id: node.offer_transaction(tx)
            for node_id, node in self.nodes.items()
        }

    def mine_block(self, node_id: str) -> Block:
        """Have one node mine from its own mempool; propagate the block."""
        node = self.nodes[node_id]
        if node.miner is None:
            raise ReproError(f"node {node_id!r} has no miner configured")
        block = node.miner.mine(node.mempool, node.chain)
        for other_id, other in self.nodes.items():
            if other_id != node_id:
                other.accept_block(block)
        return block

    def pending_union(self) -> dict[str, BitcoinTransaction]:
        """The network-wide pending set: the union of all mempools.

        This is the ``T`` of the paper's model — a user cannot know
        which of these will eventually be committed.
        """
        union: dict[str, BitcoinTransaction] = {}
        for node in self.nodes.values():
            for tx in node.mempool:
                union[tx.txid] = tx
        return union

    def __repr__(self) -> str:
        return f"Network({len(self.nodes)} nodes)"
