"""Double-spend surveillance over a mempool.

The motivating example's exchange was attacked because nobody *watched*
for conflicting versions of its withdrawals.  :class:`DoubleSpendWatcher`
observes a conflict-tolerant mempool (the network-wide pending view) and
raises alerts when:

* two pending transactions spend the same outpoint (a conflict pair);
* a watched address is the payer of a transaction that has a pending
  conflict — the "your withdrawal may be raced" signal;
* a confirmed block orphans pending transactions that a watched address
  *received from* — the "your incoming payment just died" signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.transactions import BitcoinTransaction, OutPoint


@dataclass(frozen=True)
class Alert:
    """One surveillance finding."""

    kind: str  # "conflict", "watched-payer-conflict", "incoming-died"
    message: str
    txids: tuple[str, ...]


class DoubleSpendWatcher:
    """Tracks conflicts in a mempool; optionally focuses on addresses."""

    def __init__(
        self,
        chain: Blockchain,
        mempool: Mempool,
        watched_owners: Iterable[str] = (),
    ):
        self.chain = chain
        self.mempool = mempool
        self.watched_owners = set(watched_owners)
        self._reported: set[frozenset[str]] = set()

    # ------------------------------------------------------------------
    # Introspection helpers

    def _owner_of(self, outpoint: OutPoint) -> str | None:
        tx = self.chain.get_transaction(outpoint.txid) or self.mempool.get(
            outpoint.txid
        )
        if tx is None or outpoint.index >= len(tx.outputs):
            return None
        return tx.outputs[outpoint.index].script.owner

    def conflict_pairs(self) -> list[tuple[str, str]]:
        """Every unordered pair of pending transactions sharing an input."""
        pairs: set[frozenset[str]] = set()
        spenders: dict[OutPoint, list[str]] = {}
        for tx in self.mempool:
            for outpoint in tx.outpoints():
                spenders.setdefault(outpoint, []).append(tx.txid)
        for txids in spenders.values():
            for i, first in enumerate(txids):
                for second in txids[i + 1 :]:
                    pairs.add(frozenset({first, second}))
        return sorted(tuple(sorted(pair)) for pair in pairs)

    def payer_of(self, tx: BitcoinTransaction) -> set[str]:
        owners = set()
        for tx_input in tx.inputs:
            owner = self._owner_of(tx_input.outpoint)
            if owner is not None:
                owners.add(owner)
        return owners

    # ------------------------------------------------------------------
    # Alert production

    def scan(self) -> list[Alert]:
        """New conflict alerts since the last scan (deduplicated)."""
        alerts: list[Alert] = []
        for first, second in self.conflict_pairs():
            pair = frozenset({first, second})
            if pair in self._reported:
                continue
            self._reported.add(pair)
            alerts.append(
                Alert(
                    kind="conflict",
                    message=(
                        f"pending transactions {first[:12]} and {second[:12]} "
                        "spend the same output"
                    ),
                    txids=(first, second),
                )
            )
            payers = set()
            for txid in (first, second):
                tx = self.mempool.get(txid)
                if tx is not None:
                    payers |= self.payer_of(tx)
            watched = payers & self.watched_owners
            if watched:
                alerts.append(
                    Alert(
                        kind="watched-payer-conflict",
                        message=(
                            f"watched payer(s) {sorted(o[:12] for o in watched)} "
                            "have a conflicting withdrawal in flight — "
                            "do not reissue from fresh coins"
                        ),
                        txids=(first, second),
                    )
                )
        return alerts

    def on_block(self, confirmed_txids: set[str]) -> list[Alert]:
        """Alerts for watched incoming payments killed by a block.

        Call *before* pruning the mempool: residents conflicting with a
        confirmed transaction can never be mined; if a watched owner was
        a recipient, they were waiting for money that will never arrive.
        """
        alerts: list[Alert] = []
        confirmed_spends: set[OutPoint] = set()
        for txid in confirmed_txids:
            tx = self.chain.get_transaction(txid)
            if tx is not None:
                confirmed_spends.update(tx.outpoints())
        for tx in self.mempool:
            if tx.txid in confirmed_txids:
                continue
            if not (set(tx.outpoints()) & confirmed_spends):
                continue
            recipients = {
                output.script.owner for output in tx.outputs
            } & self.watched_owners
            if recipients:
                alerts.append(
                    Alert(
                        kind="incoming-died",
                        message=(
                            f"pending payment {tx.txid[:12]} to watched "
                            f"recipient(s) {sorted(r[:12] for r in recipients)} "
                            "was double-spent by a confirmed transaction"
                        ),
                        txids=(tx.txid,),
                    )
                )
        return alerts
