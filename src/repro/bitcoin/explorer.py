"""A small block explorer over a chain and (optionally) a mempool.

Answers the questions wallets and dashboards ask — balances, address
history, confirmation status, fee summaries — and exposes the
*uncertain* balance range the paper's model makes precise: an address's
future balance depends on which pending transactions commit, so the
explorer reports ``[min over possible worlds, max over possible worlds]``
for small pending sets, and the naive optimistic/pessimistic bounds
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.transactions import BitcoinTransaction, OutPoint


@dataclass(frozen=True)
class AddressEvent:
    """One history entry for an address: a credit or debit."""

    height: int | None  # None = pending
    txid: str
    delta: int

    @property
    def confirmed(self) -> bool:
        return self.height is not None


@dataclass
class BalanceReport:
    """Confirmed balance plus the pending-world uncertainty band."""

    confirmed: int
    pessimistic: int
    optimistic: int
    pending_incoming: int = 0
    pending_outgoing: int = 0
    exact: bool = False
    events: list[AddressEvent] = field(default_factory=list)


class ChainExplorer:
    """Read-only analytics over a chain (and optional mempool)."""

    def __init__(self, chain: Blockchain, mempool: Mempool | None = None):
        self.chain = chain
        self.mempool = mempool

    # ------------------------------------------------------------------
    # Lookups

    def transaction_height(self, txid: str) -> int | None:
        """The block height of a confirmed transaction, else None."""
        entry = self.chain._tx_index.get(txid)
        return entry[0] if entry else None

    def is_pending(self, txid: str) -> bool:
        return bool(self.mempool and txid in self.mempool)

    def output_owner(self, outpoint: OutPoint) -> str | None:
        tx = self.chain.get_transaction(outpoint.txid)
        if tx is None and self.mempool is not None:
            tx = self.mempool.get(outpoint.txid)
        if tx is None or outpoint.index >= len(tx.outputs):
            return None
        return tx.outputs[outpoint.index].script.owner

    # ------------------------------------------------------------------
    # Address analytics

    def _delta_for(self, tx: BitcoinTransaction, owner: str) -> int:
        credit = sum(
            output.value for output in tx.outputs if output.script.owner == owner
        )
        debit = 0
        for tx_input in tx.inputs:
            source = self.chain.get_transaction(tx_input.outpoint.txid)
            if source is None and self.mempool is not None:
                source = self.mempool.get(tx_input.outpoint.txid)
            if source is None:
                continue
            spent = source.outputs[tx_input.outpoint.index]
            if spent.script.owner == owner:
                debit += spent.value
        return credit - debit

    def history(self, owner: str) -> list[AddressEvent]:
        """Every confirmed and pending event touching *owner*, in chain
        order (pending last)."""
        events: list[AddressEvent] = []
        for height, block in enumerate(self.chain.blocks):
            for tx in block.transactions:
                delta = self._delta_for(tx, owner)
                if delta != 0:
                    events.append(AddressEvent(height, tx.txid, delta))
        if self.mempool is not None:
            for tx in self.mempool:
                delta = self._delta_for(tx, owner)
                if delta != 0:
                    events.append(AddressEvent(None, tx.txid, delta))
        return events

    def balance(self, owner: str, exact_limit: int = 12) -> BalanceReport:
        """The confirmed balance plus the uncertainty band.

        The pessimistic bound applies every pending debit and no pending
        credit; the optimistic bound the reverse.  When the pending set
        is small (≤ *exact_limit*) the bounds are tightened to the exact
        min/max over the mempool's *conflict-respecting* outcomes by
        enumerating possible subsets.
        """
        confirmed = sum(
            output.value
            for _, output in self.chain.utxos.by_owner(owner)
        )
        events = self.history(owner)
        pending = [event for event in events if not event.confirmed]
        incoming = sum(e.delta for e in pending if e.delta > 0)
        outgoing = -sum(e.delta for e in pending if e.delta < 0)
        report = BalanceReport(
            confirmed=confirmed,
            pessimistic=confirmed - outgoing,
            optimistic=confirmed + incoming,
            pending_incoming=incoming,
            pending_outgoing=outgoing,
            events=events,
        )
        if self.mempool is not None and 0 < len(self.mempool) <= exact_limit:
            report.pessimistic, report.optimistic = self._exact_bounds(owner)
            report.exact = True
        return report

    def _exact_bounds(self, owner: str) -> tuple[int, int]:
        """Exact balance min/max over conflict-free pending subsets that
        are closed under parents (a mineable outcome)."""
        import itertools

        assert self.mempool is not None
        pending = list(self.mempool)
        by_id = {tx.txid: tx for tx in pending}
        deltas = {tx.txid: self._delta_for(tx, owner) for tx in pending}
        low = high = 0
        for size in range(len(pending) + 1):
            for combo in itertools.combinations(pending, size):
                chosen = {tx.txid for tx in combo}
                spent: set[OutPoint] = set()
                feasible = True
                for tx in combo:
                    for outpoint in tx.outpoints():
                        if outpoint in spent:
                            feasible = False
                            break
                        spent.add(outpoint)
                        if (
                            outpoint.txid in by_id
                            and outpoint.txid not in chosen
                        ):
                            feasible = False  # parent not included
                            break
                    if not feasible:
                        break
                if not feasible:
                    continue
                total = sum(deltas[txid] for txid in chosen)
                low = min(low, total)
                high = max(high, total)
        confirmed = sum(
            output.value for _, output in self.chain.utxos.by_owner(owner)
        )
        return confirmed + low, confirmed + high

    # ------------------------------------------------------------------
    # Chain-wide summaries

    def richest(self, top: int = 10) -> list[tuple[str, int]]:
        """The top owners by confirmed balance."""
        totals: dict[str, int] = {}
        for _, output in (
            (outpoint, self.chain.utxos.require(outpoint))
            for outpoint in self.chain.utxos
        ):
            owner = output.script.owner
            totals[owner] = totals.get(owner, 0) + output.value
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top]

    def fee_summary(self) -> dict[str, float]:
        """Total and mean fee over all confirmed non-coinbase txs."""
        fees: list[int] = []
        replay = {}
        for tx in self.chain.transactions():
            for index, output in enumerate(tx.outputs):
                replay[OutPoint(tx.txid, index)] = output.value
            if tx.is_coinbase:
                continue
            value_in = sum(replay[i.outpoint] for i in tx.inputs)
            fees.append(value_in - tx.total_output_value)
        if not fees:
            return {"count": 0, "total": 0, "mean": 0.0}
        return {
            "count": len(fees),
            "total": sum(fees),
            "mean": sum(fees) / len(fees),
        }
