"""A Bitcoin-style blockchain substrate, implemented from scratch.

The paper grounds its model in Bitcoin (Section 2) and evaluates over
real Bitcoin data (Section 7).  This package provides everything needed
to reproduce that setting offline: deterministic toy keys and
signatures, UTXO transactions with challenge scripts, hash-linked blocks
with a proof-of-work stub, a validating chain with a UTXO set, mempools,
a greedy fee-maximizing miner, a gossiping node network, wallets (with
fee bumping, i.e. conflicting reissues), a synthetic-history generator,
and the mapping from chain + mempool to the paper's relational schema
(Example 1).

The cryptography is deliberately *toy*: signatures are deterministic
hashes binding (public key, transaction digest).  They model the
authorization structure Bitcoin's validity rules impose — which is all
the denial-constraint machinery observes — not adversarial security.
"""

from repro.bitcoin.keys import KeyPair, address_of, verify_signature
from repro.bitcoin.script import (
    HashLockScript,
    MultiSigScript,
    P2PKHScript,
    P2PKScript,
    Witness,
)
from repro.bitcoin.transactions import (
    BitcoinTransaction,
    OutPoint,
    TxInput,
    TxOutput,
)
from repro.bitcoin.alerts import Alert, DoubleSpendWatcher
from repro.bitcoin.blocks import Block
from repro.bitcoin.chain import Blockchain, UTXOSet
from repro.bitcoin.explorer import BalanceReport, ChainExplorer
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.network import Network, Node
from repro.bitcoin.wallet import Wallet
from repro.bitcoin.generator import Dataset, DatasetSpec, generate_dataset
from repro.bitcoin.relmap import (
    BITCOIN_RELATIONS,
    bitcoin_constraints,
    bitcoin_schema,
    chain_to_database,
    to_blockchain_database,
    transaction_to_relational,
)

__all__ = [
    "Alert",
    "DoubleSpendWatcher",
    "BalanceReport",
    "ChainExplorer",
    "KeyPair",
    "address_of",
    "verify_signature",
    "P2PKScript",
    "P2PKHScript",
    "MultiSigScript",
    "HashLockScript",
    "Witness",
    "BitcoinTransaction",
    "OutPoint",
    "TxInput",
    "TxOutput",
    "Block",
    "Blockchain",
    "UTXOSet",
    "Mempool",
    "Miner",
    "Network",
    "Node",
    "Wallet",
    "Dataset",
    "DatasetSpec",
    "generate_dataset",
    "BITCOIN_RELATIONS",
    "bitcoin_schema",
    "bitcoin_constraints",
    "chain_to_database",
    "to_blockchain_database",
    "transaction_to_relational",
]
