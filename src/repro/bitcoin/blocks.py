"""Blocks: ordered transaction batches chained by predecessor hashes.

Each block commits to its transactions through a Merkle root, points to
its predecessor's header hash, and carries a nonce satisfying a
(deliberately easy) proof-of-work condition.  Timestamps are
deterministic functions of the height so the whole substrate is
reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.bitcoin.transactions import BitcoinTransaction
from repro.errors import ChainValidationError

#: Seconds between blocks in the deterministic timestamp schedule.
BLOCK_INTERVAL = 600

#: Hash of the (nonexistent) predecessor of the genesis block.
GENESIS_PREV_HASH = "0" * 64


def merkle_root(txids: Iterable[str]) -> str:
    """The Merkle root of a transaction id list (duplicate-last rule)."""
    level = [txid for txid in txids]
    if not level:
        return hashlib.sha256(b"empty").hexdigest()
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            hashlib.sha256((left + right).encode()).hexdigest()
            for left, right in zip(level[::2], level[1::2])
        ]
    return level[0]


def meets_difficulty(header_hash: str, difficulty: int) -> bool:
    """Toy proof-of-work: the hash starts with *difficulty* zero hex digits."""
    return header_hash.startswith("0" * difficulty)


@dataclass(frozen=True)
class Block:
    """A block: header fields plus the transaction batch."""

    height: int
    prev_hash: str
    transactions: tuple[BitcoinTransaction, ...]
    nonce: int = 0
    merkle: str = field(init=False)
    timestamp: int = field(init=False)

    def __post_init__(self):
        if not self.transactions:
            raise ChainValidationError("a block needs at least a coinbase")
        object.__setattr__(
            self, "merkle", merkle_root(tx.txid for tx in self.transactions)
        )
        object.__setattr__(self, "timestamp", self.height * BLOCK_INTERVAL)

    def header_hash(self) -> str:
        payload = (
            f"{self.height}|{self.prev_hash}|{self.merkle}|"
            f"{self.timestamp}|{self.nonce}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def with_nonce(self, nonce: int) -> "Block":
        return Block(self.height, self.prev_hash, self.transactions, nonce)

    def solve(self, difficulty: int, max_attempts: int = 1_000_000) -> "Block":
        """Grind nonces until the header hash meets the difficulty."""
        block = self
        for nonce in range(max_attempts):
            block = self.with_nonce(nonce)
            if meets_difficulty(block.header_hash(), difficulty):
                return block
        raise ChainValidationError(
            f"no nonce under {max_attempts} meets difficulty {difficulty}"
        )

    @property
    def coinbase(self) -> BitcoinTransaction:
        return self.transactions[0]

    def __repr__(self) -> str:
        return (
            f"Block(height={self.height}, {len(self.transactions)} txs, "
            f"hash={self.header_hash()[:12]}...)"
        )
