"""Wallets: building, signing and reissuing payments.

Implements the behaviour from the paper's motivating example (Section
1): creating a payment with change back to the sender (as Example 3
observes real users do), and *reissuing* a stuck payment either unsafely
(fresh inputs — both versions may confirm and the payee is paid twice)
or safely (a conflicting replacement spending the same input with a
higher fee, so no possible world contains both).
"""

from __future__ import annotations

from repro.bitcoin.chain import Blockchain, UTXOSet
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.script import P2PKScript, Witness
from repro.bitcoin.transactions import (
    BitcoinTransaction,
    OutPoint,
    TxInput,
    TxOutput,
)
from repro.errors import ChainValidationError, ReproError


class Wallet:
    """A single-key wallet tracking its unspent outputs."""

    def __init__(self, keypair: KeyPair, name: str | None = None):
        self.keypair = keypair
        self.name = name or keypair.public_key[:8]

    @property
    def public_key(self) -> str:
        return self.keypair.public_key

    @property
    def script(self) -> P2PKScript:
        return P2PKScript(self.public_key)

    # ------------------------------------------------------------------
    # Funds

    def spendable(
        self, utxos: UTXOSet, exclude: set[OutPoint] | None = None
    ) -> list[tuple[OutPoint, TxOutput]]:
        """This wallet's unspent outputs, minus any *exclude*d outpoints."""
        exclude = exclude or set()
        coins = [
            (outpoint, output)
            for outpoint, output in utxos.by_owner(self.public_key)
            if outpoint not in exclude
        ]
        coins.sort(key=lambda pair: (-pair[1].value, pair[0].txid, pair[0].index))
        return coins

    def balance(self, utxos: UTXOSet) -> int:
        return sum(output.value for _, output in self.spendable(utxos))

    # ------------------------------------------------------------------
    # Payments

    def _select_coins(
        self,
        utxos: UTXOSet,
        amount: int,
        fee: int,
        exclude: set[OutPoint] | None = None,
    ) -> list[tuple[OutPoint, TxOutput]]:
        needed = amount + fee
        picked: list[tuple[OutPoint, TxOutput]] = []
        total = 0
        for outpoint, output in self.spendable(utxos, exclude):
            picked.append((outpoint, output))
            total += output.value
            if total >= needed:
                return picked
        raise ChainValidationError(
            f"wallet {self.name}: insufficient funds "
            f"({total} available, {needed} needed)"
        )

    def _sign_inputs(
        self, inputs: list[TxInput], outputs: list[TxOutput]
    ) -> BitcoinTransaction:
        unsigned = BitcoinTransaction(inputs, outputs)
        digest = unsigned.signing_digest()
        signature = self.keypair.sign(digest)
        witnesses = [
            Witness((self.public_key,), (signature,)) for _ in inputs
        ]
        return unsigned.with_witnesses(witnesses)

    def create_payment(
        self,
        utxos: UTXOSet,
        recipient_public_key: str,
        amount: int,
        fee: int,
        exclude: set[OutPoint] | None = None,
    ) -> BitcoinTransaction:
        """Pay *amount* to a recipient, returning change to this wallet."""
        if amount <= 0 or fee < 0:
            raise ReproError("payment amount must be positive, fee non-negative")
        coins = self._select_coins(utxos, amount, fee, exclude)
        total_in = sum(output.value for _, output in coins)
        outputs = [TxOutput(amount, P2PKScript(recipient_public_key))]
        change = total_in - amount - fee
        if change > 0:
            outputs.append(TxOutput(change, self.script))
        inputs = [TxInput(outpoint) for outpoint, _ in coins]
        return self._sign_inputs(inputs, outputs)

    # ------------------------------------------------------------------
    # Reissuing (the motivating example)

    def reissue_unsafe(
        self,
        utxos: UTXOSet,
        original: BitcoinTransaction,
        recipient_public_key: str,
        amount: int,
        fee: int,
    ) -> BitcoinTransaction:
        """Reissue a stuck payment from *fresh* inputs.

        This is the exchange's mistake: the new transaction does not
        conflict with the original, so a possible world contains both and
        the recipient is paid twice.  Provided so examples and tests can
        demonstrate the hazard the denial constraint guards against.
        """
        spent_by_original = set(original.outpoints())
        return self.create_payment(
            utxos, recipient_public_key, amount, fee, exclude=spent_by_original
        )

    def bump_fee(
        self,
        utxos: UTXOSet,
        original: BitcoinTransaction,
        extra_fee: int,
    ) -> BitcoinTransaction:
        """The safe reissue: same inputs, higher fee (RBF).

        The replacement spends exactly the original's inputs, so the two
        share every outpoint and can never coexist in the chain; the
        extra fee is taken out of the change output (or, failing that,
        the payment itself must have left room).
        """
        if extra_fee <= 0:
            raise ReproError("fee bump must be positive")
        outputs = list(original.outputs)
        # Take the extra fee from this wallet's change output.
        for index in range(len(outputs) - 1, -1, -1):
            output = outputs[index]
            if output.script == self.script and output.value >= extra_fee:
                remaining = output.value - extra_fee
                if remaining > 0:
                    outputs[index] = TxOutput(remaining, self.script)
                else:
                    del outputs[index]
                break
        else:
            raise ChainValidationError(
                f"wallet {self.name}: no change output can absorb the bump"
            )
        inputs = [TxInput(tx_input.outpoint) for tx_input in original.inputs]
        return self._sign_inputs(inputs, outputs)

    def __repr__(self) -> str:
        return f"Wallet({self.name}, pub={self.public_key[:12]}...)"
