"""UTXO transactions: many-to-many transfers from inputs to outputs.

A transaction fully spends the outputs its inputs point to (Section 2);
two transactions sharing even one input conflict and can never coexist
in the chain.  Faithful to pre-SegWit Bitcoin, the *transaction id*
covers the witnesses while the *signing digest* does not — which is what
made transactions malleable (the MtGox incident the paper's introduction
recounts); a test exercises exactly that scenario.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.bitcoin.script import Witness
from repro.errors import ChainValidationError

#: Amounts are integer satoshi-like units to keep arithmetic exact.
COIN = 100_000_000


@dataclass(frozen=True)
class OutPoint:
    """A reference to the *index*-th output of transaction *txid*."""

    txid: str
    index: int

    def __str__(self) -> str:
        return f"{self.txid[:12]}:{self.index}"


@dataclass(frozen=True)
class TxOutput:
    """An amount guarded by a script."""

    value: int
    script: object  # one of the script types in repro.bitcoin.script

    def __post_init__(self):
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise ChainValidationError("output value must be an integer amount")
        if self.value < 0:
            raise ChainValidationError("output value must be non-negative")

    def serialize(self) -> str:
        return f"{self.value}:{self.script.serialize()}"


@dataclass(frozen=True)
class TxInput:
    """An outpoint plus the witness satisfying its script."""

    outpoint: OutPoint
    witness: Witness = field(default_factory=Witness)

    def serialize(self, with_witness: bool = True) -> str:
        base = f"{self.outpoint.txid}:{self.outpoint.index}"
        if with_witness:
            return f"{base}<{self.witness.serialize()}>"
        return base


class BitcoinTransaction:
    """An immutable transaction: inputs, outputs, and derived ids.

    * :attr:`txid` — hash over the full serialization *including
      witnesses* (malleable, as in pre-SegWit Bitcoin);
    * :meth:`signing_digest` — hash over outpoints and outputs only, so
      witnesses can be produced after the digest is fixed.

    A transaction with no inputs is a *coinbase*; it mints the block
    subsidy plus fees and is only valid as the first transaction of a
    block.
    """

    __slots__ = ("inputs", "outputs", "tag", "txid", "_signing_digest")

    def __init__(
        self,
        inputs: Iterable[TxInput],
        outputs: Iterable[TxOutput],
        tag: str = "",
    ):
        # The tag enters the digest; miners stamp coinbases with their
        # block height so two equal-value coinbases never share a txid
        # (Bitcoin's BIP34 fix for the duplicate-coinbase problem).
        self.tag = tag
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        if not self.outputs:
            raise ChainValidationError("a transaction needs at least one output")
        seen = set()
        for tx_input in self.inputs:
            if tx_input.outpoint in seen:
                raise ChainValidationError(
                    f"transaction spends outpoint {tx_input.outpoint} twice"
                )
            seen.add(tx_input.outpoint)
        self._signing_digest = self._digest(with_witness=False)
        self.txid = self._digest(with_witness=True)

    def _digest(self, with_witness: bool) -> str:
        parts = [self.tag]
        parts.extend(i.serialize(with_witness=with_witness) for i in self.inputs)
        parts.append("/")
        parts.extend(o.serialize() for o in self.outputs)
        return hashlib.sha256("\x1e".join(parts).encode()).hexdigest()

    @property
    def is_coinbase(self) -> bool:
        return not self.inputs

    def signing_digest(self) -> str:
        """The digest input witnesses must sign (witness-independent)."""
        return self._signing_digest

    @property
    def total_output_value(self) -> int:
        return sum(o.value for o in self.outputs)

    @property
    def size(self) -> int:
        """A simple size proxy: one unit per input or output."""
        return len(self.inputs) + len(self.outputs)

    def outpoints(self) -> tuple[OutPoint, ...]:
        return tuple(i.outpoint for i in self.inputs)

    def conflicts_with(self, other: "BitcoinTransaction") -> bool:
        """Two transactions conflict when they share an input outpoint."""
        return bool(set(self.outpoints()) & set(other.outpoints()))

    def with_witnesses(self, witnesses: Iterable[Witness]) -> "BitcoinTransaction":
        """A copy with the inputs' witnesses replaced (same signing digest,
        *different* txid — the malleability lever)."""
        witnesses = tuple(witnesses)
        if len(witnesses) != len(self.inputs):
            raise ChainValidationError(
                "need exactly one witness per transaction input"
            )
        new_inputs = [
            TxInput(tx_input.outpoint, witness)
            for tx_input, witness in zip(self.inputs, witnesses)
        ]
        return BitcoinTransaction(new_inputs, self.outputs, tag=self.tag)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitcoinTransaction):
            return NotImplemented
        return self.txid == other.txid

    def __hash__(self) -> int:
        return hash(self.txid)

    def __repr__(self) -> str:
        return (
            f"BitcoinTransaction({self.txid[:12]}..., "
            f"{len(self.inputs)} in, {len(self.outputs)} out)"
        )
