"""Deterministic toy keys, addresses and signatures.

Real Bitcoin uses secp256k1 ECDSA; the denial-constraint machinery only
ever observes *equality* of keys and signatures, so this substrate uses
hash-derived identifiers instead:

* ``private key`` — ``H("priv" || seed)``;
* ``public key``  — ``H("pub" || private key)``;
* ``address``     — ``H("addr" || public key)`` truncated;
* ``signature``   — ``H("sig" || public key || digest)``.

Signatures deterministically bind a public key to a transaction digest
and are *verifiable from public data alone* — which also makes them
forgeable by anyone.  That is fine here: we model the authorization
structure of the validity rules, not adversarial security (the paper's
algorithms never depend on unforgeability).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def _hash(*parts: str) -> str:
    payload = "\x1f".join(parts).encode()
    return hashlib.sha256(payload).hexdigest()


def address_of(public_key: str) -> str:
    """The address associated with a public key (a shorter identifier)."""
    return "addr_" + _hash("addr", public_key)[:24]


def sign(private_key: str, digest: str) -> str:
    """Produce the toy signature of *digest* under *private_key*."""
    public_key = _hash("pub", private_key)
    return _hash("sig", public_key, digest)


def verify_signature(public_key: str, digest: str, signature: str) -> bool:
    """Check that *signature* binds *public_key* to *digest*."""
    return signature == _hash("sig", public_key, digest)


@dataclass(frozen=True)
class KeyPair:
    """A toy keypair; build with :meth:`generate` for determinism."""

    private_key: str
    public_key: str = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "public_key", _hash("pub", self.private_key))

    @classmethod
    def generate(cls, seed: str | int) -> "KeyPair":
        """Derive a keypair deterministically from a seed."""
        return cls(private_key=_hash("priv", str(seed)))

    @property
    def address(self) -> str:
        return address_of(self.public_key)

    def sign(self, digest: str) -> str:
        return sign(self.private_key, digest)

    def __repr__(self) -> str:
        return f"KeyPair(pub={self.public_key[:12]}...)"
