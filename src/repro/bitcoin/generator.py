"""Synthetic Bitcoin histories: the offline stand-in for the paper's data.

The paper parses 100k–300k real Bitcoin blocks into Postgres and treats
subsequent blocks as the pending set (Table 1).  We cannot ship the real
chain, so this generator produces structurally comparable histories at
laptop scale: users paying each other with change outputs, fees drawn
from a range, child transactions spending unconfirmed parents (giving
the pending set real dependency chains), and a controllable number of
injected functional-dependency contradictions (double-spends), matching
the paper's experimental knob (10–50 contradictions in thousands of
pending transactions).

Everything is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.keys import KeyPair
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.mining import Miner
from repro.bitcoin.script import P2PKScript
from repro.bitcoin.transactions import COIN, BitcoinTransaction, TxOutput
from repro.bitcoin.wallet import Wallet
from repro.core.blockchain_db import BlockchainDatabase
from repro.errors import ChainValidationError, ReproError


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of a synthetic dataset."""

    name: str = "custom"
    committed_blocks: int = 40
    pending_blocks: int = 10
    txs_per_block: int = 8
    users: int = 25
    contradictions: int = 20
    fee_min: int = 100
    fee_max: int = 2_000
    seed: int = 7
    max_block_size: int = 100_000
    #: Fraction of users who only start *spending* in the pending period
    #: (they still receive earlier) — gives the star queries sources whose
    #: outgoing transfers exist only among pending transactions.
    late_user_fraction: float = 0.2
    #: Probability that a pending payment goes to a brand-new one-off
    #: address — gives the simple/aggregate queries recipients the
    #: committed state has never seen.
    fresh_recipient_rate: float = 0.25
    #: Probability that a payment may spend *unconfirmed* outputs (child
    #: pays for parent).  Kept moderate: heavy chaining fuses the whole
    #: pending set into one ind-graph component, which is unrealistic and
    #: removes the component structure OptDCSat exploits.
    chain_on_pending_rate: float = 0.25

    def scaled(self, **overrides) -> "DatasetSpec":
        """A copy with some fields replaced."""
        return replace(self, **overrides)


#: Scaled-down analogues of the paper's Table 1 datasets.  The paper's
#: D100/D200/D300 are 100k/200k/300k real blocks with growing density;
#: these keep the density *trend* at sizes a pure-Python engine sweeps
#: in seconds.
PRESETS = {
    "D100-S": DatasetSpec(
        name="D100-S", committed_blocks=60, pending_blocks=25,
        txs_per_block=4, users=20, contradictions=20, seed=100,
    ),
    "D200-S": DatasetSpec(
        name="D200-S", committed_blocks=120, pending_blocks=30,
        txs_per_block=8, users=30, contradictions=20, seed=200,
    ),
    "D300-S": DatasetSpec(
        name="D300-S", committed_blocks=180, pending_blocks=18,
        txs_per_block=12, users=40, contradictions=20, seed=300,
    ),
}


@dataclass
class DatasetStats:
    """Table 1's row shape: sizes of the current state and pending set."""

    blocks: int = 0
    transactions: int = 0
    inputs: int = 0
    outputs: int = 0
    pending_blocks: int = 0
    pending_transactions: int = 0
    pending_inputs: int = 0
    pending_outputs: int = 0
    contradictions: int = 0


@dataclass
class Dataset:
    """A generated history: chain, pending transactions, bookkeeping."""

    spec: DatasetSpec
    chain: Blockchain
    pending: list[BitcoinTransaction]
    wallets: list[Wallet]
    creators: dict[str, Wallet] = field(default_factory=dict)
    recipients: dict[str, str] = field(default_factory=dict)
    contradiction_pairs: list[tuple[str, str]] = field(default_factory=list)
    #: One-off recipient public keys that only ever appear in pending txs.
    fresh_recipients: list[str] = field(default_factory=list)
    #: Wallets that only start spending in the pending period.
    late_wallets: list[Wallet] = field(default_factory=list)

    def stats(self) -> DatasetStats:
        committed = list(self.chain.transactions())
        return DatasetStats(
            blocks=len(self.chain.blocks),
            transactions=len(committed),
            inputs=sum(len(tx.inputs) for tx in committed),
            outputs=sum(len(tx.outputs) for tx in committed),
            pending_blocks=self.spec.pending_blocks,
            pending_transactions=len(self.pending),
            pending_inputs=sum(len(tx.inputs) for tx in self.pending),
            pending_outputs=sum(len(tx.outputs) for tx in self.pending),
            contradictions=len(self.contradiction_pairs),
        )

    def to_blockchain_database(self, validate: bool = True) -> BlockchainDatabase:
        from repro.bitcoin.relmap import to_blockchain_database

        return to_blockchain_database(self.chain, self.pending, validate=validate)


class _Builder:
    """One-shot generator state machine."""

    def __init__(self, spec: DatasetSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.wallets = [
            Wallet(KeyPair.generate(f"{spec.seed}:user:{i}"), name=f"user{i}")
            for i in range(spec.users)
        ]
        late_count = int(spec.users * spec.late_user_fraction)
        self.late_wallets = self.wallets[spec.users - late_count :] if late_count else []
        self.early_wallets = self.wallets[: spec.users - late_count]
        self.chain = Blockchain(difficulty=0)
        self.creators: dict[str, Wallet] = {}
        self.recipients: dict[str, str] = {}
        self.fresh_recipients: list[str] = []
        self._fresh_counter = 0

    def _genesis(self) -> None:
        share = (50 * COIN) // self.spec.users
        outputs = [
            TxOutput(share, P2PKScript(wallet.public_key))
            for wallet in self.wallets
        ]
        self.chain.append_genesis(outputs)

    def _block_tx_count(self) -> int:
        base = self.spec.txs_per_block
        jitter = max(1, base // 4)
        return max(1, base + self.rng.randint(-jitter, jitter))

    def _pick_recipient(self, payer: Wallet, allow_fresh: bool) -> str:
        if allow_fresh and self.rng.random() < self.spec.fresh_recipient_rate:
            self._fresh_counter += 1
            keypair = KeyPair.generate(
                f"{self.spec.seed}:fresh:{self._fresh_counter}"
            )
            self.fresh_recipients.append(keypair.public_key)
            return keypair.public_key
        recipient = self.rng.choice([w for w in self.wallets if w is not payer])
        return recipient.public_key

    def _make_payment(
        self, mempool: Mempool, payers: list[Wallet], allow_fresh: bool
    ) -> BitcoinTransaction | None:
        if self.rng.random() < self.spec.chain_on_pending_rate:
            view = mempool.extended_utxos(self.chain)
        else:
            view = self.chain.utxos
        exclude = mempool.spent_outpoints()
        payer = self.rng.choice(payers)
        spendable = payer.spendable(view, exclude)
        balance = sum(output.value for _, output in spendable)
        fee = self.rng.randint(self.spec.fee_min, self.spec.fee_max)
        if balance <= fee + 1:
            return None
        amount = self.rng.randint(1, max(1, (balance - fee) // 2))
        recipient_key = self._pick_recipient(payer, allow_fresh)
        try:
            tx = payer.create_payment(
                view, recipient_key, amount, fee, exclude=exclude
            )
        except ChainValidationError:
            return None
        self.creators[tx.txid] = payer
        self.recipients[tx.txid] = recipient_key
        return tx

    def _fill_mempool(
        self,
        mempool: Mempool,
        target: int,
        payers: list[Wallet],
        allow_fresh: bool = False,
    ) -> None:
        misses = 0
        while len(mempool) < target and misses < 10 * target + 20:
            tx = self._make_payment(mempool, payers, allow_fresh)
            if tx is None:
                misses += 1
                continue
            try:
                mempool.add(tx, self.chain)
            except ChainValidationError:
                misses += 1

    def _mine_committed(self) -> None:
        payers = self.early_wallets or self.wallets
        for index in range(self.spec.committed_blocks):
            mempool = Mempool()
            self._fill_mempool(mempool, self._block_tx_count(), payers)
            reward_wallet = payers[index % len(payers)]
            miner = Miner(
                reward_wallet.public_key, max_block_size=self.spec.max_block_size
            )
            miner.mine(mempool, self.chain)

    def _build_pending(self) -> tuple[list[BitcoinTransaction], Mempool]:
        mempool = Mempool()
        for _ in range(self.spec.pending_blocks):
            target = len(mempool) + self._block_tx_count()
            # Late joiners spend alongside everyone else in the pending
            # period; a slice of payments goes to one-off fresh addresses.
            self._fill_mempool(mempool, target, self.wallets, allow_fresh=True)
        return mempool.transactions(), mempool

    def _inject_contradictions(
        self, pending: list[BitcoinTransaction], mempool: Mempool
    ) -> list[tuple[str, str]]:
        """Double-spend *contradictions* of the pending transactions.

        Each injected transaction spends the same inputs as its target
        with a bumped fee and (thus) a different txid: in the relational
        image the two insert ``TxIn`` rows sharing the key
        ``(prevTxId, prevSer)`` — a functional-dependency contradiction.
        """
        pairs: list[tuple[str, str]] = []
        view = mempool.extended_utxos(self.chain)
        candidates = [tx for tx in pending if not tx.is_coinbase and tx.inputs]
        self.rng.shuffle(candidates)
        for tx in candidates:
            if len(pairs) >= self.spec.contradictions:
                break
            creator = self.creators.get(tx.txid)
            if creator is None:
                continue
            try:
                bump = self.rng.randint(self.spec.fee_min, self.spec.fee_max)
                conflict = creator.bump_fee(view, tx, bump)
            except (ChainValidationError, ReproError):
                continue
            self.creators[conflict.txid] = creator
            self.recipients[conflict.txid] = self.recipients.get(tx.txid, "")
            pending.append(conflict)
            pairs.append((tx.txid, conflict.txid))
        return pairs


def generate_dataset(spec: DatasetSpec | str) -> Dataset:
    """Generate a dataset from a spec or a preset name (``"D200-S"``)."""
    if isinstance(spec, str):
        try:
            spec = PRESETS[spec]
        except KeyError:
            raise ReproError(
                f"unknown dataset preset {spec!r}; options: {sorted(PRESETS)}"
            ) from None
    builder = _Builder(spec)
    builder._genesis()
    builder._mine_committed()
    pending, mempool = builder._build_pending()
    pairs = builder._inject_contradictions(pending, mempool)
    return Dataset(
        spec=spec,
        chain=builder.chain,
        pending=pending,
        wallets=builder.wallets,
        creators=builder.creators,
        recipients=builder.recipients,
        contradiction_pairs=pairs,
        fresh_recipients=builder.fresh_recipients,
        late_wallets=builder.late_wallets,
    )
