"""The validating blockchain: UTXO set, validity rules, appending.

Implements the consistency rules of Section 2: inputs must point to
unspent outputs and satisfy their scripts, a transaction fully spends
its inputs (sharing an input means conflict), input value covers output
value (the difference is the miner's fee), and the coinbase claims at
most subsidy + fees.  Forks are not modelled — the paper's framework
explicitly sets them aside (Remark 1).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.bitcoin.blocks import GENESIS_PREV_HASH, Block, meets_difficulty
from repro.bitcoin.transactions import COIN, BitcoinTransaction, OutPoint, TxOutput
from repro.errors import ChainValidationError

#: Initial block subsidy and halving schedule (scaled-down Bitcoin).
INITIAL_SUBSIDY = 50 * COIN
HALVING_INTERVAL = 10_000


def block_subsidy(height: int) -> int:
    """The subsidy minted by the coinbase of a block at *height*."""
    halvings = height // HALVING_INTERVAL
    if halvings >= 64:
        return 0
    return INITIAL_SUBSIDY >> halvings


class UTXOSet:
    """The unspent-transaction-output set: outpoint -> output."""

    __slots__ = ("_utxos",)

    def __init__(self, utxos: dict[OutPoint, TxOutput] | None = None):
        self._utxos: dict[OutPoint, TxOutput] = dict(utxos or {})

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._utxos

    def __len__(self) -> int:
        return len(self._utxos)

    def __iter__(self) -> Iterator[OutPoint]:
        return iter(self._utxos)

    def get(self, outpoint: OutPoint) -> TxOutput | None:
        return self._utxos.get(outpoint)

    def require(self, outpoint: OutPoint) -> TxOutput:
        output = self._utxos.get(outpoint)
        if output is None:
            raise ChainValidationError(f"outpoint {outpoint} is not unspent")
        return output

    def apply(self, tx: BitcoinTransaction) -> None:
        """Spend the transaction's inputs and add its outputs."""
        for tx_input in tx.inputs:
            if tx_input.outpoint not in self._utxos:
                raise ChainValidationError(
                    f"{tx.txid[:12]} spends missing outpoint {tx_input.outpoint}"
                )
        for tx_input in tx.inputs:
            del self._utxos[tx_input.outpoint]
        for index, output in enumerate(tx.outputs):
            self._utxos[OutPoint(tx.txid, index)] = output

    def copy(self) -> "UTXOSet":
        return UTXOSet(self._utxos)

    def total_value(self) -> int:
        return sum(o.value for o in self._utxos.values())

    def by_owner(self, owner: str) -> list[tuple[OutPoint, TxOutput]]:
        """All unspent outputs whose script owner matches *owner*."""
        return [
            (outpoint, output)
            for outpoint, output in self._utxos.items()
            if output.script.owner == owner
        ]


class Blockchain:
    """A single (forkless) chain with full validation on append."""

    def __init__(self, difficulty: int = 0):
        self.difficulty = difficulty
        self.blocks: list[Block] = []
        self.utxos = UTXOSet()
        self._tx_index: dict[str, tuple[int, BitcoinTransaction]] = {}

    # ------------------------------------------------------------------
    # Introspection

    @property
    def height(self) -> int:
        return len(self.blocks) - 1

    @property
    def tip_hash(self) -> str:
        return self.blocks[-1].header_hash() if self.blocks else GENESIS_PREV_HASH

    def __len__(self) -> int:
        return len(self.blocks)

    def transactions(self) -> Iterator[BitcoinTransaction]:
        for block in self.blocks:
            yield from block.transactions

    def get_transaction(self, txid: str) -> BitcoinTransaction | None:
        entry = self._tx_index.get(txid)
        return entry[1] if entry else None

    def contains_transaction(self, txid: str) -> bool:
        return txid in self._tx_index

    # ------------------------------------------------------------------
    # Validation

    def transaction_fee(
        self, tx: BitcoinTransaction, utxos: UTXOSet | None = None
    ) -> int:
        """The fee (input value − output value) of a non-coinbase tx."""
        utxos = utxos if utxos is not None else self.utxos
        if tx.is_coinbase:
            return 0
        value_in = sum(utxos.require(i.outpoint).value for i in tx.inputs)
        return value_in - tx.total_output_value

    def validate_transaction(
        self, tx: BitcoinTransaction, utxos: UTXOSet | None = None
    ) -> int:
        """Validate a non-coinbase transaction against a UTXO set.

        Returns the fee.  Raises :class:`ChainValidationError` on any
        rule violation (missing outpoint, unsatisfied script, negative
        fee, no inputs).
        """
        utxos = utxos if utxos is not None else self.utxos
        if tx.is_coinbase:
            raise ChainValidationError(
                "coinbase transactions are only valid as a block's first tx"
            )
        digest = tx.signing_digest()
        value_in = 0
        for tx_input in tx.inputs:
            output = utxos.require(tx_input.outpoint)
            if not output.script.satisfied_by(tx_input.witness, digest):
                raise ChainValidationError(
                    f"{tx.txid[:12]}: witness does not satisfy the script of "
                    f"{tx_input.outpoint}"
                )
            value_in += output.value
        fee = value_in - tx.total_output_value
        if fee < 0:
            raise ChainValidationError(
                f"{tx.txid[:12]}: outputs exceed inputs by {-fee}"
            )
        return fee

    def _validate_block(self, block: Block) -> None:
        expected_height = len(self.blocks)
        if block.height != expected_height:
            raise ChainValidationError(
                f"block height {block.height} != expected {expected_height}"
            )
        if block.prev_hash != self.tip_hash:
            raise ChainValidationError("block does not extend the chain tip")
        if not meets_difficulty(block.header_hash(), self.difficulty):
            raise ChainValidationError("block fails the proof-of-work check")
        coinbase = block.transactions[0]
        if not coinbase.is_coinbase:
            raise ChainValidationError("first block transaction must be coinbase")
        scratch = self.utxos.copy()
        total_fees = 0
        for tx in block.transactions[1:]:
            if tx.is_coinbase:
                raise ChainValidationError("only the first tx may be coinbase")
            total_fees += self.validate_transaction(tx, scratch)
            scratch.apply(tx)
        allowed = block_subsidy(block.height) + total_fees
        if coinbase.total_output_value > allowed:
            raise ChainValidationError(
                f"coinbase claims {coinbase.total_output_value}, "
                f"allowed {allowed}"
            )

    # ------------------------------------------------------------------
    # Appending

    def append_block(self, block: Block) -> None:
        """Validate and append a block (transactions enter the UTXO set)."""
        self._validate_block(block)
        for tx in block.transactions:
            self.utxos.apply(tx)
            self._tx_index[tx.txid] = (block.height, tx)
        self.blocks.append(block)

    def append_genesis(self, coinbase_outputs: Iterable[TxOutput]) -> Block:
        """Create and append the genesis block paying *coinbase_outputs*."""
        if self.blocks:
            raise ChainValidationError("chain already has a genesis block")
        coinbase = BitcoinTransaction([], list(coinbase_outputs), tag="coinbase:0")
        block = Block(0, GENESIS_PREV_HASH, (coinbase,)).solve(self.difficulty)
        self.append_block(block)
        return block

    def __repr__(self) -> str:
        return (
            f"Blockchain({len(self.blocks)} blocks, "
            f"{len(self._tx_index)} txs, {len(self.utxos)} utxos)"
        )
