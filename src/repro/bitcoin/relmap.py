"""Mapping the Bitcoin substrate onto the paper's relational schema.

Example 1 of the paper models the chain with two relations::

    TxOut(txId, ser, pk, amount)
    TxIn(prevTxId, prevSer, pk, amount, newTxId, sig)

with keys ``TxOut(txId, ser)`` and ``TxIn(prevTxId, prevSer)`` and the
inclusion dependencies

* ``TxIn[prevTxId, prevSer, pk, amount] ⊆ TxOut[txId, ser, pk, amount]``
  (every input consumes an existing output, with matching owner and
  amount), and
* ``TxIn[newTxId] ⊆ TxOut[txId]`` (every transaction has outputs).

The ``TxIn`` key is precisely the double-spend rule: two relational
transactions inserting ``TxIn`` rows with the same ``(prevTxId,
prevSer)`` but different remaining columns contradict.

Output serial numbers are 1-based, as in the paper's Figure 2.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.transactions import BitcoinTransaction, OutPoint, TxOutput
from repro.core.blockchain_db import BlockchainDatabase
from repro.errors import ReproError
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.schema import Schema
from repro.relational.transaction import Transaction

#: The relational schema of Example 1.
BITCOIN_RELATIONS = {
    "TxOut": ["txId", "ser", "pk", "amount"],
    "TxIn": ["prevTxId", "prevSer", "pk", "amount", "newTxId", "sig"],
}


def bitcoin_schema() -> Schema:
    """Build the Example 1 schema."""
    return make_schema(BITCOIN_RELATIONS)


def bitcoin_constraints(schema: Schema | None = None) -> ConstraintSet:
    """The keys and inclusion dependencies of Example 1."""
    schema = schema if schema is not None else bitcoin_schema()
    return ConstraintSet(
        schema,
        [
            Key("TxOut", ["txId", "ser"], schema),
            Key("TxIn", ["prevTxId", "prevSer"], schema),
            InclusionDependency(
                "TxIn",
                ["prevTxId", "prevSer", "pk", "amount"],
                "TxOut",
                ["txId", "ser", "pk", "amount"],
            ),
            InclusionDependency("TxIn", ["newTxId"], "TxOut", ["txId"]),
        ],
    )


#: Resolves an outpoint to the output it references.
OutputResolver = Callable[[OutPoint], TxOutput]


def chain_resolver(chain: Blockchain) -> OutputResolver:
    """Resolve outpoints against the transactions stored in *chain*."""

    def resolve(outpoint: OutPoint) -> TxOutput:
        tx = chain.get_transaction(outpoint.txid)
        if tx is None or outpoint.index >= len(tx.outputs):
            raise ReproError(f"cannot resolve outpoint {outpoint}")
        return tx.outputs[outpoint.index]

    return resolve


def combined_resolver(
    chain: Blockchain, pending: Iterable[BitcoinTransaction]
) -> OutputResolver:
    """Resolve against the chain first, then the pending transactions."""
    pending_index = {tx.txid: tx for tx in pending}
    from_chain = chain_resolver(chain)

    def resolve(outpoint: OutPoint) -> TxOutput:
        tx = pending_index.get(outpoint.txid)
        if tx is not None and outpoint.index < len(tx.outputs):
            return tx.outputs[outpoint.index]
        return from_chain(outpoint)

    return resolve


def _signature_of(tx: BitcoinTransaction, input_index: int) -> str:
    witness = tx.inputs[input_index].witness
    if witness.signatures:
        return witness.signatures[0]
    if witness.preimage is not None:
        return f"preimage:{witness.preimage}"
    return "nosig"


def relational_rows(
    tx: BitcoinTransaction, resolve: OutputResolver
) -> tuple[list[tuple], list[tuple]]:
    """The ``(TxOut rows, TxIn rows)`` a transaction contributes."""
    out_rows = [
        (tx.txid, index + 1, output.script.owner, output.value)
        for index, output in enumerate(tx.outputs)
    ]
    in_rows = []
    for input_index, tx_input in enumerate(tx.inputs):
        consumed = resolve(tx_input.outpoint)
        in_rows.append(
            (
                tx_input.outpoint.txid,
                tx_input.outpoint.index + 1,
                consumed.script.owner,
                consumed.value,
                tx.txid,
                _signature_of(tx, input_index),
            )
        )
    return out_rows, in_rows


def transaction_to_relational(
    tx: BitcoinTransaction, resolve: OutputResolver
) -> Transaction:
    """An insert transaction (the paper's sense) for one Bitcoin tx."""
    out_rows, in_rows = relational_rows(tx, resolve)
    return Transaction({"TxOut": out_rows, "TxIn": in_rows}, tx_id=tx.txid)


def chain_to_database(chain: Blockchain, schema: Schema | None = None) -> Database:
    """The current state ``R``: every committed transaction's rows."""
    schema = schema if schema is not None else bitcoin_schema()
    db = Database(schema)
    resolve = chain_resolver(chain)
    for tx in chain.transactions():
        out_rows, in_rows = relational_rows(tx, resolve)
        db["TxOut"].insert_many(out_rows)
        db["TxIn"].insert_many(in_rows)
    return db


def to_blockchain_database(
    chain: Blockchain,
    pending: Iterable[BitcoinTransaction],
    validate: bool = True,
) -> BlockchainDatabase:
    """Build the full blockchain database ``D = (R, I, T)``.

    ``R`` is the relational image of *chain*, ``I`` the Example 1
    constraints, and ``T`` one insert transaction per pending Bitcoin
    transaction.  Pending inputs may reference pending outputs (the
    inclusion dependency then creates the corresponding dependency edge).
    """
    pending = list(pending)
    schema = bitcoin_schema()
    current = chain_to_database(chain, schema)
    constraints = bitcoin_constraints(schema)
    resolve = combined_resolver(chain, pending)
    transactions = [transaction_to_relational(tx, resolve) for tx in pending]
    return BlockchainDatabase(current, constraints, transactions, validate=validate)
