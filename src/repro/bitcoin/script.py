"""Output scripts: the challenges guarding spendable outputs.

Bitcoin outputs associate an amount with a script specifying how the
money is claimed (Section 2): typically a signature matching a public
key, but also multi-signature scripts and hash preimages.  We model the
four classic shapes.  An input presents a :class:`Witness`; a script
decides whether the witness satisfies it for a given signing digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.bitcoin.keys import address_of, verify_signature
from repro.errors import ChainValidationError


@dataclass(frozen=True)
class Witness:
    """The response to an output script's challenge.

    ``public_keys``/``signatures`` are parallel tuples; ``preimage``
    answers hash-lock challenges.
    """

    public_keys: tuple[str, ...] = ()
    signatures: tuple[str, ...] = ()
    preimage: str | None = None

    def __post_init__(self):
        if len(self.public_keys) != len(self.signatures):
            raise ChainValidationError(
                "witness public keys and signatures must be parallel"
            )

    def serialize(self) -> str:
        return "|".join(
            [",".join(self.public_keys), ",".join(self.signatures), self.preimage or ""]
        )


@dataclass(frozen=True)
class P2PKScript:
    """Pay-to-public-key: a signature from exactly this key."""

    public_key: str

    def satisfied_by(self, witness: Witness, digest: str) -> bool:
        return any(
            pk == self.public_key and verify_signature(pk, digest, sig)
            for pk, sig in zip(witness.public_keys, witness.signatures)
        )

    @property
    def owner(self) -> str:
        """The identifier stored in the relational ``pk`` column."""
        return self.public_key

    def serialize(self) -> str:
        return f"p2pk:{self.public_key}"


@dataclass(frozen=True)
class P2PKHScript:
    """Pay-to-public-key-hash: reveal a key hashing to the address, sign."""

    address: str

    def satisfied_by(self, witness: Witness, digest: str) -> bool:
        return any(
            address_of(pk) == self.address and verify_signature(pk, digest, sig)
            for pk, sig in zip(witness.public_keys, witness.signatures)
        )

    @property
    def owner(self) -> str:
        return self.address

    def serialize(self) -> str:
        return f"p2pkh:{self.address}"


@dataclass(frozen=True)
class MultiSigScript:
    """m-of-n multi-signature: at least *m* of the listed keys sign."""

    required: int
    public_keys: tuple[str, ...]

    def __post_init__(self):
        if not 1 <= self.required <= len(self.public_keys):
            raise ChainValidationError(
                f"multisig requires 1 <= m <= n, got m={self.required}, "
                f"n={len(self.public_keys)}"
            )

    def satisfied_by(self, witness: Witness, digest: str) -> bool:
        valid_signers = {
            pk
            for pk, sig in zip(witness.public_keys, witness.signatures)
            if pk in self.public_keys and verify_signature(pk, digest, sig)
        }
        return len(valid_signers) >= self.required

    @property
    def owner(self) -> str:
        keys = ",".join(k[:8] for k in self.public_keys)
        return f"multisig({self.required}/{len(self.public_keys)}:{keys})"

    def serialize(self) -> str:
        return f"multisig:{self.required}:{','.join(self.public_keys)}"


@dataclass(frozen=True)
class HashLockScript:
    """Hash lock: reveal a preimage of the stored hash."""

    digest: str

    @classmethod
    def for_preimage(cls, preimage: str) -> "HashLockScript":
        return cls(hashlib.sha256(preimage.encode()).hexdigest())

    def satisfied_by(self, witness: Witness, digest: str) -> bool:
        if witness.preimage is None:
            return False
        return (
            hashlib.sha256(witness.preimage.encode()).hexdigest() == self.digest
        )

    @property
    def owner(self) -> str:
        return f"hashlock({self.digest[:12]})"

    def serialize(self) -> str:
        return f"hashlock:{self.digest}"


#: Every supported script type (useful for isinstance checks).
Script = (P2PKScript, P2PKHScript, MultiSigScript, HashLockScript)
