"""Relation instances: sets of ground tuples with on-demand hash indexes.

A :class:`Relation` is the unit of storage in the current state ``R``.
It keeps its tuples in a set (a relation is a set of ground tuples) and
builds hash indexes over attribute-position subsets lazily, because the
constraint checker and the query evaluator repeatedly probe the same
projections (functional-dependency left-hand sides, inclusion-dependency
target columns, join columns).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.relational.schema import RelationSchema


def project(values: tuple, positions: tuple[int, ...]) -> tuple:
    """Project a ground tuple onto the given 0-based positions."""
    return tuple(values[i] for i in positions)


class Relation:
    """A mutable set of ground tuples conforming to a relation schema.

    Insertion is the only update (blockchain databases are append-only).
    Indexes are dictionaries ``projected-key -> set of tuples`` keyed by
    the tuple of positions they cover; they are created on first use and
    maintained on every subsequent insert.
    """

    __slots__ = ("schema", "_tuples", "_indexes")

    def __init__(self, schema: RelationSchema, tuples: Iterable[tuple] = ()):
        self.schema = schema
        self._tuples: set[tuple] = set()
        self._indexes: dict[tuple[int, ...], dict[tuple, set[tuple]]] = {}
        for t in tuples:
            self.insert(t)

    @property
    def name(self) -> str:
        return self.schema.name

    def insert(self, values: tuple) -> bool:
        """Insert a ground tuple; return True if it was new."""
        values = self.schema.validate_tuple(tuple(values))
        if values in self._tuples:
            return False
        self._tuples.add(values)
        for positions, index in self._indexes.items():
            index.setdefault(project(values, positions), set()).add(values)
        return True

    def insert_many(self, tuples: Iterable[tuple]) -> int:
        """Insert several tuples; return the number that were new."""
        return sum(1 for t in tuples if self.insert(t))

    def __contains__(self, values: tuple) -> bool:
        return tuple(values) in self._tuples

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def tuples(self) -> frozenset[tuple]:
        return frozenset(self._tuples)

    def index_on(self, positions: tuple[int, ...]) -> dict[tuple, set[tuple]]:
        """Return (building if needed) the hash index over *positions*."""
        if not all(0 <= p < self.schema.arity for p in positions):
            raise SchemaError(
                f"index positions {positions} out of range for {self.name}"
            )
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for t in self._tuples:
                index.setdefault(project(t, positions), set()).add(t)
            self._indexes[positions] = index
        return index

    def lookup(self, positions: tuple[int, ...], key: tuple) -> set[tuple]:
        """Return all tuples whose projection on *positions* equals *key*."""
        return self.index_on(positions).get(key, set())

    def projection(self, positions: tuple[int, ...]) -> set[tuple]:
        """Return the set of distinct projections onto *positions*."""
        return set(self.index_on(positions))

    def copy(self) -> "Relation":
        """Return an independent copy (indexes are rebuilt on demand)."""
        clone = Relation(self.schema)
        clone._tuples = set(self._tuples)
        return clone

    def __repr__(self) -> str:
        return f"Relation({self.name}, {len(self._tuples)} tuples)"
