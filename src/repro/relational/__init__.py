"""The relational substrate: schemas, relations, databases, transactions
and integrity constraints.

This package implements the classical relational machinery the paper's
model is built on (Section 4): relations of ground tuples, insert-only
transactions, and the three constraint classes studied — key constraints,
functional dependencies and inclusion dependencies — together with full
and incremental satisfaction checking.
"""

from repro.relational.schema import Attribute, RelationSchema, Schema
from repro.relational.relation import Relation
from repro.relational.database import Database
from repro.relational.transaction import Transaction
from repro.relational.constraints import (
    ConstraintSet,
    FunctionalDependency,
    InclusionDependency,
    Key,
)
from repro.relational.checking import (
    Violation,
    can_extend,
    check_database,
    find_violations,
)

__all__ = [
    "Attribute",
    "RelationSchema",
    "Schema",
    "Relation",
    "Database",
    "Transaction",
    "Key",
    "FunctionalDependency",
    "InclusionDependency",
    "ConstraintSet",
    "Violation",
    "check_database",
    "find_violations",
    "can_extend",
]
