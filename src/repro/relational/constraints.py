"""Integrity constraints: keys, functional dependencies, inclusion
dependencies (Section 4 of the paper).

A functional dependency over ``R(Ā)`` has the form ``X -> Y`` with
``X, Y ⊆ Ā``; it is a *key* when ``Y = Ā``.  An inclusion dependency has
the form ``R[X] ⊆ S[Y]``.  A :class:`ConstraintSet` groups the
constraints of a blockchain database, pre-resolving attribute names to
tuple positions against a schema for fast checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConstraintError
from repro.relational.schema import Schema


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``relation: lhs -> rhs`` (attribute names)."""

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "lhs", tuple(self.lhs))
        object.__setattr__(self, "rhs", tuple(self.rhs))
        if not self.lhs or not self.rhs:
            raise ConstraintError(
                f"functional dependency on {self.relation!r} needs non-empty sides"
            )

    @property
    def is_trivial(self) -> bool:
        return set(self.rhs) <= set(self.lhs)

    def __str__(self) -> str:
        return f"{self.relation}: {','.join(self.lhs)} -> {','.join(self.rhs)}"


def Key(relation: str, attributes: Sequence[str], schema: Schema) -> FunctionalDependency:
    """Build the key constraint ``attributes -> all attributes`` of *relation*.

    Keys are the special case of functional dependencies whose right-hand
    side is the full attribute list, so this is a factory rather than a
    separate class.
    """
    all_attrs = schema[relation].attribute_names
    for a in attributes:
        schema[relation].position(a)  # validates the attribute exists
    return FunctionalDependency(relation, tuple(attributes), all_attrs)


@dataclass(frozen=True)
class InclusionDependency:
    """An inclusion dependency ``child[child_attrs] ⊆ parent[parent_attrs]``."""

    child: str
    child_attrs: tuple[str, ...]
    parent: str
    parent_attrs: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "child_attrs", tuple(self.child_attrs))
        object.__setattr__(self, "parent_attrs", tuple(self.parent_attrs))
        if len(self.child_attrs) != len(self.parent_attrs):
            raise ConstraintError(
                f"inclusion dependency {self} has mismatched attribute lists"
            )
        if not self.child_attrs:
            raise ConstraintError("inclusion dependency needs at least one attribute")

    def __str__(self) -> str:
        return (
            f"{self.child}[{','.join(self.child_attrs)}] ⊆ "
            f"{self.parent}[{','.join(self.parent_attrs)}]"
        )


@dataclass(frozen=True)
class _ResolvedFd:
    """A functional dependency with attribute names resolved to positions."""

    fd: FunctionalDependency
    lhs_positions: tuple[int, ...]
    rhs_positions: tuple[int, ...]


@dataclass(frozen=True)
class _ResolvedInd:
    """An inclusion dependency with attribute names resolved to positions."""

    ind: InclusionDependency
    child_positions: tuple[int, ...]
    parent_positions: tuple[int, ...]


class ConstraintSet:
    """The integrity constraints ``I`` of a blockchain database.

    Resolves every constraint against the schema once, exposing
    position-level access paths used by the checker, the fd-transaction
    graph and the ind-q-transaction graph.
    """

    def __init__(
        self,
        schema: Schema,
        constraints: Iterable[FunctionalDependency | InclusionDependency] = (),
    ):
        self.schema = schema
        self.fds: list[FunctionalDependency] = []
        self.inds: list[InclusionDependency] = []
        self._fds_by_relation: dict[str, list[_ResolvedFd]] = {}
        self._inds_by_child: dict[str, list[_ResolvedInd]] = {}
        self._inds_by_parent: dict[str, list[_ResolvedInd]] = {}
        for c in constraints:
            self.add(c)

    def add(self, constraint: FunctionalDependency | InclusionDependency) -> None:
        if isinstance(constraint, FunctionalDependency):
            rel = self.schema[constraint.relation]
            resolved = _ResolvedFd(
                constraint,
                rel.positions(constraint.lhs),
                rel.positions(constraint.rhs),
            )
            self.fds.append(constraint)
            self._fds_by_relation.setdefault(constraint.relation, []).append(resolved)
        elif isinstance(constraint, InclusionDependency):
            child = self.schema[constraint.child]
            parent = self.schema[constraint.parent]
            resolved = _ResolvedInd(
                constraint,
                child.positions(constraint.child_attrs),
                parent.positions(constraint.parent_attrs),
            )
            self.inds.append(constraint)
            self._inds_by_child.setdefault(constraint.child, []).append(resolved)
            self._inds_by_parent.setdefault(constraint.parent, []).append(resolved)
        else:
            raise ConstraintError(f"unsupported constraint type: {constraint!r}")

    def fds_for(self, relation: str) -> list[_ResolvedFd]:
        """Resolved functional dependencies whose relation is *relation*."""
        return self._fds_by_relation.get(relation, [])

    def inds_for_child(self, relation: str) -> list[_ResolvedInd]:
        """Resolved inclusion dependencies whose child is *relation*."""
        return self._inds_by_child.get(relation, [])

    def inds_for_parent(self, relation: str) -> list[_ResolvedInd]:
        """Resolved inclusion dependencies whose parent is *relation*."""
        return self._inds_by_parent.get(relation, [])

    @property
    def has_fds(self) -> bool:
        return bool(self.fds)

    @property
    def has_inds(self) -> bool:
        return bool(self.inds)

    def ind_closure(self, relations: Iterable[str]) -> frozenset[str]:
        """Close *relations* under inclusion-dependency connectivity.

        Treats every inclusion dependency as an undirected edge between
        its child and parent relation and returns all relations reachable
        from *relations*.  Facts committed into one relation can change
        which transactions are appendable over any relation in the same
        ind-connected component (a child needs its parent rows, a parent
        feeds its children), so cached reasoning about a relation is only
        safe while its whole component is untouched.
        """
        closed = set(relations)
        if not self.inds:
            return frozenset(closed)
        adjacency: dict[str, set[str]] = {}
        for ind in self.inds:
            adjacency.setdefault(ind.child, set()).add(ind.parent)
            adjacency.setdefault(ind.parent, set()).add(ind.child)
        frontier = [rel for rel in closed if rel in adjacency]
        while frontier:
            rel = frontier.pop()
            for neighbor in adjacency.get(rel, ()):
                if neighbor not in closed:
                    closed.add(neighbor)
                    frontier.append(neighbor)
        return frozenset(closed)

    def only_keys_and_fds(self) -> bool:
        """True when the set falls in the ``{key, fd}`` fragment."""
        return not self.inds

    def only_inds(self) -> bool:
        """True when the set falls in the ``{ind}`` fragment."""
        return not self.fds

    def __iter__(self):
        yield from self.fds
        yield from self.inds

    def __len__(self) -> int:
        return len(self.fds) + len(self.inds)

    def __repr__(self) -> str:
        return f"ConstraintSet({len(self.fds)} FDs, {len(self.inds)} INDs)"
