"""Functional-dependency theory: closures, implication, covers, keys.

Classical relational machinery used to preprocess a blockchain
database's constraint set:

* :func:`attribute_closure` — ``X+`` under a set of FDs (the linear-time
  Beeri–Bernstein algorithm);
* :func:`implies` — does a set of FDs entail another FD (via closure)?
* :func:`minimal_cover` — an equivalent, non-redundant FD set with
  singleton right-hand sides and no extraneous left-hand attributes;
  shrinking ``I_fd`` shrinks every conflict check the DCSat engine runs;
* :func:`candidate_keys` — all minimal keys of a relation;
* :func:`is_key` — is an attribute set a (super)key?

All functions operate on one relation's FDs (functional dependencies in
this model never span relations).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.errors import ConstraintError
from repro.relational.constraints import FunctionalDependency


def _same_relation(fds: Iterable[FunctionalDependency]) -> list[FunctionalDependency]:
    fds = list(fds)
    relations = {fd.relation for fd in fds}
    if len(relations) > 1:
        raise ConstraintError(
            f"FD-theory functions work per relation; got {sorted(relations)}"
        )
    return fds


def attribute_closure(
    attributes: Iterable[str], fds: Iterable[FunctionalDependency]
) -> frozenset[str]:
    """The closure ``X+``: every attribute determined by *attributes*."""
    fds = _same_relation(fds)
    closure = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if set(fd.lhs) <= closure and not set(fd.rhs) <= closure:
                closure.update(fd.rhs)
                changed = True
    return frozenset(closure)


def implies(
    fds: Iterable[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """Do *fds* logically entail *candidate* (Armstrong-complete test)?"""
    fds = _same_relation(fds)
    if fds and fds[0].relation != candidate.relation:
        raise ConstraintError("candidate FD must be over the same relation")
    return set(candidate.rhs) <= attribute_closure(candidate.lhs, fds)


def equivalent(
    first: Iterable[FunctionalDependency], second: Iterable[FunctionalDependency]
) -> bool:
    """Do the two FD sets entail each other?"""
    first, second = list(first), list(second)
    return all(implies(first, fd) for fd in second) and all(
        implies(second, fd) for fd in first
    )


def minimal_cover(
    fds: Iterable[FunctionalDependency],
) -> list[FunctionalDependency]:
    """An equivalent minimal cover: singleton RHS, no extraneous LHS
    attributes, no redundant dependencies.  Deterministic output order
    (sorted) so results are stable across runs."""
    fds = _same_relation(fds)
    if not fds:
        return []
    relation = fds[0].relation

    # 1. Singleton right-hand sides, dropping trivial parts.
    split: list[FunctionalDependency] = []
    for fd in fds:
        for attr in fd.rhs:
            if attr not in fd.lhs:
                split.append(FunctionalDependency(relation, fd.lhs, (attr,)))
    split = sorted(set(split), key=lambda fd: (fd.lhs, fd.rhs))

    # 2. Remove extraneous left-hand attributes.
    reduced: list[FunctionalDependency] = []
    for fd in split:
        lhs = list(fd.lhs)
        for attr in list(lhs):
            if len(lhs) == 1:
                break
            trimmed = tuple(a for a in lhs if a != attr)
            if fd.rhs[0] in attribute_closure(trimmed, split):
                lhs = list(trimmed)
        reduced.append(FunctionalDependency(relation, tuple(lhs), fd.rhs))
    reduced = sorted(set(reduced), key=lambda fd: (fd.lhs, fd.rhs))

    # 3. Remove redundant dependencies.
    result = list(reduced)
    for fd in list(reduced):
        rest = [other for other in result if other != fd]
        if rest and implies(rest, fd):
            result = rest
    return sorted(result, key=lambda fd: (fd.lhs, fd.rhs))


def is_superkey(
    attributes: Iterable[str],
    all_attributes: Sequence[str],
    fds: Iterable[FunctionalDependency],
) -> bool:
    """Does *attributes* determine every attribute of the relation?"""
    return set(all_attributes) <= attribute_closure(attributes, list(fds))


def candidate_keys(
    all_attributes: Sequence[str], fds: Iterable[FunctionalDependency]
) -> list[frozenset[str]]:
    """All minimal keys, smallest first (exponential in arity — relations
    in this model are narrow)."""
    fds = list(fds)
    keys: list[frozenset[str]] = []
    for size in range(1, len(all_attributes) + 1):
        for combo in itertools.combinations(sorted(all_attributes), size):
            candidate = frozenset(combo)
            if any(key <= candidate for key in keys):
                continue
            if is_superkey(candidate, all_attributes, fds):
                keys.append(candidate)
    return sorted(keys, key=lambda key: (len(key), sorted(key)))
