"""Relation schemas.

A :class:`RelationSchema` names a relation and its attributes; a
:class:`Schema` is a collection of relation schemas forming the database
schema.  Attributes may optionally carry a Python type used to validate
ground tuples on insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError

#: Python types accepted for attribute values.  ``None`` in an attribute
#: declaration means "untyped" (any hashable value accepted).
SUPPORTED_TYPES = (int, float, str, bytes, bool)


@dataclass(frozen=True)
class Attribute:
    """A named attribute of a relation, with an optional value type."""

    name: str
    dtype: type | None = None

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.dtype is not None and self.dtype not in SUPPORTED_TYPES:
            raise SchemaError(
                f"unsupported attribute type {self.dtype!r} for {self.name!r}"
            )

    def accepts(self, value: object) -> bool:
        """Return True if *value* is a legal value for this attribute."""
        if self.dtype is None:
            return True
        if self.dtype is float:
            # Ints are acceptable where floats are expected (amounts).
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.dtype is int:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, self.dtype)


class RelationSchema:
    """The schema of a single relation: a name and an ordered attribute list.

    Supports fast position lookup by attribute name, which the constraint
    and query machinery uses heavily.
    """

    __slots__ = ("name", "attributes", "_positions")

    def __init__(self, name: str, attributes: Sequence[Attribute | str]):
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid relation name: {name!r}")
        attrs = tuple(
            a if isinstance(a, Attribute) else Attribute(a) for a in attributes
        )
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {name!r}")
        self.name = name
        self.attributes = attrs
        self._positions = {a.name: i for i, a in enumerate(attrs)}

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def position(self, attribute: str) -> int:
        """Return the 0-based position of *attribute*.

        Raises :class:`SchemaError` for unknown attributes.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Return the positions of several attributes, in the given order."""
        return tuple(self.position(a) for a in attributes)

    def validate_tuple(self, values: tuple) -> tuple:
        """Check arity and attribute types of a ground tuple; return it."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects arity {self.arity}, "
                f"got tuple of length {len(values)}: {values!r}"
            )
        for attr, value in zip(self.attributes, values):
            if not attr.accepts(value):
                raise SchemaError(
                    f"attribute {self.name}.{attr.name} does not accept "
                    f"value {value!r} of type {type(value).__name__}"
                )
        return values

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        cols = ", ".join(a.name for a in self.attributes)
        return f"RelationSchema({self.name}({cols}))"


class Schema:
    """A database schema: a named collection of relation schemas."""

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict[str, RelationSchema] = {}
        for rel in relations:
            self.add(rel)

    def add(self, relation: RelationSchema) -> None:
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation {relation.name!r} in schema")
        self._relations[relation.name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"schema has no relation {name!r}") from None

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __repr__(self) -> str:
        return f"Schema({', '.join(self._relations)})"
