"""Integrity-constraint checking: full and incremental.

The core algorithms repeatedly ask two questions:

* does a set of relations satisfy ``I`` (``R |= I``)?
* can a possible world be extended with the facts of one more pending
  transaction without violating ``I`` (the test on line 6 of
  ``getMaximal`` in Figure 4)?

Both are answered here.  Functions accept any *fact view* — an object
exposing the small read interface of :class:`DatabaseFactView` — so the
same logic serves plain :class:`~repro.relational.database.Database`
instances and the overlay world views used by the DCSat engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol

from repro.relational.constraints import (
    ConstraintSet,
    FunctionalDependency,
    InclusionDependency,
)
from repro.relational.database import Database
from repro.relational.relation import project


class FactView(Protocol):
    """The read interface constraint checking needs from a state."""

    def iter_tuples(self, relation: str) -> Iterable[tuple]:
        """All tuples currently in *relation*."""

    def lookup(self, relation: str, positions: tuple[int, ...], key: tuple) -> Iterable[tuple]:
        """Tuples of *relation* whose projection on *positions* equals *key*."""

    def has_projection(self, relation: str, positions: tuple[int, ...], key: tuple) -> bool:
        """Whether some tuple of *relation* projects onto *key*."""

    def has_fact(self, relation: str, values: tuple) -> bool:
        """Whether *relation* contains exactly *values* (negated atoms)."""

    def count_tuples(self, relation: str) -> int:
        """Number of tuples in *relation* (used for join ordering)."""


class DatabaseFactView:
    """Adapter presenting a :class:`Database` through the FactView protocol."""

    __slots__ = ("db",)

    def __init__(self, db: Database):
        self.db = db

    def iter_tuples(self, relation: str) -> Iterable[tuple]:
        return self.db[relation]

    def lookup(self, relation: str, positions: tuple[int, ...], key: tuple) -> Iterable[tuple]:
        return self.db[relation].lookup(positions, key)

    def has_projection(self, relation: str, positions: tuple[int, ...], key: tuple) -> bool:
        return bool(self.db[relation].lookup(positions, key))

    def has_fact(self, relation: str, values: tuple) -> bool:
        return values in self.db[relation]

    def count_tuples(self, relation: str) -> int:
        return len(self.db[relation])


def as_fact_view(state: Database | FactView) -> FactView:
    """Wrap a :class:`Database` in a fact view; pass views through."""
    if isinstance(state, Database):
        return DatabaseFactView(state)
    return state


_as_view = as_fact_view


@dataclass(frozen=True)
class Violation:
    """One breached constraint, with the facts witnessing the breach.

    For a functional dependency the witnesses are the two clashing tuples;
    for an inclusion dependency, the dangling child tuple.
    """

    constraint: FunctionalDependency | InclusionDependency
    relation: str
    witnesses: tuple[tuple, ...]

    def __str__(self) -> str:
        facts = "; ".join(repr(w) for w in self.witnesses)
        return f"violation of [{self.constraint}] by {facts}"


def find_violations(
    state: Database | FactView,
    constraints: ConstraintSet,
    relations: Iterable[str] | None = None,
) -> list[Violation]:
    """Return every constraint violation in *state* (empty list if R |= I).

    When *relations* is given, only constraints touching those relations
    are checked.
    """
    view = _as_view(state)
    names = set(relations) if relations is not None else set(constraints.schema.relation_names)
    violations: list[Violation] = []

    for name in names:
        for rfd in constraints.fds_for(name):
            groups: dict[tuple, tuple] = {}
            for t in view.iter_tuples(name):
                key = project(t, rfd.lhs_positions)
                rhs = project(t, rfd.rhs_positions)
                seen = groups.get(key)
                if seen is None:
                    groups[key] = rhs
                elif seen != rhs:
                    clashing = next(
                        s
                        for s in view.lookup(name, rfd.lhs_positions, key)
                        if project(s, rfd.rhs_positions) == seen
                    )
                    violations.append(Violation(rfd.fd, name, (clashing, t)))

    for name in names:
        for rind in constraints.inds_for_child(name):
            for t in view.iter_tuples(name):
                key = project(t, rind.child_positions)
                if not view.has_projection(rind.ind.parent, rind.parent_positions, key):
                    violations.append(Violation(rind.ind, name, (t,)))
    return violations


def check_database(state: Database | FactView, constraints: ConstraintSet) -> bool:
    """Return True iff *state* satisfies every constraint (``R |= I``)."""
    return not find_violations(state, constraints)


def can_extend(
    state: Database | FactView,
    constraints: ConstraintSet,
    new_facts: Mapping[str, Iterable[tuple]],
) -> bool:
    """Would inserting *new_facts* into *state* preserve ``I``?

    *state* is assumed to already satisfy ``I``.  Because transactions
    are insert-only, it suffices to check the new tuples: a functional
    dependency can only break between a new tuple and an existing or new
    tuple with the same left-hand side, and an inclusion dependency can
    only break for a new child tuple (existing child tuples keep their
    parents — nothing is ever deleted).

    This is the ``R' |= I`` test of the can-append relation and of
    ``getMaximal``, in incremental form.
    """
    view = _as_view(state)
    materialized = {rel: [tuple(t) for t in tuples] for rel, tuples in new_facts.items()}

    # Functional dependencies: new vs existing, then new vs new.
    for rel, tuples in materialized.items():
        for rfd in constraints.fds_for(rel):
            local: dict[tuple, tuple] = {}
            for t in tuples:
                key = project(t, rfd.lhs_positions)
                rhs = project(t, rfd.rhs_positions)
                seen = local.get(key)
                if seen is None:
                    for existing in view.lookup(rel, rfd.lhs_positions, key):
                        if project(existing, rfd.rhs_positions) != rhs:
                            return False
                    local[key] = rhs
                elif seen != rhs:
                    return False

    # Inclusion dependencies: every new child tuple needs a parent in the
    # extended state (existing parents or new tuples — possibly from the
    # same transaction).
    new_projections: dict[tuple[str, tuple[int, ...]], set[tuple]] = {}

    def extended_has_parent(parent: str, positions: tuple[int, ...], key: tuple) -> bool:
        if view.has_projection(parent, positions, key):
            return True
        cache_key = (parent, positions)
        proj = new_projections.get(cache_key)
        if proj is None:
            proj = {project(t, positions) for t in materialized.get(parent, ())}
            new_projections[cache_key] = proj
        return key in proj

    for rel, tuples in materialized.items():
        for rind in constraints.inds_for_child(rel):
            for t in tuples:
                key = project(t, rind.child_positions)
                if not extended_has_parent(
                    rind.ind.parent, rind.parent_positions, key
                ):
                    return False
    return True


def transactions_fd_consistent(
    facts_a: Mapping[str, Iterable[tuple]],
    facts_b: Mapping[str, Iterable[tuple]],
    constraints: ConstraintSet,
) -> bool:
    """Check ``T ∪ T' |= I_fd`` — the edge test of the fd-transaction graph.

    Only functional dependencies are considered (inclusion dependencies
    are handled by the ind-q-transaction graph and ``getMaximal``).
    Each argument maps relation names to tuple collections.
    """
    relations = set(facts_a) | set(facts_b)
    for rel in relations:
        for rfd in constraints.fds_for(rel):
            groups: dict[tuple, tuple] = {}
            for source in (facts_a, facts_b):
                for t in source.get(rel, ()):
                    t = tuple(t)
                    key = project(t, rfd.lhs_positions)
                    rhs = project(t, rfd.rhs_positions)
                    seen = groups.get(key)
                    if seen is None:
                        groups[key] = rhs
                    elif seen != rhs:
                        return False
    return True
