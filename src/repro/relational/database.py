"""The database: a set of relations forming the current state ``R``."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, Schema


class Database:
    """A set of relations over a fixed schema.

    This is the paper's current state ``R``: the relational image of the
    data already committed to the blockchain.  It is append-only — tuples
    can be inserted but never deleted.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._relations: dict[str, Relation] = {
            rel.name: Relation(rel) for rel in schema
        }

    @classmethod
    def from_dict(
        cls, schema: Schema, contents: Mapping[str, Iterable[tuple]]
    ) -> "Database":
        """Build a database from ``{relation name: iterable of tuples}``."""
        db = cls(schema)
        for name, tuples in contents.items():
            db[name].insert_many(tuples)
        return db

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"database has no relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def insert(self, relation: str, values: tuple) -> bool:
        """Insert one tuple into *relation*; return True if it was new."""
        return self[relation].insert(values)

    def insert_facts(self, facts: Iterable[tuple[str, tuple]]) -> int:
        """Insert ``(relation name, tuple)`` facts; return the number new."""
        return sum(1 for rel, values in facts if self.insert(rel, values))

    def facts(self) -> Iterator[tuple[str, tuple]]:
        """Iterate over all ``(relation name, tuple)`` facts."""
        for rel in self._relations.values():
            for t in rel:
                yield rel.name, t

    def contains_fact(self, relation: str, values: tuple) -> bool:
        return relation in self._relations and values in self[relation]

    def copy(self) -> "Database":
        """Return an independent deep copy of the database contents."""
        clone = Database(self.schema)
        for name, rel in self._relations.items():
            clone._relations[name] = rel.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        # Relation declaration order is presentation, not semantics.
        if set(self.relation_names) != set(other.relation_names):
            return False
        return all(
            self[name].tuples == other[name].tuples for name in self.relation_names
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(rel)}" for name, rel in self._relations.items()
        )
        return f"Database({parts})"


def make_schema(relations: Mapping[str, Iterable[str]]) -> Schema:
    """Convenience constructor: ``{"R": ["a", "b"], ...}`` -> :class:`Schema`."""
    return Schema(RelationSchema(name, tuple(attrs)) for name, attrs in relations.items())
