"""Insert transactions: the pending updates of a blockchain database.

A transaction (Section 4) is simply a finite set of ground tuples for
(some of) the relations of the schema.  Transactions are immutable and
hashable, so they can serve directly as graph nodes in the
fd-transaction and ind-q-transaction graphs.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping

_counter = itertools.count(1)


class Transaction:
    """An immutable set of ``(relation name, ground tuple)`` facts.

    Attributes:
        tx_id: a unique, human-readable identifier.  Auto-generated
            (``"T1"``, ``"T2"``, ...) when not supplied.
    """

    __slots__ = ("tx_id", "_facts", "_by_relation", "_hash")

    def __init__(
        self,
        facts: Iterable[tuple[str, tuple]] | Mapping[str, Iterable[tuple]],
        tx_id: str | None = None,
    ):
        if isinstance(facts, Mapping):
            flat = [
                (rel, tuple(values))
                for rel, tuples in facts.items()
                for values in tuples
            ]
        else:
            flat = [(rel, tuple(values)) for rel, values in facts]
        self.tx_id = tx_id if tx_id is not None else f"T{next(_counter)}"
        self._facts = frozenset(flat)
        by_relation: dict[str, set[tuple]] = {}
        for rel, values in self._facts:
            by_relation.setdefault(rel, set()).add(values)
        self._by_relation = {
            rel: frozenset(tuples) for rel, tuples in by_relation.items()
        }
        self._hash = hash((self.tx_id, self._facts))

    @property
    def facts(self) -> frozenset[tuple[str, tuple]]:
        return self._facts

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._by_relation)

    def tuples(self, relation: str) -> frozenset[tuple]:
        """The tuples this transaction inserts into *relation* (maybe empty)."""
        return self._by_relation.get(relation, frozenset())

    def __iter__(self) -> Iterator[tuple[str, tuple]]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: tuple[str, tuple]) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return self.tx_id == other.tx_id and self._facts == other._facts

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Transaction({self.tx_id}, {len(self._facts)} facts)"
