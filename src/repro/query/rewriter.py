"""Query normalization: cheap rewrites before the solvers run.

Denial constraints are often machine-generated (templates instantiated
per address), so they accumulate redundancy.  The rewriter applies
semantics-preserving simplifications:

* drop duplicate atoms and duplicate comparisons;
* fold comparisons between constants (``3 < 5`` disappears; ``3 > 5``
  makes the query **unsatisfiable**);
* fold reflexive comparisons (``x = x`` disappears; ``x != x``, ``x < x``
  make the query unsatisfiable);
* substitute variables equated to constants (``x = 5`` binds ``x``),
  which both shrinks the query and exposes constants to OptDCSat's
  ``Covers`` pruning.

:func:`normalize` returns ``(query, verdict)`` where verdict
``UNSATISFIABLE`` means the query can never hold — its denial constraint
is satisfied over *any* database, no data access needed.
"""

from __future__ import annotations

import enum

from repro.errors import QueryError
from repro.query.ast import (
    AggregateQuery,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)


class Verdict(enum.Enum):
    """Outcome of normalization."""

    NORMAL = "normal"
    UNSATISFIABLE = "unsatisfiable"


def _substitution_from_equalities(
    comparisons: tuple[Comparison, ...]
) -> tuple[dict[str, Constant] | None, list[Comparison]]:
    """Extract var = const bindings; detect contradictions.

    Returns ``(bindings, remaining comparisons)``; ``bindings`` is None
    when two different constants are forced onto one variable.
    """
    bindings: dict[str, Constant] = {}
    rest: list[Comparison] = []
    for comparison in comparisons:
        if comparison.op != "=":
            rest.append(comparison)
            continue
        left, right = comparison.left, comparison.right
        if isinstance(left, Variable) and isinstance(right, Constant):
            var, const = left, right
        elif isinstance(right, Variable) and isinstance(left, Constant):
            var, const = right, left
        else:
            rest.append(comparison)
            continue
        bound = bindings.get(var.name)
        if bound is not None and bound.value != const.value:
            return None, []
        bindings[var.name] = const
    return bindings, rest


def _apply_bindings(term: Term, bindings: dict[str, Constant]) -> Term:
    if isinstance(term, Variable) and term.name in bindings:
        return bindings[term.name]
    return term


def normalize(
    query: ConjunctiveQuery | AggregateQuery,
) -> tuple[ConjunctiveQuery | AggregateQuery, Verdict]:
    """Simplify *query*; report unsatisfiability when provable.

    The returned query is equivalent to the input on every database
    (unless the verdict is UNSATISFIABLE, in which case the input never
    holds and the returned query is the input, untouched).
    """
    body = query.body if isinstance(query, AggregateQuery) else query

    bindings, comparisons = _substitution_from_equalities(body.comparisons)
    if bindings is None:
        return query, Verdict.UNSATISFIABLE

    # Substitute bindings into atoms and comparisons.
    atoms = [
        Atom(
            atom.relation,
            tuple(_apply_bindings(t, bindings) for t in atom.terms),
            negated=atom.negated,
        )
        for atom in body.atoms
    ]
    comparisons = [
        Comparison(
            _apply_bindings(c.left, bindings),
            c.op,
            _apply_bindings(c.right, bindings),
        )
        for c in comparisons
    ]

    kept_comparisons: list[Comparison] = []
    for comparison in comparisons:
        left, right = comparison.left, comparison.right
        if isinstance(left, Constant) and isinstance(right, Constant):
            if comparison.holds(left.value, right.value):
                continue  # trivially true: drop
            return query, Verdict.UNSATISFIABLE
        if left == right:
            # x op x: '=', '<=', '>=' hold; '<', '>', '!=' never do.
            if comparison.op in ("=", "<=", ">="):
                continue
            return query, Verdict.UNSATISFIABLE
        kept_comparisons.append(comparison)

    # A positive and a negated copy of the same atom: unsatisfiable.
    positive = {a.relation: set() for a in atoms}
    for atom in atoms:
        if not atom.negated:
            positive.setdefault(atom.relation, set()).add(atom.terms)
    for atom in atoms:
        if atom.negated and atom.terms in positive.get(atom.relation, set()):
            return query, Verdict.UNSATISFIABLE

    # Deduplicate while preserving order.
    seen_atoms: set[tuple] = set()
    unique_atoms: list[Atom] = []
    for atom in atoms:
        key = (atom.relation, atom.terms, atom.negated)
        if key not in seen_atoms:
            seen_atoms.add(key)
            unique_atoms.append(atom)
    seen_comparisons: set[tuple] = set()
    unique_comparisons: list[Comparison] = []
    for comparison in kept_comparisons:
        key = (comparison.left, comparison.op, comparison.right)
        if key not in seen_comparisons:
            seen_comparisons.add(key)
            unique_comparisons.append(comparison)

    try:
        new_body = ConjunctiveQuery(
            unique_atoms, unique_comparisons, name=body.name
        )
    except QueryError:
        # Substitution can only *remove* variables from positive atoms
        # when it removes them everywhere, but guard anyway: fall back to
        # the original query rather than produce an unsafe one.
        return query, Verdict.NORMAL

    if isinstance(query, AggregateQuery):
        agg_terms = tuple(
            _apply_bindings(term, bindings) for term in query.agg_terms
        )
        try:
            rewritten = AggregateQuery(
                query.func,
                agg_terms,
                new_body.atoms,
                query.op,
                query.threshold,
                new_body.comparisons,
                name=query.name,
            )
        except QueryError:
            return query, Verdict.NORMAL
        return rewritten, Verdict.NORMAL
    return new_body, Verdict.NORMAL
