"""Index-backed evaluation of denial constraints.

Positive atoms are joined by backtracking search with a greedy
most-bound-first ordering, probing hash indexes on the bound positions.
Comparisons and negated atoms are checked as early as their variables
become bound.  Works against any fact view (a
:class:`~repro.relational.checking.FactView`), so the same evaluator
serves the plain current state and the overlay possible-world views of
the DCSat engine.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.query.ast import (
    AggregateQuery,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Variable,
)
from repro.relational.checking import FactView, as_fact_view
from repro.relational.database import Database

#: A satisfying assignment: variable name -> ground value.
Assignment = dict[str, object]

#: The facts matched by the positive atoms, aligned with
#: ``query.positive_atoms``: a list of ``(relation, tuple)`` pairs.
Match = list[tuple[str, tuple]]


def _term_value(term, binding: Assignment):
    """Ground value of a term under *binding*; None marker via sentinel."""
    if isinstance(term, Constant):
        return term.value
    return binding.get(term.name, _UNBOUND)


class _Unbound:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unbound>"


_UNBOUND = _Unbound()


def _comparison_ready(comparison: Comparison, binding: Assignment) -> bool:
    return all(v.name in binding for v in comparison.variables)


def _comparison_holds(comparison: Comparison, binding: Assignment) -> bool:
    left = _term_value(comparison.left, binding)
    right = _term_value(comparison.right, binding)
    return comparison.holds(left, right)


def _atom_ready(atom: Atom, binding: Assignment) -> bool:
    return all(v.name in binding for v in atom.variables)


def _ground_atom(atom: Atom, binding: Assignment) -> tuple:
    return tuple(_term_value(t, binding) for t in atom.terms)


def _bound_positions(atom: Atom, binding: Assignment) -> tuple[tuple[int, ...], tuple]:
    """Positions of *atom* already determined by constants or bindings."""
    positions: list[int] = []
    key: list[object] = []
    for i, term in enumerate(atom.terms):
        value = _term_value(term, binding)
        if value is not _UNBOUND:
            positions.append(i)
            key.append(value)
    return tuple(positions), tuple(key)


def _match_atom(atom: Atom, values: tuple, binding: Assignment) -> Assignment | None:
    """Try to unify *atom* with ground tuple *values* under *binding*.

    Returns the dict of *new* bindings on success (possibly empty), or
    None when a constant or an already-bound/repeated variable clashes.
    """
    new: Assignment = {}
    for term, value in zip(atom.terms, values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = binding.get(term.name, _UNBOUND)
            if bound is _UNBOUND:
                prior = new.get(term.name, _UNBOUND)
                if prior is _UNBOUND:
                    new[term.name] = value
                elif prior != value:
                    return None
            elif bound != value:
                return None
    return new


def _checks_pass(
    body: ConjunctiveQuery,
    binding: Assignment,
    view: FactView,
    newly_bound: Iterable[str],
) -> bool:
    """Verify every comparison/negated atom that just became fully bound."""
    fresh = set(newly_bound)
    for comparison in body.comparisons:
        names = {v.name for v in comparison.variables}
        if (names & fresh or not names) and _comparison_ready(comparison, binding):
            if not _comparison_holds(comparison, binding):
                return False
    for atom in body.negated_atoms:
        names = {v.name for v in atom.variables}
        if (names & fresh or not names) and _atom_ready(atom, binding):
            if view.has_fact(atom.relation, _ground_atom(atom, binding)):
                return False
    return True


def _choose_atom(
    remaining: list[Atom], binding: Assignment, view: FactView
) -> tuple[int, tuple[int, ...], tuple]:
    """Pick the next positive atom to expand.

    Greedy heuristic: maximize the number of bound positions (more bound
    positions means a tighter index probe); break ties towards smaller
    relations.  Returns (index into remaining, bound positions, key).
    """
    best = None
    for i, atom in enumerate(remaining):
        positions, key = _bound_positions(atom, binding)
        score = (len(positions), -view.count_tuples(atom.relation))
        if best is None or score > best[0]:
            best = (score, i, positions, key)
    assert best is not None
    return best[1], best[2], best[3]


def _search(
    body: ConjunctiveQuery,
    remaining: list[Atom],
    binding: Assignment,
    matched: Match,
    view: FactView,
) -> Iterator[tuple[Assignment, Match]]:
    if not remaining:
        yield dict(binding), list(matched)
        return
    index, positions, key = _choose_atom(remaining, binding, view)
    atom = remaining[index]
    rest = remaining[:index] + remaining[index + 1 :]
    candidates = (
        view.lookup(atom.relation, positions, key)
        if positions
        else view.iter_tuples(atom.relation)
    )
    for values in candidates:
        new = _match_atom(atom, values, binding)
        if new is None:
            continue
        binding.update(new)
        matched.append((atom.relation, values))
        if _checks_pass(body, binding, view, new):
            yield from _search(body, rest, binding, matched, view)
        matched.pop()
        for name in new:
            del binding[name]


def _initial_checks(body: ConjunctiveQuery, view: FactView) -> bool:
    """Handle variable-free comparisons and negated atoms up front."""
    binding: Assignment = {}
    for comparison in body.comparisons:
        if not comparison.variables and not _comparison_holds(comparison, binding):
            return False
    for atom in body.negated_atoms:
        if not atom.variables and view.has_fact(
            atom.relation, _ground_atom(atom, binding)
        ):
            return False
    return True


def iter_matches(
    query: ConjunctiveQuery | AggregateQuery, state: Database | FactView
) -> Iterator[tuple[Assignment, Match]]:
    """Yield every satisfying assignment of the query body with the facts
    matched by its positive atoms.

    The match list is aligned with the order atoms were *expanded*, which
    may differ from their syntactic order; it always contains one
    ``(relation, tuple)`` entry per positive atom.
    """
    view = as_fact_view(state)
    body = query.body if isinstance(query, AggregateQuery) else query
    if not _initial_checks(body, view):
        return
    yield from _search(body, list(body.positive_atoms), {}, [], view)


def iter_assignments(
    query: ConjunctiveQuery | AggregateQuery, state: Database | FactView
) -> Iterator[Assignment]:
    """Yield every satisfying assignment of the query body."""
    for assignment, _ in iter_matches(query, state):
        yield assignment


def find_assignment(
    query: ConjunctiveQuery | AggregateQuery, state: Database | FactView
) -> Assignment | None:
    """Return one satisfying assignment of the body, or None."""
    for assignment in iter_assignments(query, state):
        return assignment
    return None


def _aggregate_value(func: str, values: list[tuple]) -> object:
    if func == "count":
        return len(values)
    if func == "cntd":
        return len(set(values))
    scalars = [v[0] for v in values]
    if func == "sum":
        return sum(scalars)
    if func == "max":
        return max(scalars)
    if func == "min":
        return min(scalars)
    raise QueryError(f"unknown aggregate function {func!r}")


def evaluate(
    query: ConjunctiveQuery | AggregateQuery, state: Database | FactView
) -> bool:
    """Evaluate a Boolean denial-constraint query over a state.

    Conjunctive queries return True iff a satisfying assignment exists.
    Aggregate queries collect the bag ``B = {{h(x̄)}}`` over all
    satisfying assignments and return ``α(B) θ c`` (False for empty
    ``B``, the paper's SQL-style choice).
    """
    if isinstance(query, ConjunctiveQuery):
        return find_assignment(query, state) is not None

    values: list[tuple] = []
    distinct: set[tuple] = set()
    for assignment, _ in iter_matches(query, state):
        row = tuple(
            term.value if isinstance(term, Constant) else assignment[term.name]
            for term in query.agg_terms
        )
        values.append(row)
        distinct.add(row)
        # Early termination: count/cntd only ever grow, one per assignment,
        # so threshold crossings are definitive for every operator.
        if query.func == "count" and len(values) > _as_number(query.threshold):
            return query.op in (">", ">=", "!=")
        if query.func == "cntd" and len(distinct) > _as_number(query.threshold):
            return query.op in (">", ">=", "!=")
    if not values:
        return False
    result = _aggregate_value(query.func, values)
    final = Comparison(Constant(result), query.op, Constant(query.threshold))
    return final.holds(result, query.threshold)


def _as_number(value: object) -> float:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    return float("inf")
