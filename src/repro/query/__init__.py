"""Denial constraints: conjunctive and aggregate Boolean queries.

Implements the query classes of Section 5 — conjunctive queries with
negated atoms and comparisons (``Qc``), their positive fragment
(``Q+c``), and aggregate queries ``[q(α(x̄)) <- body] θ c`` for
``α ∈ {count, cntd, sum, max, min}`` — plus a small Datalog-style text
parser, an index-backed evaluator, and the structural analyses the DCSat
algorithms rely on (safety, monotonicity, Gaifman-graph connectivity,
equality-constraint derivation).
"""

from repro.query.ast import (
    AGGREGATE_FUNCTIONS,
    AggregateQuery,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)
from repro.query.parser import parse_query
from repro.query.evaluator import evaluate, find_assignment, iter_assignments
from repro.query.analysis import (
    EqualityConstraint,
    constant_patterns,
    equality_constraints_from_inds,
    equality_constraints_from_query,
    is_connected,
    is_monotone,
)

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "AggregateQuery",
    "AGGREGATE_FUNCTIONS",
    "parse_query",
    "evaluate",
    "find_assignment",
    "iter_assignments",
    "EqualityConstraint",
    "equality_constraints_from_query",
    "equality_constraints_from_inds",
    "constant_patterns",
    "is_connected",
    "is_monotone",
]
