"""Conjunctive-query containment via homomorphisms (Chandra–Merkin).

For Boolean positive conjunctive queries, ``q1 ⊑ q2`` (every database
satisfying ``q1`` satisfies ``q2``) holds iff there is a homomorphism
from ``q2``'s atoms into ``q1``'s — map variables to terms so every atom
of ``q2`` lands on an atom of ``q1``.  Denial constraints benefit
directly: if ``q1 ⊑ q2`` then ``D |= ¬q2`` implies ``D |= ¬q1``, so a
monitor can skip checking constraints subsumed by an already-satisfied
one, and an unsatisfiable-anywhere constraint can be reported without
touching the data.

Comparisons restrict the classical theorem, so this module handles them
conservatively: homomorphisms are only sought between the relational
atoms, and queries with comparisons are rejected unless the target
query's comparisons map to syntactically identical ones.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import AlgorithmError
from repro.query.ast import Atom, Comparison, ConjunctiveQuery, Constant, Term, Variable

#: A homomorphism: target-query variable name -> term of the source query.
Homomorphism = dict[str, Term]


def _apply(term: Term, hom: Homomorphism) -> Term:
    if isinstance(term, Variable):
        return hom.get(term.name, term)
    return term


def _extend(
    atom: Atom, target: Atom, hom: Homomorphism
) -> Homomorphism | None:
    """Try to extend *hom* so that ``hom(atom) == target``."""
    if atom.relation != target.relation or len(atom.terms) != len(target.terms):
        return None
    extended = dict(hom)
    for term, image in zip(atom.terms, target.terms):
        if isinstance(term, Constant):
            if term != image:
                return None
        else:
            bound = extended.get(term.name)
            if bound is None:
                extended[term.name] = image
            elif bound != image:
                return None
    return extended


def _search(
    atoms: tuple[Atom, ...],
    targets: tuple[Atom, ...],
    hom: Homomorphism,
) -> Iterator[Homomorphism]:
    if not atoms:
        yield dict(hom)
        return
    first, rest = atoms[0], atoms[1:]
    for target in targets:
        extended = _extend(first, target, hom)
        if extended is not None:
            yield from _search(rest, targets, extended)


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Homomorphism | None:
    """A homomorphism from *source*'s atoms into *target*'s, or None.

    Both queries must be positive; comparisons in *source* must map to
    comparisons syntactically present in *target* (a sound, incomplete
    treatment — the classical theorem does not cover inequalities).
    """
    if not source.is_positive or not target.is_positive:
        raise AlgorithmError("homomorphism containment needs positive queries")
    for hom in _search(source.positive_atoms, target.positive_atoms, {}):
        target_comparisons = set(target.comparisons)
        mapped_ok = True
        for comparison in source.comparisons:
            image = Comparison(
                _apply(comparison.left, hom),
                comparison.op,
                _apply(comparison.right, hom),
            )
            if image not in target_comparisons and not _trivially_true(image):
                mapped_ok = False
                break
        if mapped_ok:
            return hom
    return None


def _trivially_true(comparison: Comparison) -> bool:
    if isinstance(comparison.left, Constant) and isinstance(
        comparison.right, Constant
    ):
        return comparison.holds(comparison.left.value, comparison.right.value)
    return False


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """``q1 ⊑ q2``: every state satisfying ``q1`` satisfies ``q2``.

    Decided by homomorphism **from q2 into q1** (the direction always
    trips people up: the *less constrained* query receives the map).
    """
    return find_homomorphism(q2, q1) is not None


def denial_subsumes(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """As denial constraints: does ``¬q1`` subsume ``¬q2``?

    If ``q2 ⊑ q1`` then whenever ``¬q1`` holds (no world satisfies
    ``q1``), ``¬q2`` holds too — checking ``q1`` suffices for both.
    """
    return is_contained_in(q2, q1)
