"""A small text syntax for denial constraints.

Examples (mirroring the paper's notation)::

    q() <- TxOut(ntx, s, 'U8Pk', a)

    q2() <- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'),
            TxOut(ntx, s, pk, a2), not Trusted(pk)

    [q3(sum(a)) <- TxIn(t, s, 'AlcPK', a, nt, 'AlcSig')] > 5

    q1() <- TxIn(pt1, ps1, 'AlicePK', 1, ntx1, 'AliceSig'),
            TxOut(ntx1, ns1, 'BobPK', 1),
            TxIn(pt2, ps2, 'AlicePK', 1, ntx2, 'AliceSig'),
            TxOut(ntx2, ns2, 'BobPK', 1), ntx1 != ntx2

Identifiers are variables, quoted strings and numbers are constants,
``not`` (or ``¬``) negates an atom, and an aggregate query is written in
square brackets followed by a comparison with a constant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.query.ast import (
    AGGREGATE_FUNCTIONS,
    AggregateQuery,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow><-|:-|←)
  | (?P<op><=|>=|!=|≠|=|<|>)
  | (?P<punct>[()\[\],])
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*|¬)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(
                f"unexpected character {source[pos]!r} at offset {pos}", position=pos
            )
        kind = m.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    def _peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", position=len(self.source))
        self.index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {token.text!r} at offset {token.position}",
                position=token.position,
            )
        return token

    def parse(self) -> ConjunctiveQuery | AggregateQuery:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == "[":
            query = self._parse_aggregate()
        else:
            query = self._parse_conjunctive()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected trailing input {trailing.text!r} at offset "
                f"{trailing.position}",
                position=trailing.position,
            )
        return query

    def _parse_conjunctive(self) -> ConjunctiveQuery:
        name = self._expect("ident").text
        self._expect("punct", "(")
        self._expect("punct", ")")
        self._expect("arrow")
        atoms, comparisons = self._parse_body()
        return ConjunctiveQuery(atoms, comparisons, name=name)

    def _parse_aggregate(self) -> AggregateQuery:
        self._expect("punct", "[")
        name = self._expect("ident").text
        self._expect("punct", "(")
        func_token = self._expect("ident")
        func = func_token.text
        if func not in AGGREGATE_FUNCTIONS:
            raise ParseError(
                f"unknown aggregate function {func!r} at offset "
                f"{func_token.position}",
                position=func_token.position,
            )
        self._expect("punct", "(")
        agg_terms: list[Term] = []
        if not self._at_punct(")"):
            agg_terms.append(self._parse_term())
            while self._at_punct(","):
                self._next()
                agg_terms.append(self._parse_term())
        self._expect("punct", ")")
        self._expect("punct", ")")
        self._expect("arrow")
        atoms, comparisons = self._parse_body(stop_at="]")
        self._expect("punct", "]")
        op = self._expect("op").text
        if op == "≠":
            op = "!="
        threshold_term = self._parse_term()
        if not isinstance(threshold_term, Constant):
            raise ParseError("aggregate threshold must be a constant")
        return AggregateQuery(
            func,
            tuple(agg_terms),
            atoms,
            op,
            threshold_term.value,
            comparisons,
            name=name,
        )

    def _parse_body(
        self, stop_at: str | None = None
    ) -> tuple[list[Atom], list[Comparison]]:
        atoms: list[Atom] = []
        comparisons: list[Comparison] = []
        while True:
            self._parse_body_item(atoms, comparisons)
            if self._at_punct(","):
                self._next()
                continue
            break
        if stop_at is not None and not self._at_punct(stop_at):
            token = self._peek()
            pos = token.position if token else len(self.source)
            raise ParseError(f"expected {stop_at!r} at offset {pos}", position=pos)
        return atoms, comparisons

    def _parse_body_item(
        self, atoms: list[Atom], comparisons: list[Comparison]
    ) -> None:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query body", position=len(self.source))
        if token.kind == "ident" and token.text in ("not", "¬"):
            self._next()
            atoms.append(self._parse_atom(negated=True))
            return
        # Lookahead: ident followed by "(" is an atom; otherwise the item
        # is a comparison between two terms.
        if token.kind == "ident":
            after = (
                self.tokens[self.index + 1]
                if self.index + 1 < len(self.tokens)
                else None
            )
            if after is not None and after.kind == "punct" and after.text == "(":
                atoms.append(self._parse_atom(negated=False))
                return
        left = self._parse_term()
        op = self._expect("op").text
        if op == "≠":
            op = "!="
        right = self._parse_term()
        comparisons.append(Comparison(left, op, right))

    def _parse_atom(self, negated: bool) -> Atom:
        relation = self._expect("ident").text
        self._expect("punct", "(")
        terms: list[Term] = [self._parse_term()]
        while self._at_punct(","):
            self._next()
            terms.append(self._parse_term())
        self._expect("punct", ")")
        return Atom(relation, tuple(terms), negated=negated)

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "ident":
            return Variable(token.text)
        if token.kind == "number":
            text = token.text
            return Constant(float(text) if "." in text else int(text))
        if token.kind == "string":
            raw = token.text[1:-1]
            unescaped = raw.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")
            return Constant(unescaped)
        raise ParseError(
            f"expected a term, found {token.text!r} at offset {token.position}",
            position=token.position,
        )

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "punct" and token.text == text


def parse_query(source: str) -> ConjunctiveQuery | AggregateQuery:
    """Parse a denial constraint from its textual form.

    Returns a :class:`ConjunctiveQuery` or an :class:`AggregateQuery`.
    Raises :class:`~repro.errors.ParseError` on malformed input and
    :class:`~repro.errors.QueryError` on semantic problems (unsafe
    variables, bad aggregate arity).
    """
    return _Parser(source).parse()
