"""Abstract syntax for denial constraints.

A *conjunctive query* has the form ``q() <- P, N, C`` where ``P`` is a
conjunction of positive relational atoms, ``N`` of negated atoms and
``C`` of comparisons (Section 5).  All queries are Boolean.  An
*aggregate query* wraps a conjunctive body with an aggregate function
over a tuple of variables and compares the aggregate to a constant:
``[q(α(x̄)) <- P, N, C] θ c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import QueryError

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Aggregate functions supported, as in Theorem 2 (cntd = count distinct).
AGGREGATE_FUNCTIONS = ("count", "cntd", "sum", "max", "min")


@dataclass(frozen=True)
class Variable:
    """A query variable."""

    name: str

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise QueryError(f"invalid variable name: {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A ground value appearing in a query."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[Variable, Constant]


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tn)``, possibly negated."""

    relation: str
    terms: tuple[Term, ...]
    negated: bool = False

    def __post_init__(self):
        object.__setattr__(self, "terms", tuple(self.terms))
        for t in self.terms:
            if not isinstance(t, (Variable, Constant)):
                raise QueryError(f"atom term must be Variable or Constant: {t!r}")

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(t for t in self.terms if isinstance(t, Variable))

    @property
    def constants(self) -> tuple[Constant, ...]:
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def constant_positions(self) -> tuple[tuple[int, object], ...]:
        """``(position, value)`` pairs for every constant in the atom."""
        return tuple(
            (i, t.value) for i, t in enumerate(self.terms) if isinstance(t, Constant)
        )

    def __str__(self) -> str:
        body = f"{self.relation}({', '.join(map(str, self.terms))})"
        return f"not {body}" if self.negated else body


@dataclass(frozen=True)
class Comparison:
    """A comparison between two terms, e.g. ``x != y`` or ``a > 5``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise QueryError(f"unsupported comparison operator: {self.op!r}")

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(t for t in (self.left, self.right) if isinstance(t, Variable))

    def holds(self, left_value: object, right_value: object) -> bool:
        """Evaluate the comparison on ground values.

        Equality comparisons work for any values; ordering comparisons
        between incomparable types (e.g. str vs int) evaluate to False
        rather than raising, matching SQL's type-strict spirit without
        aborting whole query runs.
        """
        if self.op == "=":
            return left_value == right_value
        if self.op == "!=":
            return left_value != right_value
        try:
            if self.op == "<":
                return left_value < right_value
            if self.op == "<=":
                return left_value <= right_value
            if self.op == ">":
                return left_value > right_value
            return left_value >= right_value
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


class ConjunctiveQuery:
    """A Boolean conjunctive query ``q() <- P, N, C``.

    The query must be *safe*: every variable (including those in negated
    atoms and comparisons) appears in some positive relational atom.
    """

    def __init__(
        self,
        atoms: tuple[Atom, ...] | list[Atom],
        comparisons: tuple[Comparison, ...] | list[Comparison] = (),
        name: str = "q",
    ):
        self.name = name
        self.atoms = tuple(atoms)
        self.comparisons = tuple(comparisons)
        if not self.positive_atoms:
            raise QueryError(f"query {name!r} needs at least one positive atom")
        self._check_safety()

    @property
    def positive_atoms(self) -> tuple[Atom, ...]:
        return tuple(a for a in self.atoms if not a.negated)

    @property
    def negated_atoms(self) -> tuple[Atom, ...]:
        return tuple(a for a in self.atoms if a.negated)

    @property
    def is_positive(self) -> bool:
        """True when the query is in ``Q+c`` (no negated atoms)."""
        return not self.negated_atoms

    @property
    def variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for a in self.atoms:
            out.update(a.variables)
        for c in self.comparisons:
            out.update(c.variables)
        return frozenset(out)

    def _check_safety(self) -> None:
        positive_vars = {v for a in self.positive_atoms for v in a.variables}
        unsafe = self.variables - positive_vars
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise QueryError(
                f"query {self.name!r} is unsafe: variables [{names}] do not "
                "appear in any positive relational atom"
            )

    def relations(self) -> frozenset[str]:
        return frozenset(a.relation for a in self.atoms)

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms] + [str(c) for c in self.comparisons]
        return f"{self.name}() <- {', '.join(parts)}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"


class AggregateQuery:
    """An aggregate Boolean query ``[q(α(x̄)) <- body] θ c``.

    Semantics (Section 5): let ``H`` be the set of satisfying assignments
    of the body and ``B`` the bag ``{{h(x̄) | h ∈ H}}``; the query returns
    ``α(B) θ c``, and *false* when ``B`` is empty.
    """

    def __init__(
        self,
        func: str,
        agg_terms: tuple[Term, ...] | list[Term],
        atoms: tuple[Atom, ...] | list[Atom],
        op: str,
        threshold: object,
        comparisons: tuple[Comparison, ...] | list[Comparison] = (),
        name: str = "q",
    ):
        if func not in AGGREGATE_FUNCTIONS:
            raise QueryError(f"unsupported aggregate function: {func!r}")
        if op not in COMPARISON_OPS:
            raise QueryError(f"unsupported aggregate comparison: {op!r}")
        self.func = func
        self.agg_terms = tuple(agg_terms)
        if func in ("sum", "max", "min") and len(self.agg_terms) != 1:
            raise QueryError(f"aggregate {func!r} takes exactly one argument")
        if func == "cntd" and not self.agg_terms:
            raise QueryError("cntd needs at least one argument")
        for t in self.agg_terms:
            if not isinstance(t, (Variable, Constant)):
                raise QueryError(f"aggregate argument must be a term: {t!r}")
        self.op = op
        self.threshold = threshold
        self.name = name
        # Reuse the conjunctive machinery (incl. the safety check) for the body.
        self.body = ConjunctiveQuery(atoms, comparisons, name=f"{name}_body")
        agg_vars = {t for t in self.agg_terms if isinstance(t, Variable)}
        body_vars = self.body.variables
        missing = agg_vars - body_vars
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise QueryError(
                f"aggregate variables [{names}] do not appear in the query body"
            )

    @property
    def atoms(self) -> tuple[Atom, ...]:
        return self.body.atoms

    @property
    def comparisons(self) -> tuple[Comparison, ...]:
        return self.body.comparisons

    @property
    def positive_atoms(self) -> tuple[Atom, ...]:
        return self.body.positive_atoms

    @property
    def negated_atoms(self) -> tuple[Atom, ...]:
        return self.body.negated_atoms

    @property
    def is_positive(self) -> bool:
        return self.body.is_positive

    @property
    def variables(self) -> frozenset[Variable]:
        return self.body.variables

    def relations(self) -> frozenset[str]:
        return self.body.relations()

    def __str__(self) -> str:
        args = ", ".join(map(str, self.agg_terms))
        parts = [str(a) for a in self.atoms] + [str(c) for c in self.comparisons]
        return (
            f"[{self.name}({self.func}({args})) <- {', '.join(parts)}] "
            f"{self.op} {self.threshold!r}"
        )

    def __repr__(self) -> str:
        return f"AggregateQuery({self})"


#: Any denial-constraint query.
Query = Union[ConjunctiveQuery, AggregateQuery]
