"""Structural analysis of denial constraints.

Provides the ingredients of Section 6:

* *monotonicity* — NaiveDCSat/OptDCSat may restrict attention to maximal
  possible worlds only for monotone queries;
* *connectivity* — OptDCSat additionally requires the query's Gaifman
  graph to be connected;
* *equality constraints* — Θ_q (derived from pairs of positive atoms
  sharing terms) and Θ_I (derived from inclusion dependencies), the edge
  generators of the ind-q-transaction graph;
* *constant patterns* — the per-atom constant positions behind the
  ``Covers(R, T', q)`` pruning test.

Reproduction note: the paper derives Θ_q from shared *variables* only,
while its Gaifman graph is over *terms*.  We follow the Gaifman-graph
reading and also pair positions holding equal constants — without this,
a query whose atoms touch only through a shared constant could be split
across components and OptDCSat would miss violations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import (
    AggregateQuery,
    Atom,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)
from repro.relational.constraints import ConstraintSet


class _UnionFind:
    """Tiny union-find over hashable items."""

    def __init__(self):
        self._parent: dict[object, object] = {}

    def find(self, item: object) -> object:
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _canonical_keys(query: ConjunctiveQuery) -> dict[Term, object]:
    """Map every term occurring in the query to a canonical key.

    Variables linked by ``=`` comparisons share a key; a variable equated
    to a constant adopts the constant's key; equal constants share a key.
    """
    uf = _UnionFind()

    def key_of(term: Term) -> object:
        if isinstance(term, Variable):
            return ("var", term.name)
        return ("const", term.value)

    terms: set[Term] = set()
    for atom in query.atoms:
        terms.update(atom.terms)
    for comparison in query.comparisons:
        terms.add(comparison.left)
        terms.add(comparison.right)
        if comparison.op == "=":
            uf.union(key_of(comparison.left), key_of(comparison.right))
    return {t: uf.find(key_of(t)) for t in terms}


def is_connected(query: ConjunctiveQuery | AggregateQuery) -> bool:
    """Is the query conjunctive with a connected Gaifman graph?

    The Gaifman graph's nodes are the terms of the relational atoms, with
    an edge between terms co-occurring in an atom; ``=`` comparisons merge
    terms.  Aggregate queries are never *connected* in the paper's sense
    (the definition requires a conjunctive query).
    """
    if isinstance(query, AggregateQuery):
        return False
    canon = _canonical_keys(query)
    uf = _UnionFind()
    roots = []
    for atom in query.atoms:
        keys = [canon[t] for t in atom.terms]
        for other in keys[1:]:
            uf.union(keys[0], other)
        roots.append(keys[0])
    return len({uf.find(r) for r in roots}) <= 1


def is_monotone(
    query: ConjunctiveQuery | AggregateQuery, assume_nonnegative: bool = False
) -> bool:
    """Conservatively decide whether the query is monotone.

    A query is monotone when ``R ⊆ R'`` and ``q(R)`` imply ``q(R')``
    (Section 6.1).  Positive conjunctive queries are monotone; negation
    breaks monotonicity.  For aggregates over a positive body:

    * ``count``/``cntd`` with ``>``/``>=`` — monotone (assignments only
      accumulate);
    * ``max`` with ``>``/``>=`` and ``min`` with ``<``/``<=`` — monotone;
    * ``sum`` with ``>``/``>=`` — monotone only when all aggregated
      values are non-negative, which cannot be checked statically; pass
      ``assume_nonnegative=True`` to vouch for it (Bitcoin amounts are).

    Everything else is reported non-monotone.
    """
    if isinstance(query, ConjunctiveQuery):
        return query.is_positive
    if not query.is_positive:
        return False
    grows = query.op in (">", ">=")
    if query.func in ("count", "cntd"):
        return grows
    if query.func == "max":
        return grows
    if query.func == "min":
        return query.op in ("<", "<=")
    if query.func == "sum":
        return grows and assume_nonnegative
    return False


@dataclass(frozen=True)
class EqualityConstraint:
    """``left[left_positions] = right[right_positions]`` over tuple pairs.

    Satisfied by tuples ``t`` (of relation *left*) and ``s`` (of relation
    *right*) when their projections agree; satisfied by a pair of
    transactions when some pair of their tuples satisfies it, in either
    orientation.
    """

    left: str
    left_positions: tuple[int, ...]
    right: str
    right_positions: tuple[int, ...]

    def __post_init__(self):
        if len(self.left_positions) != len(self.right_positions):
            raise ValueError("equality constraint sides must have equal width")

    def __str__(self) -> str:
        return (
            f"{self.left}[{','.join(map(str, self.left_positions))}] = "
            f"{self.right}[{','.join(map(str, self.right_positions))}]"
        )


def equality_constraints_from_query(
    query: ConjunctiveQuery | AggregateQuery,
) -> frozenset[EqualityConstraint]:
    """Derive Θ_q: one constraint per pair of positive atoms sharing terms.

    For atoms ``R(x̄)`` and ``S(ȳ)``, the constraint pairs every position
    of ``x̄`` with every position of ``ȳ`` holding the same canonical
    term (identical variable, variables equated by comparisons, or equal
    constants).  Requiring *all* such position pairs simultaneously is
    sound: a single satisfying assignment grounds each shared term to one
    value, so any tuple pair it produces satisfies them all at once.
    """
    body = query.body if isinstance(query, AggregateQuery) else query
    canon = _canonical_keys(body)
    atoms = body.positive_atoms
    constraints: set[EqualityConstraint] = set()
    for i, a in enumerate(atoms):
        for b in atoms[i + 1 :]:
            left_positions: list[int] = []
            right_positions: list[int] = []
            for pa, ta in enumerate(a.terms):
                for pb, tb in enumerate(b.terms):
                    if canon[ta] == canon[tb]:
                        left_positions.append(pa)
                        right_positions.append(pb)
            if left_positions:
                constraints.add(
                    EqualityConstraint(
                        a.relation,
                        tuple(left_positions),
                        b.relation,
                        tuple(right_positions),
                    )
                )
    return frozenset(constraints)


def equality_constraints_from_inds(
    constraints: ConstraintSet,
) -> frozenset[EqualityConstraint]:
    """Derive Θ_I: each inclusion dependency ``R[X] ⊆ S[Y]`` contributes
    the equality constraint ``R[X] = S[Y]``."""
    out: set[EqualityConstraint] = set()
    for rind in (r for rel in constraints.schema.relation_names for r in constraints.inds_for_child(rel)):
        out.add(
            EqualityConstraint(
                rind.ind.child,
                rind.child_positions,
                rind.ind.parent,
                rind.parent_positions,
            )
        )
    return frozenset(out)


@dataclass(frozen=True)
class ConstantPattern:
    """The constants of one atom: ``relation[positions] = values``."""

    relation: str
    positions: tuple[int, ...]
    values: tuple


def constant_patterns(
    query: ConjunctiveQuery | AggregateQuery,
) -> tuple[ConstantPattern, ...]:
    """The constant patterns of every positive atom carrying constants.

    These drive the ``Covers(R, T', q)`` test of OptDCSat: a component is
    worth exploring only if, together with the current state, it provides
    a tuple matching each pattern.
    """
    body = query.body if isinstance(query, AggregateQuery) else query
    patterns: list[ConstantPattern] = []
    for atom in body.positive_atoms:
        pairs = atom.constant_positions()
        if pairs:
            positions = tuple(p for p, _ in pairs)
            values = tuple(v for _, v in pairs)
            patterns.append(ConstantPattern(atom.relation, positions, values))
    return tuple(patterns)
