"""JSON (de)serialization of blockchain databases.

Lets users persist and exchange `D = (R, I, T)` instances — schema,
constraints, committed state and pending transactions — and powers the
command-line interface.  Values are restricted to JSON scalars (str,
int, float, bool); tuples round-trip through lists.

Format (version 1)::

    {
      "version": 1,
      "schema": {"TxOut": ["txId", "ser", "pk", "amount"], ...},
      "constraints": {
        "fds":  [{"relation": "TxOut", "lhs": [...], "rhs": [...]}],
        "inds": [{"child": "TxIn", "child_attrs": [...],
                  "parent": "TxOut", "parent_attrs": [...]}]
      },
      "current": {"TxOut": [[...], ...], ...},
      "pending": [{"id": "T1", "facts": {"TxOut": [[...]]}}, ...]
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.blockchain_db import BlockchainDatabase
from repro.errors import ReproError
from repro.relational.constraints import (
    ConstraintSet,
    FunctionalDependency,
    InclusionDependency,
)
from repro.relational.database import Database, make_schema

FORMAT_VERSION = 1

_SCALARS = (str, int, float, bool)


def _check_value(value: Any) -> Any:
    if not isinstance(value, _SCALARS):
        raise ReproError(
            f"only JSON scalar values serialize; got {type(value).__name__}: "
            f"{value!r}"
        )
    return value


def database_to_dict(db: BlockchainDatabase) -> dict:
    """Serialize a blockchain database to a JSON-compatible dict."""
    schema = {
        rel.name: list(rel.attribute_names) for rel in db.current.schema
    }
    constraints = {
        "fds": [
            {"relation": fd.relation, "lhs": list(fd.lhs), "rhs": list(fd.rhs)}
            for fd in db.constraints.fds
        ],
        "inds": [
            {
                "child": ind.child,
                "child_attrs": list(ind.child_attrs),
                "parent": ind.parent,
                "parent_attrs": list(ind.parent_attrs),
            }
            for ind in db.constraints.inds
        ],
    }
    current = {
        name: sorted(
            [[_check_value(v) for v in values] for values in db.current[name]]
        )
        for name in db.current.relation_names
    }
    pending = [
        {
            "id": tx.tx_id,
            "facts": {
                rel: sorted(
                    [[_check_value(v) for v in values] for values in tx.tuples(rel)]
                )
                for rel in sorted(tx.relation_names)
            },
        }
        for tx in db.pending
    ]
    return {
        "version": FORMAT_VERSION,
        "schema": schema,
        "constraints": constraints,
        "current": current,
        "pending": pending,
    }


def database_from_dict(payload: dict, validate: bool = True) -> BlockchainDatabase:
    """Rebuild a blockchain database from :func:`database_to_dict` output."""
    from repro.relational.transaction import Transaction

    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"unsupported serialization version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        schema = make_schema(payload["schema"])
        constraint_spec = payload["constraints"]
        constraints = ConstraintSet(schema)
        for fd in constraint_spec.get("fds", []):
            constraints.add(
                FunctionalDependency(fd["relation"], fd["lhs"], fd["rhs"])
            )
        for ind in constraint_spec.get("inds", []):
            constraints.add(
                InclusionDependency(
                    ind["child"], ind["child_attrs"],
                    ind["parent"], ind["parent_attrs"],
                )
            )
        current = Database.from_dict(
            schema,
            {
                name: [tuple(values) for values in rows]
                for name, rows in payload["current"].items()
            },
        )
        pending = [
            Transaction(
                {
                    rel: [tuple(values) for values in rows]
                    for rel, rows in tx["facts"].items()
                },
                tx_id=tx["id"],
            )
            for tx in payload["pending"]
        ]
    except KeyError as missing:
        raise ReproError(f"malformed serialized database: missing {missing}") from None
    return BlockchainDatabase(current, constraints, pending, validate=validate)


def dumps(db: BlockchainDatabase, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(database_to_dict(db), indent=indent, sort_keys=True)


def loads(text: str, validate: bool = True) -> BlockchainDatabase:
    """Deserialize from a JSON string."""
    return database_from_dict(json.loads(text), validate=validate)


def dump(db: BlockchainDatabase, path: str) -> None:
    """Serialize to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(db))


def load(path: str, validate: bool = True) -> BlockchainDatabase:
    """Deserialize from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), validate=validate)
