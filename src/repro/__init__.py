"""repro — Reasoning about the Future in Blockchain Databases.

A full reproduction of Cohen, Rosenthal and Zohar (ICDE 2020): an
abstract model of databases whose storage layer is a blockchain, the
denial-constraint satisfaction problem over their possible worlds, the
NaiveDCSat / OptDCSat algorithms with the paper's steady-state
optimizations, the tractable special cases of Theorems 1–2, and a
Bitcoin-style substrate for generating realistic workloads.

Quickstart::

    from repro import (
        BlockchainDatabase, ConstraintSet, Database, DCSatChecker,
        Key, InclusionDependency, Transaction, make_schema, parse_query,
    )

    schema = make_schema({"Pay": ["payer", "payee", "amount", "txid"]})
    constraints = ConstraintSet(schema, [Key("Pay", ["txid"], schema)])
    state = Database.from_dict(schema, {"Pay": []})
    tx = Transaction({"Pay": [("alice", "bob", 1, "t1")]}, tx_id="T1")
    db = BlockchainDatabase(state, constraints, [tx])
    checker = DCSatChecker(db)
    result = checker.check("q() <- Pay('alice', 'bob', a, t)")
    assert not result.satisfied          # some possible world pays Bob
"""

from repro.core import (
    BlockchainDatabase,
    DCSatChecker,
    DCSatResult,
    DCSatStats,
    enumerate_possible_worlds,
    get_maximal,
    is_possible_world,
    world_database,
)
from repro.query import (
    AggregateQuery,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Variable,
    evaluate,
    parse_query,
)
from repro.relational import (
    ConstraintSet,
    Database,
    FunctionalDependency,
    InclusionDependency,
    Key,
    Transaction,
)
from repro.relational.database import make_schema

__version__ = "1.0.0"

__all__ = [
    "BlockchainDatabase",
    "DCSatChecker",
    "DCSatResult",
    "DCSatStats",
    "enumerate_possible_worlds",
    "is_possible_world",
    "world_database",
    "get_maximal",
    "AggregateQuery",
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "Variable",
    "evaluate",
    "parse_query",
    "ConstraintSet",
    "Database",
    "FunctionalDependency",
    "InclusionDependency",
    "Key",
    "Transaction",
    "make_schema",
    "__version__",
]
