"""Programmatic experiment runner: the paper's tables and figures as data.

While ``benchmarks/`` measures with pytest-benchmark rigor, this module
reproduces each artefact as a plain data series — the rows behind
Table 1 and the (x, naive, opt) points behind Figures 6a–6h — so they
can be printed, exported to CSV, or plotted.  Run the whole battery::

    python -m repro.workloads.experiments            # full scaled run
    python -m repro.workloads.experiments --quick    # smoke-sized

Each experiment reports per point the **median of `repeats` runs**, as
the paper averages three executions.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from dataclasses import dataclass, field

from repro.bitcoin.generator import PRESETS, Dataset, DatasetSpec, generate_dataset
from repro.core.checker import DCSatChecker
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.workloads.constants import ConstantPicker, fresh_address
from repro.workloads.queries import (
    aggregate_constraint,
    path_constraint,
    simple_constraint,
    star_constraint,
)

Query = ConjunctiveQuery | AggregateQuery

#: Smoke-sized specs for --quick runs and the test suite.
QUICK_PRESETS = {
    "D100-S": DatasetSpec(
        name="D100-Q", committed_blocks=12, pending_blocks=6,
        txs_per_block=4, users=12, contradictions=5, seed=100,
    ),
    "D200-S": DatasetSpec(
        name="D200-Q", committed_blocks=20, pending_blocks=8,
        txs_per_block=5, users=14, contradictions=5, seed=200,
    ),
    "D300-S": DatasetSpec(
        name="D300-Q", committed_blocks=28, pending_blocks=6,
        txs_per_block=6, users=16, contradictions=5, seed=300,
    ),
}


@dataclass
class Row:
    """One measured point of an experiment series."""

    label: str
    algorithm: str
    seconds: float
    satisfied: bool
    worlds: int = 0

    def as_csv(self) -> str:
        return (
            f"{self.label},{self.algorithm},{self.seconds:.6f},"
            f"{int(self.satisfied)},{self.worlds}"
        )


@dataclass
class Experiment:
    """A named series of measured rows."""

    name: str
    description: str
    rows: list[Row] = field(default_factory=list)

    def print(self, stream=None) -> None:
        stream = stream if stream is not None else sys.stdout
        print(f"\n== {self.name}: {self.description}", file=stream)
        width = max((len(r.label) for r in self.rows), default=8)
        for row in self.rows:
            print(
                f"  {row.label:<{width}}  {row.algorithm:<6}  "
                f"{row.seconds * 1000:9.3f} ms  "
                f"{'satisfied' if row.satisfied else 'VIOLATED'}",
                file=stream,
            )

    def csv(self) -> str:
        header = "label,algorithm,seconds,satisfied,worlds"
        return "\n".join([header] + [row.as_csv() for row in self.rows])


class ExperimentSuite:
    """Builds and runs every experiment of Section 7."""

    def __init__(self, quick: bool = False, repeats: int = 3):
        self.presets = QUICK_PRESETS if quick else PRESETS
        self.repeats = repeats
        self._datasets: dict[str, Dataset] = {}
        self._checkers: dict[str, DCSatChecker] = {}
        self._pickers: dict[str, ConstantPicker] = {}

    # ------------------------------------------------------------------
    # Caching plumbing

    def dataset(self, spec: DatasetSpec | str) -> Dataset:
        if isinstance(spec, str):
            spec = self.presets[spec]
        if spec.name not in self._datasets:
            self._datasets[spec.name] = generate_dataset(spec)
        return self._datasets[spec.name]

    def checker(self, spec: DatasetSpec | str) -> DCSatChecker:
        dataset = self.dataset(spec)
        if dataset.spec.name not in self._checkers:
            self._checkers[dataset.spec.name] = DCSatChecker(
                dataset.to_blockchain_database(),
                assume_nonnegative_sums=True,
            )
        return self._checkers[dataset.spec.name]

    def picker(self, spec: DatasetSpec | str) -> ConstantPicker:
        dataset = self.dataset(spec)
        if dataset.spec.name not in self._pickers:
            self._pickers[dataset.spec.name] = ConstantPicker(dataset)
        return self._pickers[dataset.spec.name]

    def _measure(
        self, checker: DCSatChecker, query: Query, algorithm: str,
        label: str,
    ) -> Row:
        samples = []
        result = None
        for _ in range(self.repeats):
            started = time.perf_counter()
            result = checker.check(query, algorithm=algorithm)
            samples.append(time.perf_counter() - started)
        assert result is not None
        return Row(
            label=label,
            algorithm=algorithm,
            seconds=statistics.median(samples),
            satisfied=result.satisfied,
            worlds=result.stats.worlds_checked,
        )

    # ------------------------------------------------------------------
    # Table 1

    def table1(self) -> Experiment:
        experiment = Experiment("Table 1", "dataset statistics")
        for name in self.presets:
            stats = self.dataset(name).stats()
            experiment.rows.append(
                Row(
                    label=(
                        f"{name} R: {stats.blocks} blk / {stats.transactions} tx / "
                        f"{stats.inputs} in / {stats.outputs} out | "
                        f"T: {stats.pending_transactions} tx / "
                        f"{stats.pending_inputs} in / {stats.pending_outputs} out"
                    ),
                    algorithm="-",
                    seconds=0.0,
                    satisfied=True,
                )
            )
        return experiment

    # ------------------------------------------------------------------
    # Figures

    def _default(self) -> str:
        return "D200-S"

    def _families(self, satisfied: bool) -> list[tuple[str, Query, tuple[str, ...]]]:
        if satisfied:
            return [
                ("qs", simple_constraint(fresh_address("e1")), ("naive", "opt")),
                ("qp3", path_constraint(3, fresh_address("e2"), fresh_address("e3")), ("naive", "opt")),
                ("qr3", star_constraint(3, fresh_address("e4")), ("naive", "opt")),
                ("qa", aggregate_constraint(fresh_address("e5"), 10), ("naive",)),
            ]
        picker = self.picker(self._default())
        source, sink = picker.path_endpoints(3)
        agg_addr, agg_thr = picker.aggregate_target()
        return [
            ("qs", simple_constraint(picker.pending_recipient()), ("naive", "opt")),
            ("qp3", path_constraint(3, source, sink), ("naive", "opt")),
            ("qr3", star_constraint(3, picker.star_source(3)), ("naive", "opt")),
            ("qa", aggregate_constraint(agg_addr, agg_thr), ("naive",)),
        ]

    def figure6a(self) -> Experiment:
        experiment = Experiment("Figure 6a", "query types, satisfied")
        checker = self.checker(self._default())
        for label, query, algorithms in self._families(satisfied=True):
            for algorithm in algorithms:
                experiment.rows.append(
                    self._measure(checker, query, algorithm, label)
                )
        return experiment

    def figure6b(self) -> Experiment:
        experiment = Experiment("Figure 6b", "query types, unsatisfied")
        checker = self.checker(self._default())
        for label, query, algorithms in self._families(satisfied=False):
            for algorithm in algorithms:
                experiment.rows.append(
                    self._measure(checker, query, algorithm, label)
                )
        return experiment

    def _pending_specs(self) -> list[DatasetSpec]:
        base = self.presets[self._default()]
        steps = [10, 20, 30, 40, 50] if base.pending_blocks >= 30 else [4, 8, 12]
        return [
            base.scaled(name=f"{base.name}/p{blocks}", pending_blocks=blocks)
            for blocks in steps
        ]

    def figure6c(self) -> Experiment:
        experiment = Experiment("Figure 6c", "pending transactions, satisfied")
        query = path_constraint(3, fresh_address("e6"), fresh_address("e7"))
        for spec in self._pending_specs():
            checker = self.checker(spec)
            experiment.rows.append(
                self._measure(checker, query, "opt", f"{spec.pending_blocks} blocks")
            )
        return experiment

    def figure6d(self) -> Experiment:
        experiment = Experiment("Figure 6d", "pending transactions, unsatisfied")
        for spec in self._pending_specs():
            checker = self.checker(spec)
            picker = self.picker(spec)
            source, sink = picker.path_endpoints(3)
            query = path_constraint(3, source, sink)
            for algorithm in ("naive", "opt"):
                experiment.rows.append(
                    self._measure(
                        checker, query, algorithm, f"{spec.pending_blocks} blocks"
                    )
                )
        return experiment

    def _contradiction_specs(self) -> list[DatasetSpec]:
        base = self.presets[self._default()]
        steps = [10, 20, 30, 40, 50] if base.contradictions >= 20 else [2, 5, 8]
        return [
            base.scaled(name=f"{base.name}/c{count}", contradictions=count)
            for count in steps
        ]

    def figure6e(self) -> Experiment:
        experiment = Experiment("Figure 6e", "contradictions, satisfied")
        query = path_constraint(3, fresh_address("e8"), fresh_address("e9"))
        for spec in self._contradiction_specs():
            checker = self.checker(spec)
            experiment.rows.append(
                self._measure(
                    checker, query, "opt", f"{spec.contradictions} contradictions"
                )
            )
        return experiment

    def figure6f(self) -> Experiment:
        experiment = Experiment("Figure 6f", "contradictions, unsatisfied")
        for spec in self._contradiction_specs():
            checker = self.checker(spec)
            picker = self.picker(spec)
            source, sink = picker.path_endpoints(3)
            query = path_constraint(3, source, sink)
            for algorithm in ("naive", "opt"):
                experiment.rows.append(
                    self._measure(
                        checker, query, algorithm,
                        f"{spec.contradictions} contradictions",
                    )
                )
        return experiment

    def figure6g(self) -> Experiment:
        experiment = Experiment("Figure 6g", "query sizes, unsatisfied")
        checker = self.checker(self._default())
        picker = self.picker(self._default())
        lengths = [2, 3, 4, 5]
        for length in lengths:
            source, sink = picker.path_endpoints(length)
            query = path_constraint(length, source, sink)
            for algorithm in ("naive", "opt"):
                experiment.rows.append(
                    self._measure(checker, query, algorithm, f"length {length}")
                )
        return experiment

    def figure6h(self) -> Experiment:
        experiment = Experiment("Figure 6h", "data sizes, unsatisfied")
        for name in self.presets:
            checker = self.checker(name)
            picker = self.picker(name)
            source, sink = picker.path_endpoints(3)
            query = path_constraint(3, source, sink)
            for algorithm in ("naive", "opt"):
                experiment.rows.append(
                    self._measure(checker, query, algorithm, name)
                )
        return experiment

    # ------------------------------------------------------------------
    # The whole battery

    def run_all(self) -> list[Experiment]:
        return [
            self.table1(),
            self.figure6a(),
            self.figure6b(),
            self.figure6c(),
            self.figure6d(),
            self.figure6e(),
            self.figure6f(),
            self.figure6g(),
            self.figure6h(),
        ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Re-run the paper's Section 7 experiments as data series"
    )
    parser.add_argument("--quick", action="store_true", help="smoke-sized datasets")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--csv-dir", default=None, help="also write CSV files")
    args = parser.parse_args(argv)

    suite = ExperimentSuite(quick=args.quick, repeats=args.repeats)
    experiments = suite.run_all()
    for experiment in experiments:
        experiment.print()
    if args.csv_dir:
        import os

        os.makedirs(args.csv_dir, exist_ok=True)
        for experiment in experiments:
            slug = experiment.name.lower().replace(" ", "_")
            path = os.path.join(args.csv_dir, f"{slug}.csv")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(experiment.csv() + "\n")
        print(f"\nCSV series written to {args.csv_dir}/")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
