"""Builders for the paper's four denial-constraint families (Section 7).

All builders return query objects over the Example 1 schema
(``TxOut(txId, ser, pk, amount)`` /
``TxIn(prevTxId, prevSer, pk, amount, newTxId, sig)``).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.query.ast import (
    AggregateQuery,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Variable,
)


def simple_constraint(address: str) -> ConjunctiveQuery:
    """``q_s() <- TxOut(ntx, s, X, a)``: the address received bitcoins."""
    return ConjunctiveQuery(
        [
            Atom(
                "TxOut",
                (Variable("ntx"), Variable("s"), Constant(address), Variable("a")),
            )
        ],
        name="q_s",
    )


def path_constraint(length: int, source: str, sink: str | None = None) -> ConjunctiveQuery:
    """``q_p^i``: a series of *length* transfers moves coins onward.

    Hop ``j`` contributes ``TxOut(ntx_j, s_j, pk_j, a_j)`` and
    ``TxIn(ntx_j, s_j, pk_j, a_j, ntx_{j+1}, sig_j)`` — output ``j`` is
    consumed by transaction ``j+1``.  The first output's owner is the
    constant *source*; when *sink* is given, the last consuming input's
    key is pinned to it (as ``Y`` in the paper's ``q_p3``).
    """
    if length < 1:
        raise ReproError("path length must be at least 1")
    atoms: list[Atom] = []
    for hop in range(1, length + 1):
        ntx = Variable(f"ntx{hop}")
        ser = Variable(f"s{hop}")
        amount = Variable(f"a{hop}")
        pk: Constant | Variable
        if hop == 1:
            pk = Constant(source)
        elif hop == length and sink is not None:
            pk = Constant(sink)
        else:
            pk = Variable(f"pk{hop}")
        atoms.append(Atom("TxOut", (ntx, ser, pk, amount)))
        atoms.append(
            Atom(
                "TxIn",
                (ntx, ser, pk, amount, Variable(f"ntx{hop + 1}"), Variable(f"sig{hop}")),
            )
        )
    return ConjunctiveQuery(atoms, name=f"q_p{length}")


def star_constraint(fan_out: int, source: str) -> ConjunctiveQuery:
    """``q_r^i``: *source* transferred coins in *fan_out* distinct
    transactions (pairwise different ``newTxId``)."""
    if fan_out < 1:
        raise ReproError("star fan-out must be at least 1")
    atoms: list[Atom] = []
    comparisons: list[Comparison] = []
    for arm in range(1, fan_out + 1):
        ntx = Variable(f"ntx{arm}")
        atoms.append(
            Atom(
                "TxIn",
                (
                    Variable(f"pntx{arm}"),
                    Variable(f"ps{arm}"),
                    Constant(source),
                    Variable(f"a{arm}"),
                    ntx,
                    Variable(f"sig{arm}"),
                ),
            )
        )
        atoms.append(
            Atom(
                "TxOut",
                (ntx, Variable(f"os{arm}"), Variable(f"opk{arm}"), Variable(f"oa{arm}")),
            )
        )
    for i in range(1, fan_out + 1):
        for j in range(i + 1, fan_out + 1):
            comparisons.append(
                Comparison(Variable(f"ntx{i}"), "!=", Variable(f"ntx{j}"))
            )
    return ConjunctiveQuery(atoms, comparisons, name=f"q_r{fan_out}")


def aggregate_constraint(address: str, threshold: int) -> AggregateQuery:
    """``q_a^n``: *address* received more than *threshold* in total
    (``[q(sum(a)) <- TxOut(ntx, s, X, a)] >= n``)."""
    return AggregateQuery(
        "sum",
        (Variable("a"),),
        [
            Atom(
                "TxOut",
                (Variable("ntx"), Variable("s"), Constant(address), Variable("a")),
            )
        ],
        ">=",
        threshold,
        name="q_a",
    )
