"""Data-driven constant selection for the experiment queries.

The paper instantiates the ``X``/``Y`` constants of its denial
constraints either so the underlying query is unsatisfiable (a
*satisfied* constraint — answered by the ``R ∪ T`` short-circuit) or
from real chains of transfers (an *unsatisfied* constraint — the solver
must exhibit a witness world).  :class:`ConstantPicker` mines a
generated :class:`~repro.bitcoin.generator.Dataset` for such constants,
preferring witnesses that *require pending transactions*, so the
interesting code path (clique enumeration over the fd-graph) is
exercised rather than the trivial current-state check.
"""

from __future__ import annotations

import hashlib

from repro.bitcoin.generator import Dataset
from repro.bitcoin.transactions import BitcoinTransaction
from repro.errors import ReproError


def fresh_address(salt: object = 0) -> str:
    """An address that cannot occur in any generated dataset."""
    return "addr_none_" + hashlib.sha256(str(salt).encode()).hexdigest()[:20]


class ConstantPicker:
    """Finds satisfying/unsatisfying constants in a generated dataset."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self._tx_index: dict[str, BitcoinTransaction] = {
            tx.txid: tx for tx in dataset.chain.transactions()
        }
        self._pending_ids = {tx.txid for tx in dataset.pending}
        for tx in dataset.pending:
            self._tx_index[tx.txid] = tx
        self._conflicted: set[str] = set()
        for a, b in dataset.contradiction_pairs:
            self._conflicted.add(a)
            self._conflicted.add(b)

    # ------------------------------------------------------------------
    # Helpers

    def _is_clean_pending(self, txid: str) -> bool:
        return txid in self._pending_ids and txid not in self._conflicted

    def _is_usable(self, txid: str) -> bool:
        """Committed, or pending without an injected contradiction."""
        if txid not in self._tx_index:
            return False
        if txid in self._pending_ids:
            return txid not in self._conflicted
        return True

    def _output_owner(self, txid: str, index: int) -> str:
        tx = self._tx_index[txid]
        return tx.outputs[index].script.owner

    # ------------------------------------------------------------------
    # Simple constraints

    def pending_recipient(self) -> str:
        """An address that receives coins only in pending transactions
        (unsatisfied ``q_s``: the witness world needs a pending tx)."""
        committed_owners = {
            output.script.owner
            for tx in self.dataset.chain.transactions()
            for output in tx.outputs
        }
        for tx in self.dataset.pending:
            if not self._is_clean_pending(tx.txid):
                continue
            for output in tx.outputs:
                owner = output.script.owner
                if owner not in committed_owners:
                    return owner
        raise ReproError("no pending-only recipient found in the dataset")

    # ------------------------------------------------------------------
    # Path constraints

    def path_endpoints(self, length: int) -> tuple[str, str]:
        """``(source, sink)`` constants making ``q_p^length`` unsatisfied.

        Walks a real spend chain of ``length + 1`` transactions ending in
        a clean pending transaction, so the witness world must include
        pending transactions.  Raises when the dataset holds no chain of
        the requested length.
        """
        late_keys = {w.public_key for w in self.dataset.late_wallets}

        def tails():
            # Prefer chains whose last hop is paid by a late joiner: its
            # key never appears in a committed TxIn row, so the current
            # state alone cannot satisfy the query.
            for tx in self.dataset.pending:
                creator = self.dataset.creators.get(tx.txid)
                if creator is not None and creator.public_key in late_keys:
                    yield tx
            yield from self.dataset.pending

        for tail in tails():
            if not self._is_clean_pending(tail.txid) or not tail.inputs:
                continue
            chain = self._walk_back(tail, length)
            if chain is None:
                continue
            # chain = [t_1, ..., t_{length+1}]; hop j spends t_j's output.
            source = self._consumed_owner(chain[1])
            sink = self._consumed_owner(chain[length])
            return source, sink
        raise ReproError(
            f"dataset {self.dataset.spec.name!r} contains no clean spend "
            f"chain of length {length}"
        )

    def _walk_back(
        self, tail: BitcoinTransaction, length: int
    ) -> list[BitcoinTransaction] | None:
        chain = [tail]
        current = tail
        for _ in range(length):
            if not current.inputs:
                return None
            prev_id = current.inputs[0].outpoint.txid
            if not self._is_usable(prev_id):
                return None
            current = self._tx_index[prev_id]
            chain.append(current)
        chain.reverse()
        return chain

    def _consumed_owner(self, tx: BitcoinTransaction) -> str:
        outpoint = tx.inputs[0].outpoint
        return self._output_owner(outpoint.txid, outpoint.index)

    # ------------------------------------------------------------------
    # Star constraints

    def star_source(self, fan_out: int) -> str:
        """A public key with ``fan_out`` outgoing transfers reachable in
        one world, at least one of them pending (unsatisfied ``q_r``)."""
        committed_out: dict[str, set[str]] = {}
        for tx in self.dataset.chain.transactions():
            for tx_input in tx.inputs:
                owner = self._output_owner(
                    tx_input.outpoint.txid, tx_input.outpoint.index
                )
                committed_out.setdefault(owner, set()).add(tx.txid)
        pending_out: dict[str, set[str]] = {}
        for tx in self.dataset.pending:
            if not self._is_clean_pending(tx.txid):
                continue
            for tx_input in tx.inputs:
                owner = self._output_owner(
                    tx_input.outpoint.txid, tx_input.outpoint.index
                )
                pending_out.setdefault(owner, set()).add(tx.txid)
        # Prefer sources whose outgoing transfers are *all* pending (late
        # joiners): the witness world then genuinely needs the mempool.
        best: tuple[int, int, str] | None = None
        for owner, pending_ids in pending_out.items():
            committed = len(committed_out.get(owner, ()))
            total = committed + len(pending_ids)
            if total >= fan_out and committed < fan_out:
                score = (-committed, len(pending_ids), owner)
                if best is None or score > best:
                    best = score
        if best is None:
            raise ReproError(
                f"no address reaches fan-out {fan_out} with pending help"
            )
        return best[2]

    # ------------------------------------------------------------------
    # Aggregate constraints

    def aggregate_target(self) -> tuple[str, int]:
        """``(address, threshold)`` making ``q_a`` unsatisfied: the
        address can cross the threshold only with pending receipts."""
        committed_sum: dict[str, int] = {}
        for tx in self.dataset.chain.transactions():
            for output in tx.outputs:
                owner = output.script.owner
                committed_sum[owner] = committed_sum.get(owner, 0) + output.value
        best: tuple[int, str, int] | None = None
        for tx in self.dataset.pending:
            if not self._is_clean_pending(tx.txid):
                continue
            for output in tx.outputs:
                owner = output.script.owner
                base = committed_sum.get(owner, 0)
                threshold = base + output.value
                candidate = (output.value, owner, threshold)
                if best is None or candidate > best:
                    best = candidate
        if best is None:
            raise ReproError("dataset has no clean pending receipts")
        return best[1], best[2]
