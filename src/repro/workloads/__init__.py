"""Experiment workloads: the paper's query families and datasets.

Section 7 evaluates four denial-constraint shapes over Bitcoin data:

* ``q_s`` — *simple*: some address received bitcoins;
* ``q_p^i`` — *path*: a chain of ``i`` transfers exists;
* ``q_r^i`` — *star*: an address transferred to ``i`` different
  transactions;
* ``q_a^n`` — *aggregate*: an address received more than ``n`` in total.

Constants are instantiated either so the underlying query cannot hold in
any world (*satisfied* denial constraints — the fast path) or from
actual dataset chains (*unsatisfied* — the algorithms must find a
witness world).
"""

from repro.workloads.queries import (
    aggregate_constraint,
    path_constraint,
    simple_constraint,
    star_constraint,
)
from repro.workloads.constants import (
    ConstantPicker,
    fresh_address,
)
from repro.workloads.experiments import Experiment, ExperimentSuite
from repro.workloads.report import render_markdown

__all__ = [
    "simple_constraint",
    "path_constraint",
    "star_constraint",
    "aggregate_constraint",
    "ConstantPicker",
    "fresh_address",
    "Experiment",
    "ExperimentSuite",
    "render_markdown",
]
