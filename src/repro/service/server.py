"""An asyncio JSON-lines TCP server around a :class:`ConstraintMonitor`.

Architecture (one process)::

    clients ──► asyncio event loop ──► bounded queue ──► solver thread
               (reads, deadlines,      (backpressure)    (monitor ops,
                metrics, rejects)                         one at a time)

The monitor — and the checker, graphs and workspace below it — is
single-threaded by design, so every state-touching operation is
serialized through one solver thread; the event loop itself never
blocks, which keeps deadline enforcement, metrics scrapes and
backpressure rejections responsive while a heavy check runs.  When the
monitor sits on a :class:`~repro.service.pool.PooledDCSatChecker`, the
solver thread becomes a lightweight coordinator and the real clique
work fans out across the worker processes.

Flow control:

* **Backpressure** — the solve queue is bounded (``queue_limit``).
  When it is full, the request is rejected immediately with code
  ``busy`` and a ``retry_after`` hint instead of queueing unboundedly.
* **Deadlines** — every request carries (or inherits) a deadline; if
  the verdict is not ready in time the client gets code ``deadline``.
  The underlying operation still completes in the solver thread —
  mutations are never half-applied — only the response is abandoned.
* **Graceful shutdown** — on SIGINT/SIGTERM (or the ``shutdown`` op)
  the server stops accepting connections, rejects new work with code
  ``shutting-down``, drains queued and in-flight operations for up to
  ``drain_timeout`` seconds, then closes.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.core.monitor import ConstraintMonitor
from repro.errors import ReproError, ServiceError
from repro.obs.http import ObservabilityEndpoint
from repro.obs.log import get_logger
from repro.obs.perf import build_info, default_cost_model
from repro.obs.trace import Span, Tracer, default_tracer
from repro.service import protocol
from repro.service.metrics import MetricsRegistry, default_registry
from repro.service.shard import ShardedMonitor

log = get_logger("service.server")

DEFAULT_QUEUE_LIMIT = 64
DEFAULT_DEADLINE = 30.0
DEFAULT_DRAIN_TIMEOUT = 10.0


# The service accepts anything monitor-shaped: a single
# ConstraintMonitor (one checker) or a ShardedMonitor (one per shard).
# These helpers bridge the two surfaces.


def _monitor_checkers(monitor) -> list:
    checkers = getattr(monitor, "checkers", None)
    if callable(checkers):
        return list(checkers())
    return [monitor.checker]


def _monitor_pending_count(monitor) -> int:
    pending_count = getattr(monitor, "pending_count", None)
    if callable(pending_count):
        return pending_count()
    return len(monitor.checker.db.pending_ids)


def _monitor_epoch(monitor) -> int:
    epoch = getattr(monitor, "epoch", None)
    if epoch is not None:
        return epoch
    return getattr(getattr(monitor, "checker", None), "epoch", 0)


class ConstraintService:
    """The serving surface: monitor operations behind a TCP endpoint."""

    def __init__(
        self,
        monitor: ConstraintMonitor | ShardedMonitor,
        metrics: MetricsRegistry | None = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        default_deadline: float = DEFAULT_DEADLINE,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        retry_after: float = 0.05,
        before_op: Callable[[str, dict], None] | None = None,
        tracer: Tracer | None = None,
    ):
        self.monitor = monitor
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or default_tracer()
        self.queue_limit = queue_limit
        self.default_deadline = default_deadline
        self.drain_timeout = drain_timeout
        self.retry_after = retry_after
        #: Test/diagnostics hook, run in the solver thread before every
        #: queued operation (e.g. an injected delay).
        self.before_op = before_op
        #: Wall-clock service start, for ``/healthz`` uptime reporting.
        self._started_at = time.time()

        self._queue: asyncio.Queue | None = None
        self._solver = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solver"
        )
        self._stopping = False
        self._stop_requested: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self._http: ObservabilityEndpoint | None = None
        self.http_host: str | None = None
        self.http_port: int | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._inflight = 0

        m = self.metrics
        self._requests = {
            op: m.counter(
                "repro_requests_total", "Requests received, by operation.",
                labels={"op": op},
            )
            for op in protocol.QUEUED_OPS | protocol.IMMEDIATE_OPS
        }
        self._errors = m.counter(
            "repro_request_errors_total", "Requests answered with an error."
        )
        self._rejected = m.counter(
            "repro_rejected_busy_total",
            "Requests rejected by backpressure (queue full).",
        )
        self._deadline_timeouts = m.counter(
            "repro_deadline_timeouts_total",
            "Requests whose deadline elapsed before the verdict.",
        )
        self._subsumption_answers = m.counter(
            "repro_monitor_subsumption_answers_total",
            "Status verdicts answered for free via denial subsumption.",
        )
        self._queue_depth = m.gauge(
            "repro_queue_depth", "Operations waiting in the solve queue."
        )
        self._inflight_gauge = m.gauge(
            "repro_inflight", "Operations executing in the solver thread."
        )
        self._queue_wait = m.histogram(
            "repro_queue_wait_seconds",
            "Time between enqueue and solver-thread pickup.",
        )
        self._solve_time = m.histogram(
            "repro_solve_seconds",
            "Time spent executing an operation in the solver thread.",
        )

    # ------------------------------------------------------------------
    # Monitor operations (executed in the solver thread)

    def _run_op(self, op: str, args: dict) -> dict:
        if self.before_op is not None:
            self.before_op(op, args)
        monitor = self.monitor
        if op == "register":
            entry = monitor.register(
                args["name"], args["query"], **args.get("check_kwargs", {})
            )
            return {
                "registered": entry.name,
                "relations": sorted(entry.relations),
            }
        if op == "unregister":
            monitor.unregister(args["name"])
            # The labelled latency series dies with the constraint, or a
            # register/unregister churn workload grows the exposition
            # (and every scrape) without bound.
            self.metrics.remove_series(
                "repro_constraint_check_seconds",
                {"constraint": args["name"]},
            )
            return {"unregistered": args["name"]}
        if op == "issue":
            tx = protocol.transaction_from_wire(args["tx"])
            return {
                "tx_id": tx.tx_id,
                "invalidated": monitor.issue(tx),
                "dirty_components": dict(
                    getattr(monitor, "last_dirty_components", {})
                ),
            }
        if op == "commit":
            return {
                "tx_id": args["tx_id"],
                "invalidated": monitor.commit(args["tx_id"]),
                "dirty_components": dict(
                    getattr(monitor, "last_dirty_components", {})
                ),
            }
        if op == "forget":
            return {
                "tx_id": args["tx_id"],
                "invalidated": monitor.forget(args["tx_id"]),
                "dirty_components": dict(
                    getattr(monitor, "last_dirty_components", {})
                ),
            }
        if op == "absorb":
            tx = protocol.transaction_from_wire(args["tx"])
            return {
                "tx_id": tx.tx_id,
                "invalidated": monitor.absorb(tx),
                "dirty_components": dict(
                    getattr(monitor, "last_dirty_components", {})
                ),
            }
        if op == "status":
            name = args["name"]
            entry = monitor.entry(name)
            cached = entry.result is not None
            started = time.perf_counter()
            result = monitor.status(
                name, use_subsumption=args.get("use_subsumption", True)
            )
            return self._record_status(name, cached, started, result)
        if op == "status_all":
            verdicts = monitor.status_all(batch=args.get("batch", True))
            return {
                name: protocol.result_to_wire(result)
                for name, result in verdicts.items()
            }
        if op == "violated":
            return {
                name: protocol.result_to_wire(result)
                for name, result in monitor.violated().items()
            }
        if op == "rebalance":
            rebalance = getattr(monitor, "rebalance", None)
            if not callable(rebalance):
                raise ServiceError(
                    "rebalance needs a fabric router monitor", code="bad-request"
                )
            return rebalance()
        raise ServiceError(f"unknown operation {op!r}", code="bad-request")

    def _record_status(
        self, name: str, cached: bool, started: float, result
    ) -> dict:
        """Shared status bookkeeping: the per-constraint latency sample
        (with the request's trace id as its exemplar, so ``/metrics``
        links straight into ``/tracez``), the subsumption counter, and
        the wire payload."""
        elapsed = time.perf_counter() - started
        self.metrics.histogram(
            "repro_constraint_check_seconds",
            "Time to answer a status request, by constraint.",
            labels={"constraint": name},
        ).observe(elapsed, exemplar=self.tracer.current_trace_id())
        current = self.tracer.current()
        if current is not None:
            current.set(check_seconds=round(elapsed, 6))
        if not cached and result.stats.algorithm.startswith("subsumed-by:"):
            self._subsumption_answers.inc()
        payload = protocol.result_to_wire(result)
        payload["cached"] = cached
        return payload

    def _async_status_capable(self) -> bool:
        """True when status solves can run natively on the event loop.

        Requires a monitor that exposes :meth:`status_async` *and*
        checkers whose evaluation engines are coroutine-native
        (``engine.is_async``) — otherwise the "async" path would just
        block the loop exactly where the solver thread would not.
        """
        if not callable(getattr(self.monitor, "status_async", None)):
            return False
        checkers = _monitor_checkers(self.monitor)
        return bool(checkers) and all(
            getattr(getattr(checker, "engine", None), "is_async", False)
            for checker in checkers
        )

    async def _run_status_async(self, args: dict) -> dict:
        """The ``status`` operation awaited on the event loop."""
        if self.before_op is not None:
            self.before_op("status", args)
        name = args["name"]
        entry = self.monitor.entry(name)
        cached = entry.result is not None
        started = time.perf_counter()
        result = await self.monitor.status_async(
            name, use_subsumption=args.get("use_subsumption", True)
        )
        return self._record_status(name, cached, started, result)

    async def _traced_status_async(self, root: Span | None, args: dict) -> dict:
        if root is None:
            return await self._run_status_async(args)
        try:
            with self.tracer.use(root):
                with self.tracer.span("solve", op="status", mode="async"):
                    return await self._run_status_async(args)
        finally:
            self.tracer.finish(root)

    def _traced_run_op(self, root: Span | None, op: str, args: dict) -> dict:
        """Run one queued operation in the solver thread, under its
        request trace.  The root is finished *here*, before the response
        future resolves, so the trace is already in ``/tracez`` when the
        client reads its trace id off the wire."""
        if root is None:
            return self._run_op(op, args)
        try:
            with self.tracer.use(root):
                with self.tracer.span("solve", op=op):
                    return self._run_op(op, args)
        finally:
            self.tracer.finish(root)

    # ------------------------------------------------------------------
    # Immediate operations (answered on the event loop)

    def _refresh_monitor_gauges(self) -> None:
        entries = [self.monitor.entry(name) for name in self.monitor.names]
        m = self.metrics
        m.gauge(
            "repro_registered_constraints", "Registered denial constraints."
        ).set(len(entries))
        m.gauge(
            "repro_cached_verdicts", "Constraints with a cached verdict."
        ).set(sum(1 for e in entries if e.result is not None))
        m.gauge(
            "repro_monitor_checks_run", "Solver checks run across entries."
        ).set(sum(e.checks_run for e in entries))
        m.gauge(
            "repro_monitor_cache_hits", "Verdicts served from cache."
        ).set(sum(e.cache_hits for e in entries))
        m.gauge(
            "repro_pending_transactions", "Pending transactions in the db."
        ).set(_monitor_pending_count(self.monitor))
        ledger_stats = getattr(self.monitor, "ledger_stats", None)
        if callable(ledger_stats):
            snapshot = ledger_stats()
            m.gauge(
                "repro_ledger_entries",
                "Component sub-verdicts held in the verdict ledger.",
            ).set(snapshot.get("entries", 0))
            for key, value in (snapshot.get("counters") or {}).items():
                m.gauge(
                    "repro_ledger_events",
                    "Verdict-ledger lifecycle counters, by event.",
                    labels={"event": key},
                ).set(value)
        export_gauges = getattr(self.monitor, "export_gauges", None)
        if callable(export_gauges):
            export_gauges(m)

    def _immediate(self, op: str, args: dict) -> dict:
        if op == "ping":
            return {
                "pong": True,
                "epoch": _monitor_epoch(self.monitor),
                "stopping": self._stopping,
            }
        if op == "metrics":
            return {"text": self._metrics_text()}
        if op == "constraints":
            return {
                name: {
                    "query": str(self.monitor.entry(name).query),
                    "cached": self.monitor.entry(name).result is not None,
                    "checks_run": self.monitor.entry(name).checks_run,
                    "cache_hits": self.monitor.entry(name).cache_hits,
                }
                for name in self.monitor.names
            }
        if op == "shards":
            describe = getattr(self.monitor, "describe", None)
            if callable(describe):
                return describe()
            return {"sharded": False, "shards": 1}
        if op == "shutdown":
            self.request_stop()
            return {"stopping": True}
        raise ServiceError(f"unknown operation {op!r}", code="bad-request")

    # ------------------------------------------------------------------
    # Queue dispatcher

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            enqueued_at, op, args, future, root = await self._queue.get()
            self._queue_depth.set(self._queue.qsize())
            wait = time.perf_counter() - enqueued_at
            self._queue_wait.observe(wait)
            if root is not None:
                self.tracer.record_span("queue_wait", root, wait)
            self._inflight += 1
            self._inflight_gauge.set(self._inflight)
            started = time.perf_counter()
            try:
                if op == "status" and self._async_status_capable():
                    # Coroutine-native engines solve on the event loop
                    # itself; the dispatcher still awaits each verdict
                    # before pulling the next op, so the monitor stays
                    # effectively single-threaded.
                    result = await self._traced_status_async(root, args)
                else:
                    result = await loop.run_in_executor(
                        self._solver, self._traced_run_op, root, op, args
                    )
            except Exception as error:  # delivered to the waiting handler
                if not future.cancelled():
                    future.set_exception(error)
                else:  # pragma: no cover - abandoned request
                    pass
            else:
                if not future.cancelled():
                    future.set_result(result)
            finally:
                self._solve_time.observe(time.perf_counter() - started)
                self._inflight -= 1
                self._inflight_gauge.set(self._inflight)
                self._queue.task_done()

    # ------------------------------------------------------------------
    # Connection handling

    async def _respond(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(protocol.encode_line(payload))
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - peer vanished
            log.debug(
                "peer vanished before the response could be written",
                extra={"ctx": {"id": payload.get("id")}},
            )

    async def _handle_request(
        self, writer: asyncio.StreamWriter, payload: dict
    ) -> None:
        request_id = payload.get("id")
        op = payload.get("op")
        args = payload.get("args") or {}
        counter = self._requests.get(op)
        if counter is not None:
            counter.inc()
        trace_id: str | None = None
        try:
            if not isinstance(op, str) or not isinstance(args, dict):
                raise ServiceError(
                    'requests need a string "op" and an object "args"',
                    code="bad-request",
                )
            if op in protocol.IMMEDIATE_OPS:
                await self._respond(
                    writer, protocol.ok_response(request_id, self._immediate(op, args))
                )
                return
            if op not in protocol.QUEUED_OPS:
                raise ServiceError(f"unknown operation {op!r}", code="bad-request")
            if self._stopping:
                raise ServiceError(
                    "server is shutting down", code="shutting-down"
                )
            assert self._queue is not None
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            root = self.tracer.start_trace(
                "request", trace_id=payload.get("trace"), op=op
            )
            trace_id = root.trace_id
            try:
                self._queue.put_nowait(
                    (time.perf_counter(), op, args, future, root)
                )
            except asyncio.QueueFull:
                self._rejected.inc()
                self.tracer.finish(root.set(rejected="busy"))
                raise ServiceError(
                    f"solve queue full ({self.queue_limit} waiting)",
                    code="busy",
                    retry_after=self.retry_after,
                ) from None
            self._queue_depth.set(self._queue.qsize())
            deadline = payload.get("deadline", self.default_deadline)
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline
                )
            except asyncio.TimeoutError:
                self._deadline_timeouts.inc()
                # The operation still runs to completion in the solver
                # thread (mutations are never half-applied); retrieve its
                # eventual outcome so nothing warns about being unawaited.
                future.add_done_callback(self._log_abandoned_outcome)
                raise ServiceError(
                    f"deadline of {deadline}s elapsed before the verdict",
                    code="deadline",
                ) from None
            spans = None
            if payload.get("export_spans"):
                # The trace is already finished (the root closes before
                # the response future resolves), so it is in the ring.
                spans = self.tracer.wire_spans(trace_id)
            await self._respond(
                writer,
                protocol.ok_response(
                    request_id, result, trace=trace_id, spans=spans
                ),
            )
        except ServiceError as error:
            self._errors.inc()
            await self._respond(
                writer,
                protocol.error_response(
                    request_id, str(error), code=error.code,
                    retry_after=error.retry_after, trace=trace_id,
                ),
            )
        except ReproError as error:
            self._errors.inc()
            await self._respond(
                writer,
                protocol.error_response(request_id, str(error), trace=trace_id),
            )
        except (KeyError, TypeError) as error:
            # A structurally valid request missing (or mistyping) an
            # argument: answer, don't strand the client waiting.
            self._errors.inc()
            await self._respond(
                writer,
                protocol.error_response(
                    request_id,
                    f"missing or invalid argument: {error}",
                    code="bad-request",
                    trace=trace_id,
                ),
            )
        except Exception as error:
            self._errors.inc()
            log.warning(
                "request failed unexpectedly",
                extra={"ctx": {"op": op, "error": str(error)}},
                exc_info=True,
            )
            await self._respond(
                writer,
                protocol.error_response(
                    request_id, f"internal error: {error}", code="internal",
                    trace=trace_id,
                ),
            )

    @staticmethod
    def _log_abandoned_outcome(future: asyncio.Future) -> None:
        """A deadline elapsed but the operation kept running; record how
        it eventually ended instead of dropping the outcome silently."""
        if future.cancelled():
            return
        error = future.exception()
        if error is not None:
            log.warning(
                "operation abandoned at its deadline later failed",
                extra={"ctx": {"error": str(error)}},
            )
        else:
            log.debug("operation abandoned at its deadline later completed")

    @staticmethod
    async def _discard_oversized_line(
        reader: asyncio.StreamReader, overrun: asyncio.LimitOverrunError
    ) -> bool:
        """Resync after an oversized frame: consume through its newline.

        ``readuntil`` leaves the data buffered; ``overrun.consumed``
        bytes are known to precede the separator (or to be separator-free
        entirely), so they can be discarded without eating the next
        frame.  Returns False on EOF.
        """
        try:
            while True:
                try:
                    await reader.readuntil(b"\n")
                    return True
                except asyncio.LimitOverrunError as error:
                    await reader.readexactly(max(1, error.consumed))
        except (asyncio.IncompleteReadError, ConnectionError):
            return False

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as error:
                    line = error.partial  # EOF mid-line; process the tail
                except ConnectionError:
                    break
                except asyncio.LimitOverrunError as error:
                    # One oversized frame must not kill the connection:
                    # answer with a structured error, discard bytes up
                    # to the frame's newline, and keep serving.
                    self._errors.inc()
                    await self._respond(
                        writer,
                        protocol.error_response(
                            None,
                            f"request line exceeds "
                            f"{protocol.MAX_LINE_BYTES} bytes",
                            code="bad-request",
                        ),
                    )
                    if await self._discard_oversized_line(reader, error):
                        continue
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = protocol.decode_line(line)
                except ServiceError as error:
                    self._errors.inc()
                    await self._respond(
                        writer,
                        protocol.error_response(None, str(error), code=error.code),
                    )
                    continue
                # One task per request: a slow check must not stop this
                # connection from pipelining pings or further requests.
                task = asyncio.create_task(self._handle_request(writer, payload))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer vanished
                pass

    # ------------------------------------------------------------------
    # Observability endpoint providers

    def _metrics_text(self) -> str:
        self._refresh_monitor_gauges()
        text = self.metrics.render_text()
        shared = default_registry()
        if shared is not self.metrics:
            # Library-level series (the engines' per-engine world
            # counter) live in the process-wide registry; fold them into
            # the scrape after the server's own families.
            text += shared.render_text()
        return text

    def _perfz(self) -> tuple[int, dict]:
        """``GET /perfz``: the perf telemetry plane in one payload —
        the component cost model driving the pool's group planning,
        quantile summaries of every latency histogram (service-local
        and process-wide), and the serving build for correlation with
        committed bench artifacts."""
        summaries = self.metrics.histogram_summaries()
        shared = default_registry()
        if shared is not self.metrics:
            for name, rows in shared.histogram_summaries().items():
                summaries.setdefault(name, rows)
        payload = {
            "cost_model": default_cost_model().snapshot(),
            "histograms": summaries,
            "build": self._build_payload(),
        }
        ledger_stats = getattr(self.monitor, "ledger_stats", None)
        if callable(ledger_stats):
            # Reuse / revalidation counters for the incremental verdict
            # ledger (docs/INCREMENTAL.md) — the perf story of a churn
            # workload is the reused:swept ratio, not the raw latency.
            payload["ledger"] = ledger_stats()
        return 200, payload

    def _build_payload(self) -> dict:
        """Build identity + uptime: the correlation key between a scrape
        and the exact revision (and process) that served it."""
        payload = build_info()
        payload["uptime_seconds"] = round(time.time() - self._started_at, 3)
        return payload

    def _health(self) -> tuple[int, dict]:
        """Liveness payload for ``GET /healthz`` (503 while stopping)."""
        payload: dict = {
            "status": "stopping" if self._stopping else "ok",
            "build": self._build_payload(),
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_limit": self.queue_limit,
            "inflight": self._inflight,
            "epoch": _monitor_epoch(self.monitor),
            "pending_transactions": _monitor_pending_count(self.monitor),
            "constraints": len(self.monitor.names),
        }
        describe = getattr(self.monitor, "describe", None)
        if callable(describe):
            payload["shards"] = describe()
        pools = []
        for checker in _monitor_checkers(self.monitor):
            pool = getattr(checker, "pool", None)
            if pool is not None:
                pools.append(
                    {
                        "max_workers": pool.max_workers,
                        # The executor is lazy: None means idle (workers
                        # spawn on the next parallel check), not dead.
                        "workers_started": pool._executor is not None,
                    }
                )
        if pools:
            payload["pools"] = pools
        fleet_health = getattr(self.monitor, "fleet_health", None)
        if callable(fleet_health):
            fleet = fleet_health()
            payload["fleet"] = fleet
            if fleet.get("dead") or fleet.get("broken"):
                # A dead shard degrades the router: clients still get
                # answers (the next op revives it), but probes must see
                # the fleet is not whole — and which shards are down.
                # A circuit-broken shard is worse: the watchdog gave up
                # respawning it, so probes report it until an operator
                # intervenes (``reset_shard``) instead of masking a
                # crash loop behind endless restarts.
                payload["status"] = "degraded"
                payload["dead_shards"] = fleet.get("dead", [])
                if fleet.get("broken"):
                    payload["broken_shards"] = fleet["broken"]
                return 503, payload
        return (503 if self._stopping else 200), payload

    # ------------------------------------------------------------------
    # Lifecycle

    def request_stop(self) -> None:
        """Ask the server to shut down gracefully (signal-handler safe)."""
        if self._stop_requested is not None and not self._stop_requested.is_set():
            self._stop_requested.set()

    async def run(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: Callable[[str, int], None] | None = None,
        install_signal_handlers: bool = False,
        http_host: str = "127.0.0.1",
        http_port: int | None = None,
    ) -> None:
        """Serve until :meth:`request_stop`, then drain and exit.

        With *http_port* set (0 picks a free port), an
        :class:`~repro.obs.http.ObservabilityEndpoint` serves
        ``/metrics``, ``/healthz``, ``/tracez`` and ``/perfz``
        alongside the JSON protocol; its bound address lands in
        ``self.http_host`` / ``self.http_port`` before *ready* fires.
        """
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._stop_requested = asyncio.Event()
        self._stopping = False
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, host, port,
            limit=protocol.MAX_LINE_BYTES,
        )
        bound_host, bound_port = self._server.sockets[0].getsockname()[:2]
        self.host, self.port = bound_host, bound_port
        if http_port is not None:
            extra = {}
            if callable(getattr(self.monitor, "fleet_health", None)):
                # A fabric router in front: expose its topology, journal
                # depths and per-shard liveness as one scrapeable route.
                extra["/fabricz"] = lambda: (200, self.monitor.describe())
            self._http = ObservabilityEndpoint(
                metrics_text=self._metrics_text,
                health=self._health,
                tracer=self.tracer,
                extra=extra,
                perf=self._perfz,
            )
            self.http_host, self.http_port = await self._http.start(
                host=http_host, port=http_port
            )
            log.info(
                "observability endpoint listening",
                extra={
                    "ctx": {"host": self.http_host, "port": self.http_port}
                },
            )
        if install_signal_handlers:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    log.debug(
                        "could not install signal handler",
                        extra={"ctx": {"signal": signum}},
                    )
        if ready is not None:
            ready(bound_host, bound_port)
        try:
            await self._stop_requested.wait()
        finally:
            await self._shutdown()

    async def _shutdown(self) -> None:
        """Stop accepting work, drain in-flight checks, release resources."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain: let queued + in-flight operations finish (bounded).
        if self._queue is not None:
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=self.drain_timeout
                )
            except asyncio.TimeoutError:  # pragma: no cover - stuck solver
                log.warning(
                    "drain timeout elapsed with operations still queued",
                    extra={
                        "ctx": {
                            "timeout": self.drain_timeout,
                            "queued": self._queue.qsize(),
                            "inflight": self._inflight,
                        }
                    },
                )
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        # Let the drained operations' response tasks flush their writes
        # before the sockets go away.
        if self._request_tasks:
            await asyncio.wait(set(self._request_tasks), timeout=self.drain_timeout)
        for writer in list(self._writers):
            writer.close()
        if self._http is not None:
            await self._http.stop()
            self._http = None
        self._solver.shutdown(wait=True)
        for checker in _monitor_checkers(self.monitor):
            pool = getattr(checker, "pool", None)
            if pool is not None:
                pool.shutdown()


class ServiceHandle:
    """A service running on a background thread (tests, embedding)."""

    def __init__(self, service: ConstraintService, host: str, port: int):
        self.service = service
        self.host = host
        self.port = port
        self.http_host: str | None = None
        self.http_port: int | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    def stop(self, join_timeout: float = 30.0) -> None:
        """Request shutdown and wait for the serving thread; idempotent."""
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self.service.request_stop)
            except RuntimeError:  # loop closed between the check and the call
                pass
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    service: ConstraintService,
    host: str = "127.0.0.1",
    port: int = 0,
    http_host: str = "127.0.0.1",
    http_port: int | None = None,
) -> ServiceHandle:
    """Run *service* on a daemon thread; returns once it is accepting.

    With *http_port* set, the observability endpoint's bound address is
    available as ``handle.http_host`` / ``handle.http_port``.
    """
    ready = threading.Event()
    bound: dict = {}

    def on_ready(bound_host: str, bound_port: int) -> None:
        bound["host"], bound["port"] = bound_host, bound_port
        ready.set()

    handle = ServiceHandle(service, "", 0)

    def target() -> None:
        loop = asyncio.new_event_loop()
        handle._loop = loop
        try:
            loop.run_until_complete(
                service.run(
                    host, port, ready=on_ready,
                    http_host=http_host, http_port=http_port,
                )
            )
        finally:
            try:
                leftovers = asyncio.all_tasks(loop)
                for task in leftovers:
                    task.cancel()
                if leftovers:
                    loop.run_until_complete(
                        asyncio.gather(*leftovers, return_exceptions=True)
                    )
            finally:
                loop.close()
                ready.set()  # unblock the caller on startup failure

    thread = threading.Thread(target=target, name="repro-service", daemon=True)
    handle._thread = thread
    thread.start()
    if not ready.wait(timeout=30.0) or "port" not in bound:
        raise ServiceError("service failed to start")
    handle.host, handle.port = bound["host"], bound["port"]
    handle.http_host, handle.http_port = service.http_host, service.http_port
    return handle
