"""In-process metrics for the constraint-checking service.

A small, dependency-free registry in the spirit of the Prometheus
client: counters, gauges and latency histograms, each optionally
labelled, rendered to the Prometheus text exposition format by
:meth:`MetricsRegistry.render_text`.  The server feeds it request
counts, queue-wait and solve-time latencies, and cache / subsumption
hit counters scraped from the monitor's
:class:`~repro.core.monitor.MonitorEntry` records.

Thread-safety: every mutation takes the registry lock, because samples
arrive both from the asyncio event loop and from the solver thread.

Histogram observations can carry an *exemplar* — the trace id of the
request that produced the sample — linking the aggregate back to a
concrete ``/tracez`` trace.  The render emits them as ``# EXEMPLAR``
comment lines next to their series (the classic text format has no
native exemplar syntax; comments survive every scraper).

:func:`default_registry` is the process-wide registry that library
layers (e.g. the evaluation engines' ``repro_worlds_evaluated_total``)
feed without needing a service handle; the server folds it into its
``/metrics`` output.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Iterable, Mapping

#: Default latency buckets (seconds): tuned for solver calls that range
#: from sub-millisecond cache hits to multi-second clique sweeps.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text exposition format: inside a label
    value, ``\\`` -> ``\\\\``, ``"`` -> ``\\"`` and a line feed ->
    ``\\n``.  Constraint names are user-supplied and flow into labels,
    so unescaped values could corrupt the whole scrape."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing sample."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        # Under the lock: a bare attribute read could observe a torn /
        # stale value relative to a concurrent scrape on CPython
        # implementations without a GIL-serialized float store.
        with self._lock:
            return self._value


class Gauge:
    """A sample that can go up and down."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket latency histogram (Prometheus semantics)."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket")
        self._counts = [0] * (len(self.bounds) + 1)  # +inf bucket last
        self._sum = 0.0
        self._count = 0
        self._exemplar: tuple[str, float, float] | None = None
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if exemplar:
                # Keep the latest linked trace: exemplars are entry
                # points for debugging, not a sample archive.
                self._exemplar = (exemplar, value, time.time())

    def exemplar(self) -> tuple[str, float, float] | None:
        """The last ``(trace_id, observed value, unix time)`` exemplar."""
        with self._lock:
            return self._exemplar

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> tuple[float, int]:
        """A consistent ``(sum, count)`` pair from one lock acquisition.

        Reading the two properties back to back can interleave with an
        ``observe`` and hand a scrape a torn pair (new sum, old count).
        """
        with self._lock:
            return self._sum, self._count

    def export(self) -> tuple[list[tuple[str, int]], float, int]:
        """Cumulative buckets plus ``(sum, count)``, all from a single
        lock acquisition, so one rendered series is self-consistent."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        out: list[tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((_format_value(bound), running))
        running += counts[-1]
        out.append(("+Inf", running))
        return out, total_sum, total_count

    def cumulative_buckets(self) -> list[tuple[str, int]]:
        """``(upper bound, cumulative count)`` pairs, ending with +Inf."""
        return self.export()[0]

    def quantile(self, q: float) -> float | None:
        """The *q*-quantile (``0 < q <= 1``) derived from bucket counts.

        Linear interpolation inside the containing bucket (Prometheus
        ``histogram_quantile`` semantics); samples in the +Inf bucket
        clamp to the highest finite bound.  ``None`` with no samples.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            previous = cumulative
            cumulative += counts[index]
            if cumulative >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                if counts[index] == 0:  # pragma: no cover - defensive
                    return bound
                return lower + (bound - lower) * (rank - previous) / counts[index]
        # The rank lands in the +Inf bucket: the honest answer is "at
        # least the top bound" — report the top finite bound.
        return self.bounds[-1]

    def quantiles(self, qs: Iterable[float] = (0.5, 0.95)) -> dict[str, float]:
        """``{"p50": ..., "p95": ...}``-style summaries; empty when no
        samples were observed."""
        out: dict[str, float] = {}
        for q in qs:
            value = self.quantile(q)
            if value is not None:
                out[f"p{round(q * 100)}"] = value
        return out


class MetricsRegistry:
    """Named metric series, each identified by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (type, help, {label string -> metric})
        self._families: dict[str, tuple[str, str, dict[str, object]]] = {}

    def _series(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Mapping[str, str] | None,
        factory,
    ):
        label_key = _format_labels(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, help_text, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family[0]}"
                )
            series = family[2].get(label_key)
            if series is None:
                series = factory()
                family[2][label_key] = series
            return series

    def counter(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._series("counter", name, help_text, labels, Counter)

    def gauge(
        self, name: str, help_text: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        return self._series("gauge", name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._series(
            "histogram", name, help_text, labels, lambda: Histogram(buckets)
        )

    def remove_series(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> bool:
        """Drop one labelled series from a family, if it exists.

        Long-lived servers label some series by constraint name
        (``repro_constraint_check_seconds{constraint=...}``); without
        removal, registering and unregistering constraints grows the
        exposition without bound.  Returns whether a series was removed;
        the family itself (type + help) stays, so re-registering the
        same name later starts a fresh series.
        """
        label_key = _format_labels(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return False
            return family[2].pop(label_key, None) is not None

    def value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float | None:
        """The current value of a counter or gauge series, or ``None``
        when the series was never created.  Reading never creates the
        series (unlike :meth:`counter` / :meth:`gauge`), so probes —
        the fabric router's revive counters, tests — can ask without
        polluting the exposition."""
        label_key = _format_labels(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            series = family[2].get(label_key)
        if isinstance(series, (Counter, Gauge)):
            return series.value
        return None

    def histogram_summaries(self) -> dict[str, dict[str, dict]]:
        """Quantile summaries for every histogram family.

        ``{family name: {label string: {count, sum, p50, p95}}}`` — the
        ``/perfz`` view of the registry's latency distributions, derived
        from the bucket counts (mean-only summaries hide tail latency).
        """
        with self._lock:
            families = {
                name: dict(series)
                for name, (kind, _help, series) in self._families.items()
                if kind == "histogram"
            }
        out: dict[str, dict[str, dict]] = {}
        for name, series in sorted(families.items()):
            rows: dict[str, dict] = {}
            for label_key, metric in sorted(series.items()):
                if not isinstance(metric, Histogram):  # pragma: no cover
                    continue
                total_sum, total_count = metric.snapshot()
                if total_count == 0:
                    continue
                rows[label_key] = {
                    "count": total_count,
                    "sum": total_sum,
                    **metric.quantiles(),
                }
            if rows:
                out[name] = rows
        return out

    def render_text(self) -> str:
        """The Prometheus text exposition format (plain-text dump)."""
        lines: list[str] = []
        with self._lock:
            families = {
                name: (kind, help_text, dict(series))
                for name, (kind, help_text, series) in self._families.items()
            }
        for name in sorted(families):
            kind, help_text, series = families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for label_key in sorted(series):
                metric = series[label_key]
                if isinstance(metric, Histogram):
                    base = label_key[1:-1] if label_key else ""
                    buckets, total_sum, total_count = metric.export()
                    for bound, cumulative in buckets:
                        inner = (base + "," if base else "") + f'le="{bound}"'
                        lines.append(
                            f"{name}_bucket{{{inner}}} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{label_key} {_format_value(total_sum)}"
                    )
                    lines.append(f"{name}_count{label_key} {total_count}")
                    exemplar = metric.exemplar()
                    if exemplar is not None:
                        trace_id, value, unix_time = exemplar
                        lines.append(
                            f"# EXEMPLAR {name}{label_key} "
                            f'trace_id="{_escape_label_value(trace_id)}" '
                            f"value={_format_value(value)} "
                            f"timestamp={unix_time:.3f}"
                        )
                else:
                    lines.append(
                        f"{name}{label_key} {_format_value(metric.value)}"
                    )
        return "\n".join(lines) + "\n"


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry for library-level metrics.

    Layers below the service (the evaluation engines, the pool) record
    here; the server appends its render to every ``/metrics`` scrape.
    Distinct from any registry the caller wires into
    :class:`~repro.service.server.ConstraintService` so tests can keep
    isolated registries.
    """
    return _DEFAULT_REGISTRY
