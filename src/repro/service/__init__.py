"""repro.service — the long-running concurrent checking service.

Turns the library into a serving system (the standing-monitor
deployment of *Database Perspectives on Blockchains*):

* :mod:`~repro.service.pool` — a process pool that fans OptDCSat's
  per-component clique checks and batch query groups out across
  workers, with op-log snapshot sync and an any-violation early-cancel
  path; :class:`PooledDCSatChecker` is the drop-in parallel checker.
* :mod:`~repro.service.shard` — :class:`ShardedMonitor`, which
  partitions registered constraints by coupled relation footprint
  across N monitors (each with its own checker / pool) and routes
  state changes only to the shards they can affect.
* :mod:`~repro.service.server` — an asyncio JSON-lines TCP server
  wrapping a :class:`~repro.core.monitor.ConstraintMonitor`, with
  per-request deadlines, bounded-queue backpressure and graceful
  drain-on-shutdown.
* :mod:`~repro.service.client` — the matching blocking client.
* :mod:`~repro.service.metrics` — in-process counters, gauges and
  latency histograms with a Prometheus-style plain-text dump.
* :mod:`~repro.service.protocol` — the wire format shared by both ends
  (see ``docs/SERVICE.md``).

Run it from the command line with ``repro serve``.
"""

from repro.service.client import ServiceClient
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.pool import PooledDCSatChecker, SolverPool, default_pool_size
from repro.service.server import ConstraintService, ServiceHandle, serve_in_thread
from repro.service.shard import ShardedMonitor

__all__ = [
    "ServiceClient",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PooledDCSatChecker",
    "SolverPool",
    "default_pool_size",
    "ConstraintService",
    "ServiceHandle",
    "serve_in_thread",
    "ShardedMonitor",
]
