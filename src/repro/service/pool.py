"""A parallel per-component solver pool for OptDCSat and batch checks.

OptDCSat's work splits into independent connected components of the
ind-q-transaction graph (Proposition 2), and a batch of monotone
constraints splits into independent query groups — both embarrassingly
parallel.  :class:`SolverPool` fans those units out across a
``concurrent.futures`` process pool:

* **Worker snapshots.**  Each worker process is initialized once with a
  serialized snapshot of the blockchain database and rebuilds its own
  :class:`~repro.core.workspace.Workspace` + fd-transaction graph.
  Steady-state changes (issue / commit / forget / absorb) are recorded
  in an op log; every task carries the log tail, and workers replay the
  ops they have not seen before solving.  When the log outgrows
  ``resync_ops``, the pool *compacts*: it re-snapshots the database
  into the sync payload and resets the log, and each warm worker
  rebuilds its context from the fresh snapshot on its next task — no
  executor teardown, so long-lived services never replay unbounded
  logs and never pay worker re-fork latency.

* **Cost-aware group planning.**  Components are packed into at most
  ``max_workers`` groups before dispatch.  With a warm
  :class:`~repro.obs.perf.CostModel` (fed by every per-component solve
  this pool runs), grouping is greedy bin-packing on *predicted* cost —
  longest predicted component first, into the least-loaded group — so
  one giant component does not ride with several medium ones while
  another worker idles.  A cold model falls back to round-robin
  striping.  The decision (strategy, predicted and observed makespan
  imbalance) is recorded on the ``parallel_dispatch`` span and in the
  ``repro_pool_group_imbalance`` gauge.

* **Determinism.**  Groups hold ascending component indices and the
  verdict is taken from the *lowest-index* violating component across
  all groups, so ``satisfied`` / ``witness`` are identical to the
  sequential path regardless of how components were grouped (workers
  inherit the parent's hash seed under the default ``fork`` start
  method, keeping clique enumeration order aligned).

* **Early cancel.**  A worker stops inside its own group at the first
  violating component (everything after it in the group has a higher
  index); the coordinator additionally cancels every not-yet-started
  group whose lowest index exceeds the best witness index found so
  far.

:class:`PooledDCSatChecker` is a drop-in :class:`DCSatChecker` that
routes eligible checks through the pool, so a
:class:`~repro.core.monitor.ConstraintMonitor` (and the TCP server
above it) parallelizes without code changes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from repro import serialize
from repro.core.batch import batch_dcsat
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.bitset import make_fd_graph
from repro.core.engine import EvaluationEngine, make_engine, resolve_engine_name
from repro.core.fd_graph import FdTransactionGraph
from repro.core.opt import component_survivors, solve_component
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError, ServiceError
from repro.obs.log import get_logger
from repro.obs.perf import CostModel, default_cost_model
from repro.obs.trace import default_tracer
from repro.obs.trace import span as obs_span
from repro.query.analysis import is_connected, is_monotone
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.relational.transaction import Transaction
from repro.service.metrics import default_registry
from repro.storage import make_backend, resolve_backend_name

Query = ConjunctiveQuery | AggregateQuery

log = get_logger("service.pool")


def default_pool_size() -> int:
    """CPU count, capped at 8 — beyond that, snapshot fan-out dominates."""
    return max(1, min(8, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# Worker-process side.  One module-level context per worker, built by the
# initializer and advanced incrementally by the op log.

_WORKER_CTX: dict | None = None


def _transaction_to_wire(tx: Transaction) -> dict:
    return {
        "id": tx.tx_id,
        "facts": {
            rel: sorted([list(values) for values in tx.tuples(rel)])
            for rel in sorted(tx.relation_names)
        },
    }


def _transaction_from_wire(payload: dict) -> Transaction:
    return Transaction(
        {
            rel: [tuple(values) for values in rows]
            for rel, rows in payload["facts"].items()
        },
        tx_id=payload["id"],
    )


def _build_worker_ctx(
    db_payload: dict, backend_name: str, engine_name: str, base_epoch: int
) -> dict:
    db = serialize.database_from_dict(db_payload, validate=False)
    workspace = Workspace(db)
    # Planner resolves from REPRO_BITSET, which forked workers inherit —
    # the pool sweeps with the same planner as an inline checker would.
    fd_graph = make_fd_graph(None, workspace)
    backend = make_backend(backend_name)
    backend.attach(workspace)
    return {
        "workspace": workspace,
        "fd_graph": fd_graph,
        "backend": backend,
        "engine": make_engine(engine_name, backend),
        "backend_name": backend_name,
        "engine_name": engine_name,
        "epoch": base_epoch,
        "base_epoch": base_epoch,
    }


def _init_worker(
    db_payload: dict, backend_name: str, engine_name: str, base_epoch: int
) -> None:
    global _WORKER_CTX
    _WORKER_CTX = _build_worker_ctx(
        db_payload, backend_name, engine_name, base_epoch
    )


def _sync_worker(
    target_epoch: int,
    base_epoch: int,
    ops: tuple,
    snapshot: dict | None = None,
) -> dict:
    """Replay the op-log tail this worker has not seen yet.

    When the coordinator compacted its op log (``snapshot`` present and
    the worker's base predates it), the warm worker rebuilds its whole
    context from the shipped snapshot instead of erroring out.
    """
    global _WORKER_CTX
    ctx = _WORKER_CTX
    if ctx is None:
        raise ServiceError("solver worker used before initialization")
    if ctx["base_epoch"] != base_epoch and (
        snapshot is not None and ctx["base_epoch"] < base_epoch
    ):
        ctx["backend"].close()
        ctx = _WORKER_CTX = _build_worker_ctx(
            snapshot, ctx["backend_name"], ctx["engine_name"], base_epoch
        )
    if ctx["base_epoch"] != base_epoch or ctx["epoch"] > target_epoch:
        raise ServiceError(
            "solver worker snapshot diverged from the coordinator "
            f"(worker at {ctx['epoch']}/{ctx['base_epoch']}, "
            f"coordinator wants {target_epoch}/{base_epoch})"
        )
    workspace: Workspace = ctx["workspace"]
    fd_graph: FdTransactionGraph = ctx["fd_graph"]
    backend = ctx["backend"]
    for op, payload in ops[ctx["epoch"] - base_epoch : target_epoch - base_epoch]:
        if op == "issue":
            tx = _transaction_from_wire(payload)
            workspace.issue(tx)
            fd_graph.add_transaction(tx.tx_id)
            backend.on_issue(tx)
        elif op == "commit":
            tx = workspace.commit(payload)
            fd_graph.remove_transaction(payload)
            fd_graph.refresh_after_commit()
            backend.on_commit(tx)
        elif op == "forget":
            tx = workspace.forget(payload)
            fd_graph.remove_transaction(payload)
            backend.on_forget(tx)
        elif op == "absorb":
            tx = _transaction_from_wire(payload)
            for rel, values in tx:
                workspace.base.insert(rel, values)
            fd_graph.refresh_after_commit()
            backend.on_commit(tx)
        else:  # pragma: no cover - defensive
            raise ServiceError(f"unknown op-log entry {op!r}")
        ctx["epoch"] += 1
    return ctx


def _solve_component_group_task(
    sync: tuple[int, int, tuple, dict | None],
    query: Query,
    group: tuple[tuple[int, tuple[str, ...]], ...],
    pivot: bool,
) -> list[tuple[int, frozenset[str] | None, DCSatStats, list[dict]]]:
    """One planned group of per-component checks, run inside a worker.

    *group* holds ``(index, candidates)`` pairs in ascending index
    order.  Solving stops at the first violating component: everything
    after it in the group has a higher index, so it can never yield the
    deterministic (lowest-index) witness.  Each solved component
    returns its witness, its own work counters (timed individually, so
    the coordinator can feed the cost model per component), and the
    spans it produced — traced locally in this worker process and
    serialized so the coordinator can re-parent them under the
    submitting span.
    """
    ctx = _sync_worker(*sync)
    workspace: Workspace = ctx["workspace"]
    tracer = default_tracer()
    records: list[tuple[int, frozenset[str] | None, DCSatStats, list[dict]]] = []
    for index, candidates in group:
        stats = DCSatStats(
            algorithm="opt-pool",
            parallel_tasks=1,
            max_component_size=len(candidates),
        )
        root = tracer.start_trace(
            "solve_component", component=index, worker_pid=os.getpid()
        )
        started = time.perf_counter()
        try:
            with tracer.use(root):
                witness = solve_component(
                    workspace,
                    ctx["fd_graph"],
                    query,
                    set(candidates),
                    ctx["engine"],
                    pivot=pivot,
                    stats=stats,
                )
        finally:
            stats.elapsed_seconds = time.perf_counter() - started
            root.fold_stats(stats)
            captured = tracer.finish(root)
            workspace.clear_active()
        records.append((index, witness, stats, captured["spans"]))
        if witness is not None:
            break
    return records


def _solve_batch_task(
    sync: tuple[int, int, tuple, dict | None],
    queries: list[Query],
    pivot: bool,
    assume_nonnegative_sums: bool,
) -> tuple[list[DCSatResult], list[dict]]:
    """One batch query group (shared clique sweep), run inside a worker."""
    ctx = _sync_worker(*sync)
    workspace: Workspace = ctx["workspace"]
    tracer = default_tracer()
    root = tracer.start_trace(
        "batch_group", queries=len(queries), worker_pid=os.getpid()
    )
    try:
        with tracer.use(root):
            results = batch_dcsat(
                workspace,
                ctx["fd_graph"],
                queries,
                ctx["engine"],
                # The coordinator's flag, not a hard-coded True: the worker
                # must apply exactly the monotonicity assumptions the
                # coordinator validated with, or pooled verdicts could
                # diverge from the sequential path.
                assume_nonnegative_sums=assume_nonnegative_sums,
                short_circuit=False,  # coordinator already ran the fast paths
                pivot=pivot,
            )
    finally:
        captured = tracer.finish(root)
    for result in results:
        result.stats.algorithm = "batch-pool"
        result.stats.parallel_tasks = 1
    return results, captured["spans"]


# ----------------------------------------------------------------------
# Coordinator side.


def group_imbalance(loads: list[float]) -> float:
    """Makespan imbalance of per-group loads: ``(max - mean) / mean``.

    0.0 means perfectly balanced; 1.0 means the heaviest group carries
    twice the average — the workers assigned lighter groups idle for
    half the heaviest group's runtime.
    """
    if not loads:
        return 0.0
    mean = sum(loads) / len(loads)
    if mean <= 0.0:
        return 0.0
    return (max(loads) - mean) / mean


class SolverPool:
    """Fans per-component and per-group solver tasks across processes.

    The pool observes the checker's ``epoch`` counter; record state
    changes with :meth:`record_op` (done automatically by
    :class:`PooledDCSatChecker`) so worker snapshots can be advanced
    instead of rebuilt.

    *cost_model* (default: the process-wide
    :func:`~repro.obs.perf.default_cost_model`) learns per-component
    solve cost from every check this pool runs and, once warm, drives
    :meth:`plan_groups`' bin-packing.
    """

    def __init__(
        self,
        checker: DCSatChecker,
        max_workers: int | None = None,
        backend: str | None = None,
        engine: str | None = None,
        start_method: str | None = None,
        resync_ops: int = 256,
        min_components: int = 2,
        cost_model: CostModel | None = None,
    ):
        self.checker = checker
        self.max_workers = max_workers or default_pool_size()
        self._backend_name = resolve_backend_name(backend)
        self._engine_name = resolve_engine_name(engine)
        self.cost_model = (
            cost_model if cost_model is not None else default_cost_model()
        )
        self._planner_name = getattr(checker, "planner", "")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._start_method = start_method
        self.resync_ops = resync_ops
        self.min_components = min_components
        self._executor: ProcessPoolExecutor | None = None
        self._base_epoch = 0
        self._oplog: list[tuple[str, object]] = []
        #: Fresh snapshot shipped with the sync payload after a
        #: compaction, until workers can be assumed rebuilt from it
        #: (i.e. until the next executor restart clears it).
        self._snapshot: dict | None = None
        #: How many times the op log was compacted (observable, and the
        #: bounded-payload test's hook).
        self.compactions = 0

    # -- snapshot / op-log management ----------------------------------

    def record_op(self, op: str, payload: object) -> None:
        """Note a state change so workers can replay it lazily."""
        if self._executor is None:
            return  # next executor starts from a fresh snapshot anyway
        self._oplog.append((op, payload))
        if len(self._oplog) > self.resync_ops:
            self._compact()

    def _compact(self) -> None:
        """Reset the op log against a fresh database snapshot.

        Warm workers stay up: the snapshot rides along in each task's
        sync payload and a worker whose base epoch predates it rebuilds
        in place (see :func:`_sync_worker`).  This keeps the per-task
        sync payload bounded by ``resync_ops`` for the lifetime of the
        pool instead of growing with every recorded state change.
        """
        log.debug(
            "op log outgrew resync_ops; compacting into a fresh snapshot",
            extra={"ctx": {"ops": len(self._oplog), "limit": self.resync_ops}},
        )
        self._snapshot = serialize.database_to_dict(self.checker.db)
        self._base_epoch = self.checker.epoch
        self._oplog = []
        self.compactions += 1

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            payload = serialize.database_to_dict(self.checker.db)
            ctx = multiprocessing.get_context(self._start_method)
            self._base_epoch = self.checker.epoch
            self._oplog = []
            self._snapshot = None
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(
                    payload, self._backend_name, self._engine_name,
                    self._base_epoch,
                ),
            )
        return self._executor

    def _prepare(
        self,
    ) -> tuple[ProcessPoolExecutor, tuple[int, int, tuple, dict | None]]:
        """A live executor plus the sync args for the current epoch."""
        executor = self._ensure_executor()
        if self._base_epoch + len(self._oplog) != self.checker.epoch:
            # A state change bypassed record_op (e.g. direct checker use):
            # the op log cannot reproduce it, so fall back to re-snapshot.
            log.warning(
                "op log diverged from checker epoch; re-snapshotting workers",
                extra={
                    "ctx": {
                        "epoch": self.checker.epoch,
                        "base_epoch": self._base_epoch,
                        "logged_ops": len(self._oplog),
                    }
                },
            )
            self.shutdown()
            executor = self._ensure_executor()
        return executor, (
            self.checker.epoch, self._base_epoch, tuple(self._oplog),
            self._snapshot,
        )

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._oplog = []
        self._snapshot = None

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- parallel OptDCSat ---------------------------------------------

    def check(
        self,
        query: Query | str,
        short_circuit: bool = True,
        use_coverage: bool = True,
        pivot: bool = True,
        normalize: bool = True,
    ) -> DCSatResult:
        """Parallel OptDCSat: identical verdicts to the sequential path.

        Requires a monotone, connected query (the OptDCSat scope).
        """
        checker = self.checker
        query = checker._parse(query)
        stats = DCSatStats(algorithm="opt-pool")
        if normalize:
            from repro.query.rewriter import Verdict
            from repro.query.rewriter import normalize as normalize_query

            query, verdict = normalize_query(query)
            if verdict is Verdict.UNSATISFIABLE:
                stats.algorithm = "rewrite"
                return DCSatResult(satisfied=True, stats=stats)
        monotone = is_monotone(query, checker.assume_nonnegative_sums)
        if not monotone:
            raise AlgorithmError(
                "the solver pool runs OptDCSat, which is only sound for "
                f"monotone denial constraints; {query!s} is not"
            )
        if not is_connected(query):
            raise AlgorithmError(
                "OptDCSat requires a connected conjunctive query; "
                f"{query!s} is not connected"
            )
        started = time.perf_counter()
        with obs_span("dcsat.check", requested="opt-pool") as sp:
            try:
                decided = checker.fast_paths(query, monotone, short_circuit, stats)
                if decided is not None:
                    return decided
                survivors = component_survivors(
                    checker.workspace,
                    checker.fd_graph,
                    checker.ind_graph,
                    query,
                    use_coverage=use_coverage,
                    stats=stats,
                )
                if (
                    len(survivors) < max(2, self.min_components)
                    or self.max_workers <= 1
                ):
                    return self._solve_sequential(query, survivors, pivot, stats)
                return self._solve_parallel(query, survivors, pivot, stats)
            finally:
                checker.workspace.clear_active()
                if stats.elapsed_seconds == 0.0:
                    stats.elapsed_seconds = time.perf_counter() - started
                sp.fold_stats(stats)

    def _observe_component(
        self, seconds: float, size: int, cliques: int = 0,
        mode: str = "sweep",
    ) -> None:
        """Feed one per-component timing into the shared cost model."""
        self.cost_model.observe(
            seconds,
            size,
            engine=self._engine_name,
            planner=self._planner_name,
            cliques=cliques,
            mode=mode,
        )

    def plan_groups(
        self,
        survivors: list[set[str]],
        strategy: str | None = None,
    ) -> tuple[list[list[int]], str, list[float]]:
        """Partition component indices into at most ``max_workers`` groups.

        Returns ``(groups, strategy, predicted_loads)``.  Each group is
        an ascending list of indices into *survivors*; ``strategy`` is
        ``"cost"`` (greedy bin-packing on the cost model's predictions,
        longest-predicted-first into the least-loaded group) or
        ``"round-robin"`` (index striping — the fallback while the
        model is cold or has no usable prediction).  ``predicted_loads``
        carries the per-group predicted seconds under ``"cost"`` and is
        all zeros under ``"round-robin"``.

        *strategy* forces a specific planner (benchmark comparisons);
        by default the model picks: warm → cost, cold → round-robin.
        """
        count = max(1, min(self.max_workers, len(survivors)))
        groups: list[list[int]] = [[] for _ in range(count)]
        loads = [0.0] * count
        if strategy is None:
            strategy = "cost" if self.cost_model.warm else "round-robin"
        if strategy == "cost":
            predictions = [
                self.cost_model.predict(
                    len(candidates),
                    engine=self._engine_name,
                    planner=self._planner_name,
                )
                for candidates in survivors
            ]
            if any(prediction is None for prediction in predictions):
                strategy = "round-robin"
            else:
                order = sorted(
                    range(len(survivors)),
                    key=lambda i: (-predictions[i], i),
                )
                for index in order:
                    target = min(range(count), key=lambda g: (loads[g], g))
                    groups[target].append(index)
                    loads[target] += predictions[index]
        if strategy == "round-robin":
            groups = [[] for _ in range(count)]
            loads = [0.0] * count
            for index in range(len(survivors)):
                groups[index % count].append(index)
        for group in groups:
            group.sort()
        planned = [
            (group, load) for group, load in zip(groups, loads) if group
        ]
        return (
            [group for group, _ in planned],
            strategy,
            [load for _, load in planned],
        )

    def _solve_sequential(
        self,
        query: Query,
        survivors: list[set[str]],
        pivot: bool,
        stats: DCSatStats,
    ) -> DCSatResult:
        for index, candidates in enumerate(survivors):
            cliques_before = stats.cliques_enumerated
            started = time.perf_counter()
            with obs_span("solve_component", component=index):
                witness = solve_component(
                    self.checker.workspace,
                    self.checker.fd_graph,
                    query,
                    candidates,
                    self.checker.engine,
                    pivot=pivot,
                    stats=stats,
                )
            # The sequential path warms the same cost model the parallel
            # planner reads, so a pool that starts below min_components
            # still learns component costs.
            self._observe_component(
                time.perf_counter() - started,
                len(candidates),
                cliques=stats.cliques_enumerated - cliques_before,
            )
            if witness is not None:
                return DCSatResult(satisfied=False, witness=witness, stats=stats)
        return DCSatResult(satisfied=True, stats=stats)

    def _solve_parallel(
        self,
        query: Query,
        survivors: list[set[str]],
        pivot: bool,
        stats: DCSatStats,
    ) -> DCSatResult:
        resolved = self._dispatch_components(
            query, list(enumerate(survivors)), pivot, stats
        )
        best_index: int | None = None
        best_witness: frozenset[str] | None = None
        for index, witness in resolved.items():
            if witness is not None and (
                best_index is None or index < best_index
            ):
                best_index, best_witness = index, witness
        if best_index is not None:
            return DCSatResult(
                satisfied=False, witness=best_witness, stats=stats
            )
        return DCSatResult(satisfied=True, stats=stats)

    def solve_components(
        self,
        query: Query,
        items: list[tuple[int, set[str]]],
        pivot: bool = True,
        stats: DCSatStats | None = None,
    ) -> dict[int, frozenset[str] | None]:
        """Solve an explicit subset of components.

        *items* holds ``(index, candidates)`` pairs in ascending index
        order — the monitor's verdict ledger dispatches only its *dirty*
        components here, keeping the ledger's reused components off the
        workers entirely (docs/INCREMENTAL.md).  Returns a mapping from
        component index to witness for every component actually solved;
        indices above the lowest-index witness may be absent (early
        stop / early cancel), exactly the components a sequential solve
        would not have reached either.
        """
        stats = stats if stats is not None else DCSatStats()
        if len(items) < max(2, self.min_components) or self.max_workers <= 1:
            resolved: dict[int, frozenset[str] | None] = {}
            for index, candidates in items:
                cliques_before = stats.cliques_enumerated
                started = time.perf_counter()
                with obs_span("solve_component", component=index):
                    witness = solve_component(
                        self.checker.workspace,
                        self.checker.fd_graph,
                        query,
                        candidates,
                        self.checker.engine,
                        pivot=pivot,
                        stats=stats,
                    )
                self._observe_component(
                    time.perf_counter() - started,
                    len(candidates),
                    cliques=stats.cliques_enumerated - cliques_before,
                )
                resolved[index] = witness
                if witness is not None:
                    break
            return resolved
        return self._dispatch_components(query, items, pivot, stats)

    def _dispatch_components(
        self,
        query: Query,
        items: list[tuple[int, set[str]]],
        pivot: bool,
        stats: DCSatStats,
    ) -> dict[int, frozenset[str] | None]:
        """Fan ``(index, candidates)`` units across the worker pool.

        The shared core of :meth:`_solve_parallel` (all survivors) and
        :meth:`solve_components` (a dirty subset): plan groups over the
        given units, dispatch, merge stats/spans/cost observations, and
        early-cancel groups whose lowest index exceeds the best witness
        found so far.  Returns ``{index: witness}`` for every solved
        component.
        """
        executor, sync = self._prepare()
        tracer = default_tracer()
        subset = [candidates for _, candidates in items]
        position_groups, strategy, predicted = self.plan_groups(subset)
        # plan_groups speaks positions into *subset*; translate back to
        # the caller's component indices (ascending within each group,
        # because items arrive ascending and groups are sorted).
        groups = [
            [items[position][0] for position in group]
            for group in position_groups
        ]
        candidates_of = dict(items)
        resolved: dict[int, frozenset[str] | None] = {}
        with obs_span(
            "parallel_dispatch",
            components=len(items),
            workers=self.max_workers,
            groups=len(groups),
            strategy=strategy,
        ) as dispatch:
            if strategy == "cost":
                dispatch.set(
                    predicted_imbalance=round(group_imbalance(predicted), 4)
                )
            futures = {}
            for group_index, group in enumerate(groups):
                payload = tuple(
                    (index, tuple(sorted(candidates_of[index])))
                    for index in group
                )
                future = executor.submit(
                    _solve_component_group_task, sync, query, payload, pivot
                )
                futures[future] = group_index
            best_index: int | None = None
            cancelled = 0
            group_elapsed: dict[int, float] = {}
            pending = set(futures)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        if future.cancelled():
                            continue
                        records = future.result()
                        group_index = futures[future]
                        elapsed = 0.0
                        for index, witness, task_stats, spans in records:
                            stats.merge(task_stats)
                            tracer.adopt(spans, dispatch)
                            self._observe_component(
                                task_stats.elapsed_seconds,
                                task_stats.max_component_size,
                                cliques=task_stats.cliques_enumerated,
                            )
                            elapsed += task_stats.elapsed_seconds
                            resolved[index] = witness
                            if witness is not None and (
                                best_index is None or index < best_index
                            ):
                                best_index = index
                        group_elapsed[group_index] = elapsed
                    if best_index is not None:
                        # Early cancel: a group whose lowest index exceeds
                        # the best witness can no longer influence the
                        # verdict (workers already stop within a group).
                        for future in list(pending):
                            group = groups[futures[future]]
                            if group[0] > best_index and future.cancel():
                                pending.discard(future)
                                cancelled += 1
            finally:
                for future in pending:
                    future.cancel()
                dispatch.set(cancelled=cancelled)
                if group_elapsed:
                    observed = group_imbalance(list(group_elapsed.values()))
                    dispatch.set(observed_imbalance=round(observed, 4))
                    registry = default_registry()
                    registry.gauge(
                        "repro_pool_group_imbalance",
                        "Observed makespan imbalance of the last parallel "
                        "dispatch: (max - mean) / mean of per-group solve "
                        "seconds.",
                    ).set(observed)
                    registry.counter(
                        "repro_pool_group_plans_total",
                        "Parallel dispatches, by group-planning strategy.",
                        labels={"strategy": strategy},
                    ).inc()
        return resolved

    # -- parallel batch checking ---------------------------------------

    def check_batch(
        self,
        queries: list[Query | str],
        short_circuit: bool = True,
        pivot: bool = True,
    ) -> list[DCSatResult]:
        """Fan a monotone constraint battery out as worker query groups.

        The coordinator runs the per-query fast paths (state check and
        monotone short-circuit), round-robins the still-undecided
        queries into ``max_workers`` groups, and each worker runs the
        shared clique sweep of :func:`repro.core.batch.batch_dcsat` for
        its group.  Results align positionally with *queries*.
        """
        checker = self.checker
        parsed = [checker._parse(query) for query in queries]
        for query in parsed:
            if not is_monotone(query, checker.assume_nonnegative_sums):
                raise AlgorithmError(
                    f"batch checking requires monotone queries; {query!s} is not"
                )
        results: list[DCSatResult | None] = [None] * len(parsed)
        open_indexes: list[int] = []
        for index, query in enumerate(parsed):
            stats = DCSatStats(algorithm="batch-pool")
            decided = checker.fast_paths(query, True, short_circuit, stats)
            if decided is not None:
                results[index] = decided
            else:
                open_indexes.append(index)
        checker.workspace.clear_active()
        if open_indexes:
            if self.max_workers <= 1 or len(open_indexes) == 1:
                solved = batch_dcsat(
                    checker.workspace,
                    checker.fd_graph,
                    [parsed[i] for i in open_indexes],
                    checker.engine,
                    assume_nonnegative_sums=checker.assume_nonnegative_sums,
                    short_circuit=False,
                    pivot=pivot,
                )
                for index, result in zip(open_indexes, solved):
                    results[index] = result
            else:
                groups: list[list[int]] = [
                    open_indexes[offset :: self.max_workers]
                    for offset in range(self.max_workers)
                ]
                groups = [group for group in groups if group]
                executor, sync = self._prepare()
                tracer = default_tracer()
                with obs_span(
                    "batch_dispatch", groups=len(groups),
                    queries=len(open_indexes),
                ) as dispatch:
                    futures = [
                        executor.submit(
                            _solve_batch_task, sync, [parsed[i] for i in group],
                            pivot, checker.assume_nonnegative_sums,
                        )
                        for group in groups
                    ]
                    for group, future in zip(groups, futures):
                        solved, spans = future.result()
                        tracer.adopt(spans, dispatch)
                        for index, result in zip(group, solved):
                            results[index] = result
        assert all(result is not None for result in results)
        return [result for result in results if result is not None]


class PooledDCSatChecker(DCSatChecker):
    """A :class:`DCSatChecker` whose opt / batch paths run on a pool.

    Checks that fall outside the pool's scope (non-monotone queries,
    explicitly requested algorithms other than ``"opt"``, tractable /
    brute fallbacks) take the sequential path of the base class.
    """

    def __init__(
        self,
        db: BlockchainDatabase,
        backend: str | None = None,
        assume_nonnegative_sums: bool = False,
        engine: str | EvaluationEngine | None = None,
        max_workers: int | None = None,
        start_method: str | None = None,
        resync_ops: int = 256,
    ):
        super().__init__(
            db,
            backend=backend,
            assume_nonnegative_sums=assume_nonnegative_sums,
            engine=engine,
        )
        # Workers need picklable *names*, not instances: resolve the
        # same defaults the coordinator resolved so both sides agree.
        self.pool = SolverPool(
            self,
            max_workers=max_workers,
            backend=resolve_backend_name(backend),
            engine=(
                engine.name
                if isinstance(engine, EvaluationEngine)
                else resolve_engine_name(engine)
            ),
            start_method=start_method,
            resync_ops=resync_ops,
        )

    # -- op-log hooks ---------------------------------------------------

    def issue(self, tx: Transaction) -> None:
        super().issue(tx)
        self.pool.record_op("issue", _transaction_to_wire(tx))

    def commit(self, tx_id: str) -> Transaction:
        tx = super().commit(tx_id)
        self.pool.record_op("commit", tx_id)
        return tx

    def forget(self, tx_id: str) -> Transaction:
        tx = super().forget(tx_id)
        self.pool.record_op("forget", tx_id)
        return tx

    def absorb(self, tx: Transaction) -> None:
        super().absorb(tx)
        self.pool.record_op("absorb", _transaction_to_wire(tx))

    # -- pooled checking ------------------------------------------------

    def check(self, query, algorithm: str = "auto", **kwargs) -> DCSatResult:
        if self.pool.max_workers > 1 and algorithm in ("auto", "opt"):
            parsed = self._parse(query)
            pool_kwargs_ok = set(kwargs) <= {
                "short_circuit", "use_coverage", "pivot", "normalize",
            }
            if (
                pool_kwargs_ok
                and is_monotone(parsed, self.assume_nonnegative_sums)
                and is_connected(parsed)
            ):
                return self.pool.check(parsed, **kwargs)
        return super().check(query, algorithm=algorithm, **kwargs)

    def check_batch(self, queries, short_circuit=True, pivot=True):
        if self.pool.max_workers > 1:
            return self.pool.check_batch(
                queries, short_circuit=short_circuit, pivot=pivot
            )
        return super().check_batch(
            queries, short_circuit=short_circuit, pivot=pivot
        )

    def close(self) -> None:
        self.pool.shutdown()
        super().close()
