"""Sharded constraint monitoring: many monitors behind one front.

A node watching hundreds of constraints over a wide schema pays for a
single global world sweep on every ``status_all`` — and the number of
maximal worlds *multiplies* across independent parts of the pending
set.  :class:`ShardedMonitor` partitions registered constraints by
relation footprint across N :class:`~repro.core.monitor.ConstraintMonitor`
shards, each with its own :class:`~repro.core.checker.DCSatChecker`
(optionally a :class:`~repro.service.pool.PooledDCSatChecker`), behind
a front that preserves the monitor API.

All routing *decisions* — placement, the coupled-closure fan-out, the
skip/replay backlogs — live in :class:`~repro.fabric.topology.ShardTopology`,
which this front shares with the cross-process fleet
(:class:`~repro.fabric.router.FabricMonitor`): the same decision engine
drives in-process monitors here and shard subprocesses there, so the
verdict-identity guarantees pinned by ``tests/service/test_shard.py``
carry over to the fabric unchanged.

Routing semantics (see the topology module for the full story): a state
change over relations ``S`` is applied **only** to shards whose
footprint intersects the ind-connectivity / co-write coupled closure of
``S``; every other shard backlogs the op, and backlogged ops replay —
in original global order — the moment the shard's state starts to
matter.  Each shard's database therefore always equals the global
database *restricted to what its verdicts can observe*.

The payoff: a shard's world sweep enumerates cliques only over the
pending transactions it has seen.  With B independent constraint
batteries of 2^K worlds each, one monitor sweeps 2^(B·K) worlds where B
shards sweep B·2^K (see ``benchmarks/test_sharded_monitor.py``).
"""

from __future__ import annotations

from typing import Callable

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor, MonitorEntry
from repro.core.results import DCSatResult
from repro.errors import ReproError
from repro.fabric.topology import (
    AppliedOp,
    ShardAction,
    ShardTopology,
    copy_database,
)
from repro.obs.log import get_logger
from repro.obs.trace import span as obs_span
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.relational.transaction import Transaction
from repro.service.metrics import MetricsRegistry

log = get_logger("service.shard")

#: Bucket bounds for the drained-ops-per-flush histogram.
FLUSH_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

# Re-exported for callers that used the private helper.
_copy_database = copy_database


class _Shard:
    """One monitor bound to its topology slot (the executor side)."""

    def __init__(self, index: int, monitor: ConstraintMonitor, slot):
        self.index = index
        self.monitor = monitor
        self._slot = slot

    @property
    def footprint(self) -> frozenset[str]:
        return self._slot.footprint

    @property
    def skipped(self) -> list:
        return self._slot.skipped

    @property
    def flushes(self) -> int:
        return self._slot.flushes

    @property
    def drained_ops(self) -> int:
        return self._slot.drained_ops

    def apply(self, kind: str, payload) -> list[str]:
        if kind == "issue":
            return self.monitor.issue(payload)
        if kind == "commit":
            return self.monitor.commit(payload)
        if kind == "forget":
            return self.monitor.forget(payload)
        if kind == "absorb":
            return self.monitor.absorb(payload)
        raise ReproError(f"unknown shard op {kind!r}")  # pragma: no cover


class ShardedMonitor:
    """N constraint monitors behind the single-monitor API.

    ``checker_factory`` builds the per-shard checker from the shard's
    private database copy; the default is a plain
    :class:`~repro.core.checker.DCSatChecker`.  Pass a factory returning
    :class:`~repro.service.pool.PooledDCSatChecker` instances to give
    every shard its own solver pool.

    With ``metrics``, each flush observes the number of drained ops in
    a per-shard histogram; :meth:`export_gauges` publishes per-shard
    gauges on demand (the server calls it on every metrics scrape).
    """

    def __init__(
        self,
        db: BlockchainDatabase,
        shards: int = 2,
        checker_factory: Callable[[BlockchainDatabase], DCSatChecker] | None = None,
        max_skipped: int = 512,
        metrics: MetricsRegistry | None = None,
    ):
        if checker_factory is None:
            checker_factory = DCSatChecker
        self._topology = ShardTopology(db, shards, max_skipped=max_skipped)
        self._shards = [
            _Shard(
                slot.index,
                ConstraintMonitor(checker_factory(copy_database(db))),
                slot,
            )
            for slot in self._topology.slots
        ]
        #: constraint name -> owning shard (kept in registration order).
        self._placement: dict[str, _Shard] = {}
        self.max_skipped = max_skipped
        self._metrics = metrics
        #: Union of the per-shard monitors' dirty-component counts for
        #: the most recent routed state change (docs/INCREMENTAL.md).
        self.last_dirty_components: dict[str, int] = {}

    @property
    def epoch(self) -> int:
        """Monotone state-change counter, mirroring ``DCSatChecker.epoch``."""
        return self._topology.epoch

    @property
    def topology(self) -> ShardTopology:
        return self._topology

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        name: str,
        query: ConjunctiveQuery | AggregateQuery | str,
        **check_kwargs,
    ) -> MonitorEntry:
        if isinstance(query, str):
            query = parse_query(query)
        plan = self._topology.place(name, query.relations())
        shard = self._shards[plan.shard]
        # The footprint is about to grow: drain every skipped op the
        # new constraint could observe before it can cache a verdict.
        self._replay(shard, plan.drained, plan.retained)
        entry = shard.monitor.register(name, query, **check_kwargs)
        self._placement[name] = shard
        return entry

    def unregister(self, name: str) -> None:
        shard = self._shard_of(name)
        self._topology.forget_placement(name)
        shard.monitor.unregister(name)
        del self._placement[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._placement)

    def entry(self, name: str) -> MonitorEntry:
        return self._shard_of(name).monitor.entry(name)

    def _shard_of(self, name: str) -> _Shard:
        try:
            return self._placement[name]
        except KeyError:
            raise ReproError(f"no constraint named {name!r}") from None

    # ------------------------------------------------------------------
    # Checking

    def status(self, name: str, use_subsumption: bool = True) -> DCSatResult:
        return self._shard_of(name).monitor.status(
            name, use_subsumption=use_subsumption
        )

    async def status_async(
        self, name: str, use_subsumption: bool = True
    ) -> DCSatResult:
        """:meth:`status` awaiting the owning shard's async solve path."""
        return await self._shard_of(name).monitor.status_async(
            name, use_subsumption=use_subsumption
        )

    def status_all(self, batch: bool = True) -> dict[str, DCSatResult]:
        merged: dict[str, DCSatResult] = {}
        for shard in self._shards:
            merged.update(shard.monitor.status_all(batch=batch))
        return {name: merged[name] for name in self._placement}

    def violated(self) -> dict[str, DCSatResult]:
        return {
            name: result
            for name, result in self.status_all().items()
            if not result.satisfied
        }

    # ------------------------------------------------------------------
    # State changes (routed)

    def issue(self, tx: Transaction) -> list[str]:
        with obs_span("shard.route", kind="issue") as sp:
            return self._run_actions("issue", self._topology.issue(tx), sp)

    def commit(self, tx_id: str) -> list[str]:
        with obs_span("shard.route", kind="commit") as sp:
            return self._run_actions("commit", self._topology.commit(tx_id), sp)

    def forget(self, tx_id: str) -> list[str]:
        with obs_span("shard.route", kind="forget") as sp:
            return self._run_actions("forget", self._topology.forget(tx_id), sp)

    def absorb(self, tx: Transaction) -> list[str]:
        with obs_span("shard.route", kind="absorb") as sp:
            return self._run_actions("absorb", self._topology.absorb(tx), sp)

    def _run_actions(
        self, kind: str, actions: list[ShardAction], sp
    ) -> list[str]:
        invalidated: list[str] = []
        applied = skipped = 0
        self.last_dirty_components = {}
        for action in actions:
            shard = self._shards[action.shard]
            if action.skipped:
                skipped += 1
                with obs_span("shard.skip", shard=shard.index, kind=kind):
                    pass
                # A backlog-overflow flush replays everything, the
                # routed op included.
                invalidated.extend(
                    self._replay(shard, action.drained, action.retained)
                )
            else:
                applied += 1
                invalidated.extend(
                    self._replay(shard, action.drained, action.retained)
                )
                with obs_span("shard.apply", shard=shard.index, kind=kind):
                    invalidated.extend(
                        shard.apply(action.op.kind, action.op.payload)
                    )
                self._merge_dirty(shard)
        sp.set(applied=applied, skipped=skipped)
        # Match the single monitor: names in global registration order.
        hit = set(invalidated)
        return [name for name in self._placement if name in hit]

    def _merge_dirty(self, shard: _Shard) -> None:
        """Fold one shard monitor's last dirty-set into the front's."""
        for name, count in getattr(
            shard.monitor, "last_dirty_components", {}
        ).items():
            self.last_dirty_components[name] = (
                self.last_dirty_components.get(name, 0) + count
            )

    def _replay(
        self, shard: _Shard, drained: list[AppliedOp], retained: int
    ) -> list[str]:
        """Apply a drain plan to the shard's monitor, in plan order."""
        if not drained and not retained:
            return []
        with obs_span("shard.drain", shard=shard.index) as sp:
            invalidated: list[str] = []
            for op in drained:
                invalidated.extend(shard.apply(op.kind, op.payload))
                self._merge_dirty(shard)
            sp.set(drained=len(drained), retained=retained)
            if drained:
                log.debug(
                    "shard drained skipped ops",
                    extra={
                        "ctx": {"shard": shard.index, "drained": len(drained)}
                    },
                )
                if self._metrics is not None:
                    self._metrics.histogram(
                        "repro_shard_flush_drained_ops",
                        "Skipped operations replayed per shard drain.",
                        labels={"shard": str(shard.index)},
                        buckets=FLUSH_BUCKETS,
                    ).observe(len(drained))
        return invalidated

    # ------------------------------------------------------------------
    # Introspection (used by the server's duck-typed surface)

    def pending_count(self) -> int:
        return self._topology.pending_count()

    def checkers(self) -> list[DCSatChecker]:
        return [shard.monitor.checker for shard in self._shards]

    def ledger_stats(self) -> dict:
        """Verdict-ledger counters aggregated across shard monitors."""
        merged: dict = {}
        for shard in self._shards:
            snapshot = shard.monitor.ledger_stats()
            shard.monitor.ledger.merge_snapshot(snapshot, merged)
        return merged

    def describe(self) -> dict:
        """Per-shard placement, footprint and routing-state summary."""
        return {
            "sharded": True,
            "shards": len(self._shards),
            "detail": [
                {
                    "shard": shard.index,
                    "constraints": sorted(shard.monitor.names),
                    "footprint": sorted(shard.footprint),
                    "pending": len(shard.monitor.checker.db.pending_ids),
                    "skipped_ops": len(shard.skipped),
                    "flushes": shard.flushes,
                    "ledger_entries": shard.monitor.ledger.entry_count,
                }
                for shard in self._shards
            ],
        }

    def export_gauges(self, metrics: MetricsRegistry) -> None:
        """Publish per-shard gauges (called on every metrics scrape)."""
        for shard in self._shards:
            labels = {"shard": str(shard.index)}
            names = shard.monitor.names
            metrics.gauge(
                "repro_shard_constraints",
                "Constraints registered on the shard.",
                labels=labels,
            ).set(len(names))
            metrics.gauge(
                "repro_shard_pending_transactions",
                "Pending transactions the shard has applied.",
                labels=labels,
            ).set(len(shard.monitor.checker.db.pending_ids))
            metrics.gauge(
                "repro_shard_skipped_ops",
                "State changes queued but not yet applied to the shard.",
                labels=labels,
            ).set(len(shard.skipped))
            metrics.gauge(
                "repro_shard_checks_run",
                "Solver checks run across the shard's entries.",
                labels=labels,
            ).set(
                sum(shard.monitor.entry(name).checks_run for name in names)
            )
            metrics.gauge(
                "repro_shard_flushes",
                "Times the shard replayed its skipped-op backlog.",
                labels=labels,
            ).set(shard.flushes)
            metrics.gauge(
                "repro_shard_ledger_entries",
                "Component sub-verdicts in the shard's verdict ledger.",
                labels=labels,
            ).set(shard.monitor.ledger.entry_count)

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        for checker in self.checkers():
            checker.close()

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        skipped = sum(len(shard.skipped) for shard in self._shards)
        return (
            f"ShardedMonitor({len(self._shards)} shards, "
            f"{len(self._placement)} constraints, {skipped} skipped ops)"
        )


__all__ = ["ShardedMonitor"]
