"""Sharded constraint monitoring: many monitors behind one front.

A node watching hundreds of constraints over a wide schema pays for a
single global world sweep on every ``status_all`` — and the number of
maximal worlds *multiplies* across independent parts of the pending
set.  :class:`ShardedMonitor` partitions registered constraints by
relation footprint across N :class:`~repro.core.monitor.ConstraintMonitor`
shards, each with its own :class:`~repro.core.checker.DCSatChecker`
(optionally a :class:`~repro.service.pool.PooledDCSatChecker`), behind
a front that preserves the monitor API.

Routing rests on the same coupling analysis the monitor's invalidation
uses (:func:`~repro.core.monitor.coupled_relations`): a state change
over relations ``S`` can only affect verdicts over relations in the
ind-connectivity / co-write closure of ``S``.  Each incoming
issue / commit / forget / absorb is therefore applied **only** to
shards whose footprint intersects that closure; for every other shard
the op is appended to a per-shard *skipped* list.

Skipped ops are replayed — in original order, ahead of any newer op —
the moment the shard's state starts to matter:

* before a routed op is applied, every skipped op whose coupled
  closure *now* intersects the shard's footprint is drained first (a
  later op can couple previously independent relations, e.g. a pending
  transaction spanning both; ops in a different coupling component
  commute with the routed op and stay skipped);
* before a constraint is registered on the shard, against the grown
  footprint;
* the whole backlog, when it outgrows ``max_skipped`` (bounds memory).

Drained ops replay against exactly the shard state their original
global position produced (coupled ops drain together, decoupled ops
commute), so each shard's database always equals the global database
*restricted to what its verdicts can observe* — the verdict-identity
tests in ``tests/service/test_shard.py`` exercise this against a
single monitor over randomized traces.

The payoff: a shard's world sweep enumerates cliques only over the
pending transactions it has seen.  With B independent constraint
batteries of 2^K worlds each, one monitor sweeps 2^(B·K) worlds where B
shards sweep B·2^K (see ``benchmarks/test_sharded_monitor.py``).
"""

from __future__ import annotations

from typing import Callable

from repro import serialize
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor, MonitorEntry, coupled_relations
from repro.core.results import DCSatResult
from repro.errors import ReproError
from repro.obs.log import get_logger
from repro.obs.trace import span as obs_span
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.relational.transaction import Transaction
from repro.service.metrics import MetricsRegistry

log = get_logger("service.shard")

#: Bucket bounds for the drained-ops-per-flush histogram.
FLUSH_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


def _copy_database(db: BlockchainDatabase) -> BlockchainDatabase:
    """An independent deep copy (shards must not share mutable state)."""
    return serialize.database_from_dict(
        serialize.database_to_dict(db), validate=False
    )


class _Shard:
    """One monitor plus its routing state."""

    def __init__(self, index: int, monitor: ConstraintMonitor):
        self.index = index
        self.monitor = monitor
        #: Union of the raw relation footprints of registered entries.
        self.footprint: frozenset[str] = frozenset()
        #: State changes not yet applied, as ``(kind, payload,
        #: relations)`` with the op's seed relations recorded at skip
        #: time (a committed transaction's relations are not otherwise
        #: recoverable later).  They cannot affect this shard's verdicts
        #: while their coupling to the footprint stays empty.
        self.skipped: list[tuple[str, object, frozenset[str]]] = []
        self.flushes = 0
        self.drained_ops = 0

    def refresh_footprint(self) -> None:
        names = self.monitor.names
        footprint: set[str] = set()
        for name in names:
            footprint |= self.monitor.entry(name).relations
        self.footprint = frozenset(footprint)

    def apply(self, kind: str, payload) -> list[str]:
        if kind == "issue":
            return self.monitor.issue(payload)
        if kind == "commit":
            return self.monitor.commit(payload)
        if kind == "forget":
            return self.monitor.forget(payload)
        if kind == "absorb":
            return self.monitor.absorb(payload)
        raise ReproError(f"unknown shard op {kind!r}")  # pragma: no cover


class ShardedMonitor:
    """N constraint monitors behind the single-monitor API.

    ``checker_factory`` builds the per-shard checker from the shard's
    private database copy; the default is a plain
    :class:`~repro.core.checker.DCSatChecker`.  Pass a factory returning
    :class:`~repro.service.pool.PooledDCSatChecker` instances to give
    every shard its own solver pool.

    With ``metrics``, each flush observes the number of drained ops in
    a per-shard histogram; :meth:`export_gauges` publishes per-shard
    gauges on demand (the server calls it on every metrics scrape).
    """

    def __init__(
        self,
        db: BlockchainDatabase,
        shards: int = 2,
        checker_factory: Callable[[BlockchainDatabase], DCSatChecker] | None = None,
        max_skipped: int = 512,
        metrics: MetricsRegistry | None = None,
    ):
        if shards < 1:
            raise ReproError(f"need at least one shard, got {shards}")
        if checker_factory is None:
            checker_factory = DCSatChecker
        #: The front's own authoritative copy: validates ops and tracks
        #: the pending set whose co-write footprints drive routing.
        self._front = _copy_database(db)
        self._shards = [
            _Shard(index, ConstraintMonitor(checker_factory(_copy_database(db))))
            for index in range(shards)
        ]
        self._placement: dict[str, _Shard] = {}
        self.max_skipped = max_skipped
        self._metrics = metrics
        #: Monotone state-change counter, mirroring ``DCSatChecker.epoch``.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        name: str,
        query: ConjunctiveQuery | AggregateQuery | str,
        **check_kwargs,
    ) -> MonitorEntry:
        if name in self._placement:
            raise ReproError(f"constraint {name!r} is already registered")
        if isinstance(query, str):
            query = parse_query(query)
        shard = self._place(query.relations())
        # The footprint is about to grow: drain every skipped op the
        # new constraint could observe before it can cache a verdict.
        self._drain(shard, shard.footprint | query.relations())
        entry = shard.monitor.register(name, query, **check_kwargs)
        shard.footprint |= entry.relations
        self._placement[name] = shard
        return entry

    def _place(self, relations: frozenset[str]) -> _Shard:
        """Deterministic placement: co-locate with the shard sharing the
        most ind-coupled relations; otherwise balance by entry count."""
        expanded = self._front.constraints.ind_closure(relations)
        best: _Shard | None = None
        best_score = 0
        for shard in self._shards:
            score = len(expanded & shard.footprint)
            if score > best_score:
                best, best_score = shard, score
        if best is None:
            best = min(
                self._shards, key=lambda s: (len(s.monitor.names), s.index)
            )
        return best

    def unregister(self, name: str) -> None:
        shard = self._shard_of(name)
        shard.monitor.unregister(name)
        del self._placement[name]
        shard.refresh_footprint()

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._placement)

    def entry(self, name: str) -> MonitorEntry:
        return self._shard_of(name).monitor.entry(name)

    def _shard_of(self, name: str) -> _Shard:
        try:
            return self._placement[name]
        except KeyError:
            raise ReproError(f"no constraint named {name!r}") from None

    # ------------------------------------------------------------------
    # Checking

    def status(self, name: str, use_subsumption: bool = True) -> DCSatResult:
        return self._shard_of(name).monitor.status(
            name, use_subsumption=use_subsumption
        )

    async def status_async(
        self, name: str, use_subsumption: bool = True
    ) -> DCSatResult:
        """:meth:`status` awaiting the owning shard's async solve path."""
        return await self._shard_of(name).monitor.status_async(
            name, use_subsumption=use_subsumption
        )

    def status_all(self, batch: bool = True) -> dict[str, DCSatResult]:
        merged: dict[str, DCSatResult] = {}
        for shard in self._shards:
            merged.update(shard.monitor.status_all(batch=batch))
        return {name: merged[name] for name in self._placement}

    def violated(self) -> dict[str, DCSatResult]:
        return {
            name: result
            for name, result in self.status_all().items()
            if not result.satisfied
        }

    # ------------------------------------------------------------------
    # State changes (routed)

    def issue(self, tx: Transaction) -> list[str]:
        self._front.add_pending(tx)  # validates id, relations, arity
        self.epoch += 1
        return self._route("issue", tx, frozenset(tx.relation_names))

    def commit(self, tx_id: str) -> list[str]:
        tx = self._front.remove_pending(tx_id)
        self.epoch += 1
        return self._route("commit", tx_id, frozenset(tx.relation_names))

    def forget(self, tx_id: str) -> list[str]:
        tx = self._front.remove_pending(tx_id)
        self.epoch += 1
        return self._route("forget", tx_id, frozenset(tx.relation_names))

    def absorb(self, tx: Transaction) -> list[str]:
        for rel in tx.relation_names:
            if rel not in self._front.current:
                raise ReproError(
                    f"transaction {tx.tx_id!r} targets unknown relation {rel!r}"
                )
            schema = self._front.current[rel].schema
            for values in tx.tuples(rel):
                schema.validate_tuple(values)
        self.epoch += 1
        return self._route("absorb", tx, frozenset(tx.relation_names))

    def _route(
        self, kind: str, payload, relations: frozenset[str]
    ) -> list[str]:
        with obs_span("shard.route", kind=kind) as sp:
            touched = coupled_relations(
                relations,
                self._front.constraints,
                (tx.relation_names for tx in self._front.pending),
            )
            invalidated: list[str] = []
            applied = skipped = 0
            for shard in self._shards:
                if touched & shard.footprint:
                    applied += 1
                    invalidated.extend(self._drain(shard, shard.footprint))
                    with obs_span(
                        "shard.apply", shard=shard.index, kind=kind
                    ):
                        invalidated.extend(shard.apply(kind, payload))
                else:
                    skipped += 1
                    with obs_span("shard.skip", shard=shard.index, kind=kind):
                        shard.skipped.append((kind, payload, relations))
                    if (
                        self.max_skipped
                        and len(shard.skipped) > self.max_skipped
                    ):
                        invalidated.extend(self._drain(shard, None))
            sp.set(applied=applied, skipped=skipped)
        # Match the single monitor: names in global registration order.
        hit = set(invalidated)
        return [name for name in self._placement if name in hit]

    def _drain(self, shard: _Shard, footprint: frozenset[str] | None) -> list[str]:
        """Replay the skipped ops coupled to *footprint*, in original
        global order; ``None`` drains the whole backlog.

        Ops in a different coupling component commute with everything
        the shard observes, so they stay skipped — that independence is
        what keeps each shard's world sweep small.  Coupled ops drain
        together (their seeds close over the same component), so the
        relative order among drained ops is the global one.
        """
        if not shard.skipped:
            return []
        with obs_span("shard.drain", shard=shard.index) as sp:
            footprints = [
                frozenset(tx.relation_names) for tx in self._front.pending
            ]
            retained: list[tuple[str, object, frozenset[str]]] = []
            invalidated: list[str] = []
            drained = 0
            for kind, payload, relations in shard.skipped:
                coupled = footprint is None or (
                    coupled_relations(
                        relations, self._front.constraints, footprints
                    )
                    & footprint
                )
                if coupled:
                    invalidated.extend(shard.apply(kind, payload))
                    drained += 1
                else:
                    retained.append((kind, payload, relations))
            shard.skipped = retained
            sp.set(drained=drained, retained=len(retained))
            if drained:
                shard.flushes += 1
                shard.drained_ops += drained
                log.debug(
                    "shard drained skipped ops",
                    extra={
                        "ctx": {"shard": shard.index, "drained": drained}
                    },
                )
                if self._metrics is not None:
                    self._metrics.histogram(
                        "repro_shard_flush_drained_ops",
                        "Skipped operations replayed per shard drain.",
                        labels={"shard": str(shard.index)},
                        buckets=FLUSH_BUCKETS,
                    ).observe(drained)
        return invalidated

    # ------------------------------------------------------------------
    # Introspection (used by the server's duck-typed surface)

    def pending_count(self) -> int:
        return len(self._front.pending_ids)

    def checkers(self) -> list[DCSatChecker]:
        return [shard.monitor.checker for shard in self._shards]

    def describe(self) -> dict:
        """Per-shard placement, footprint and routing-state summary."""
        return {
            "sharded": True,
            "shards": len(self._shards),
            "detail": [
                {
                    "shard": shard.index,
                    "constraints": sorted(shard.monitor.names),
                    "footprint": sorted(shard.footprint),
                    "pending": len(shard.monitor.checker.db.pending_ids),
                    "skipped_ops": len(shard.skipped),
                    "flushes": shard.flushes,
                }
                for shard in self._shards
            ],
        }

    def export_gauges(self, metrics: MetricsRegistry) -> None:
        """Publish per-shard gauges (called on every metrics scrape)."""
        for shard in self._shards:
            labels = {"shard": str(shard.index)}
            names = shard.monitor.names
            metrics.gauge(
                "repro_shard_constraints",
                "Constraints registered on the shard.",
                labels=labels,
            ).set(len(names))
            metrics.gauge(
                "repro_shard_pending_transactions",
                "Pending transactions the shard has applied.",
                labels=labels,
            ).set(len(shard.monitor.checker.db.pending_ids))
            metrics.gauge(
                "repro_shard_skipped_ops",
                "State changes queued but not yet applied to the shard.",
                labels=labels,
            ).set(len(shard.skipped))
            metrics.gauge(
                "repro_shard_checks_run",
                "Solver checks run across the shard's entries.",
                labels=labels,
            ).set(
                sum(shard.monitor.entry(name).checks_run for name in names)
            )
            metrics.gauge(
                "repro_shard_flushes",
                "Times the shard replayed its skipped-op backlog.",
                labels=labels,
            ).set(shard.flushes)

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        for checker in self.checkers():
            checker.close()

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        skipped = sum(len(shard.skipped) for shard in self._shards)
        return (
            f"ShardedMonitor({len(self._shards)} shards, "
            f"{len(self._placement)} constraints, {skipped} skipped ops)"
        )


__all__ = ["ShardedMonitor"]
