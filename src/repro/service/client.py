"""A blocking JSON-lines client for the constraint-checking service.

Small and dependency-free on purpose: one socket, one request at a
time, responses matched by id.  Backpressure rejections surface as
:class:`~repro.errors.ServiceError` with ``code == "busy"`` and a
``retry_after`` hint; :meth:`ServiceClient.call_with_retry` implements
the obvious honor-the-hint loop.

::

    with ServiceClient("127.0.0.1", 7411) as client:
        client.register("no-double-spend", "q() <- TxIn(...), TxIn(...)")
        client.issue(tx)                       # -> invalidated names
        verdict = client.status("no-double-spend")
        print(verdict["satisfied"], verdict["witness"])
        print(client.metrics_text())
"""

from __future__ import annotations

import itertools
import json
import socket
import time
from typing import Any

from repro.errors import ServiceError
from repro.relational.transaction import Transaction
from repro.service import protocol


class ServiceClient:
    """A synchronous connection to a :class:`ConstraintService`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7411,
        timeout: float | None = 60.0,
        connect_timeout: float = 10.0,
    ):
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        #: Trace id of the most recent queued call, if the server traced
        #: it — correlate with ``GET /tracez?trace_id=...``.
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------
    # Transport

    def call(
        self,
        op: str,
        deadline: float | None = None,
        trace: str | None = None,
        **args: Any,
    ) -> dict:
        """Send one request; return its ``result`` or raise ServiceError."""
        request_id = next(self._ids)
        request: dict = {"id": request_id, "op": op, "args": args}
        if deadline is not None:
            request["deadline"] = deadline
        if trace is not None:
            request["trace"] = trace
        self._sock.sendall(protocol.encode_line(request))
        while True:
            line = self._file.readline()
            if not line:
                raise ServiceError("server closed the connection")
            response = json.loads(line)
            if response.get("id") != request_id:
                continue  # stale response from an abandoned request
            if "trace" in response:
                self.last_trace_id = response["trace"]
            if response.get("ok"):
                return response["result"]
            raise ServiceError(
                response.get("error", "request failed"),
                code=response.get("code", "error"),
                retry_after=response.get("retry_after"),
            )

    def call_with_retry(
        self,
        op: str,
        deadline: float | None = None,
        max_attempts: int = 8,
        **args: Any,
    ) -> dict:
        """Like :meth:`call`, but honors ``busy`` retry-after hints."""
        last: ServiceError | None = None
        for _ in range(max_attempts):
            try:
                return self.call(op, deadline=deadline, **args)
            except ServiceError as error:
                if error.code != "busy":
                    raise
                last = error
                time.sleep(error.retry_after or 0.05)
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    # Operations

    def ping(self) -> dict:
        return self.call("ping")

    def register(
        self, name: str, query: str, deadline: float | None = None, **check_kwargs
    ) -> dict:
        args: dict = {"name": name, "query": query}
        if check_kwargs:
            args["check_kwargs"] = check_kwargs
        return self.call("register", deadline=deadline, **args)

    def unregister(self, name: str) -> dict:
        return self.call("unregister", name=name)

    def issue(
        self, tx: Transaction | dict, deadline: float | None = None
    ) -> list[str]:
        wire = protocol.transaction_to_wire(tx) if isinstance(tx, Transaction) else tx
        return self.call("issue", deadline=deadline, tx=wire)["invalidated"]

    def commit(self, tx_id: str, deadline: float | None = None) -> list[str]:
        return self.call("commit", deadline=deadline, tx_id=tx_id)["invalidated"]

    def forget(self, tx_id: str, deadline: float | None = None) -> list[str]:
        return self.call("forget", deadline=deadline, tx_id=tx_id)["invalidated"]

    def absorb(
        self, tx: Transaction | dict, deadline: float | None = None
    ) -> list[str]:
        """Insert externally committed facts (the mined-block path)."""
        wire = protocol.transaction_to_wire(tx) if isinstance(tx, Transaction) else tx
        return self.call("absorb", deadline=deadline, tx=wire)["invalidated"]

    def status(
        self,
        name: str,
        use_subsumption: bool = True,
        deadline: float | None = None,
    ) -> dict:
        return self.call(
            "status", deadline=deadline, name=name, use_subsumption=use_subsumption
        )

    def status_all(
        self, batch: bool = True, deadline: float | None = None
    ) -> dict:
        return self.call("status_all", deadline=deadline, batch=batch)

    def violated(self, deadline: float | None = None) -> dict:
        return self.call("violated", deadline=deadline)

    def constraints(self) -> dict:
        return self.call("constraints")

    def shards(self) -> dict:
        """Shard placement and routing state (``{"sharded": False, ...}``
        when the server runs a single monitor)."""
        return self.call("shards")

    def metrics_text(self) -> str:
        return self.call("metrics")["text"]

    def shutdown_server(self) -> dict:
        return self.call("shutdown")

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
