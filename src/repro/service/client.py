"""A blocking JSON-lines client for the constraint-checking service.

Small and dependency-free on purpose: one socket, one request at a
time, responses matched by id.  Backpressure rejections surface as
:class:`~repro.errors.ServiceError` with ``code == "busy"`` and a
``retry_after`` hint; :meth:`ServiceClient.call_with_retry` implements
the obvious honor-the-hint loop.

Transient-failure robustness: connects retry with exponential backoff
plus jitter (bounded by ``connect_timeout``), and a connection that
dies mid-call is re-established and the request resent — but only when
that is safe: always when the request bytes never left this process,
and otherwise only for read-style operations (:data:`IDEMPOTENT_OPS`);
a mutation whose fate is unknown surfaces the error instead of risking
a double apply.  Every recovery increments :attr:`ServiceClient.retries`.
An explicit per-call ``deadline`` bounds the whole attempt loop, not
each attempt.

::

    with ServiceClient("127.0.0.1", 7411) as client:
        client.register("no-double-spend", "q() <- TxIn(...), TxIn(...)")
        client.issue(tx)                       # -> invalidated names
        verdict = client.status("no-double-spend")
        print(verdict["satisfied"], verdict["witness"])
        print(client.metrics_text())
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import time
from typing import Any

from repro.errors import ServiceError
from repro.relational.transaction import Transaction
from repro.service import protocol

#: Operations safe to resend after a connection died mid-flight (the
#: canonical classification lives in :mod:`repro.service.protocol`;
#: re-exported here for backward compatibility).
IDEMPOTENT_OPS = protocol.IDEMPOTENT_OPS

#: First backoff sleep; doubles per attempt up to :data:`BACKOFF_CAP`.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0


def backoff_delay(attempt: int, rng: random.Random | None = None) -> float:
    """Exponential backoff with full jitter: uniform in
    ``(0, min(cap, base * 2**attempt)]`` — herds of reconnecting clients
    (a router fanning over a fleet) must not stampede in lockstep."""
    ceiling = min(BACKOFF_CAP, BACKOFF_BASE * (2 ** attempt))
    return ((rng or random).random() or 0.01) * ceiling


class ServiceClient:
    """A synchronous connection to a :class:`ConstraintService`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7411,
        timeout: float | None = 60.0,
        connect_timeout: float = 10.0,
        max_attempts: int = 4,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self.max_attempts = max(1, max_attempts)
        self._rng = random.Random()
        self._sock: socket.socket | None = None
        self._file = None
        self._ids = itertools.count(1)
        #: Transparent recoveries (reconnect or resend) performed so far.
        self.retries = 0
        #: Trace id of the most recent queued call, if the server traced
        #: it — correlate with ``GET /tracez?trace_id=...``.
        self.last_trace_id: str | None = None
        #: Wire spans the server exported with the most recent response
        #: (requests sent with ``export_spans=True``), ready for
        #: :meth:`~repro.obs.trace.Tracer.adopt`.
        self.last_spans: list[dict] | None = None
        self._connect(deadline_at=time.monotonic() + connect_timeout)

    # ------------------------------------------------------------------
    # Transport

    def _connect(self, deadline_at: float) -> None:
        """Dial with bounded, jittered retries until *deadline_at*."""
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection(
                    (self._host, self._port),
                    timeout=max(0.001, min(self._connect_timeout,
                                           deadline_at - time.monotonic())),
                )
                self._sock.settimeout(self._timeout)
                self._file = self._sock.makefile("rb")
                return
            except OSError as error:
                self._teardown()
                attempt += 1
                delay = backoff_delay(attempt, self._rng)
                if (
                    attempt >= self.max_attempts
                    or time.monotonic() + delay >= deadline_at
                ):
                    raise ServiceError(
                        f"could not connect to {self._host}:{self._port} "
                        f"after {attempt} attempts: {error}",
                        code="unavailable",
                    ) from error
                self.retries += 1
                time.sleep(delay)

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None

    def call(
        self,
        op: str,
        deadline: float | None = None,
        trace: str | None = None,
        export_spans: bool = False,
        **args: Any,
    ) -> dict:
        """Send one request; return its ``result`` or raise ServiceError.

        *deadline* rides to the server (bounding its solve) and bounds
        this client's whole attempt loop, reconnects included.
        """
        deadline_at = time.monotonic() + (
            deadline if deadline is not None
            else (self._timeout or self._connect_timeout)
        )
        attempt = 0
        while True:
            sent = False
            try:
                if self._sock is None:
                    self._connect(deadline_at=deadline_at)
                return self._call_once(op, deadline, trace, export_spans, args)
            except ServiceError:
                raise
            except (ConnectionError, TimeoutError, OSError) as error:
                sent = getattr(error, "_repro_sent", False)
                self._teardown()
                attempt += 1
                retriable = (not sent) or protocol.is_idempotent(op)
                delay = backoff_delay(attempt, self._rng)
                if (
                    not retriable
                    or attempt >= self.max_attempts
                    or time.monotonic() + delay >= deadline_at
                ):
                    raise ServiceError(
                        f"connection to {self._host}:{self._port} failed "
                        f"during {op!r}: {error}",
                        code="unavailable",
                    ) from error
                self.retries += 1
                time.sleep(delay)

    def _call_once(
        self,
        op: str,
        deadline: float | None,
        trace: str | None,
        export_spans: bool,
        args: dict,
    ) -> dict:
        request_id = next(self._ids)
        request: dict = {"id": request_id, "op": op, "args": args}
        if deadline is not None:
            request["deadline"] = deadline
        if trace is not None:
            request["trace"] = trace
        if export_spans:
            request["export_spans"] = True
        assert self._sock is not None and self._file is not None
        try:
            self._sock.sendall(protocol.encode_line(request))
        except (ConnectionError, TimeoutError, OSError) as error:
            # sendall into a dead peer: the request may sit in a kernel
            # buffer, but the server never processed and answered it —
            # flag it unsent-equivalent only if nothing left the socket.
            # We cannot know how much left, so be conservative: a reset
            # on send counts as *sent* unless it was a clean EPIPE-free
            # refusal; resends are then gated on IDEMPOTENT_OPS.
            error._repro_sent = True  # type: ignore[attr-defined]
            raise
        while True:
            try:
                line = self._file.readline()
            except (ConnectionError, TimeoutError, OSError) as error:
                # The request reached the wire before the read failed
                # (a timeout here included): the server may have applied
                # the op and lost only the reply — ambiguous, never a
                # free resend.
                error._repro_sent = True  # type: ignore[attr-defined]
                raise
            if not line:
                error = ConnectionResetError("server closed the connection")
                error._repro_sent = True  # type: ignore[attr-defined]
                raise error
            if not line.endswith(b"\n"):
                # readline() returned a partial line at EOF: the
                # connection died mid-reply.  Same ambiguity as above.
                error = ConnectionResetError("server reply truncated")
                error._repro_sent = True  # type: ignore[attr-defined]
                raise error
            try:
                response = json.loads(line)
            except json.JSONDecodeError as decode_error:
                error = ConnectionResetError(
                    f"unparseable server reply: {decode_error}"
                )
                error._repro_sent = True  # type: ignore[attr-defined]
                raise error from decode_error
            if response.get("id") != request_id:
                continue  # stale response from an abandoned request
            if "trace" in response:
                self.last_trace_id = response["trace"]
            self.last_spans = response.get("spans")
            if response.get("ok"):
                return response["result"]
            raise ServiceError(
                response.get("error", "request failed"),
                code=response.get("code", "error"),
                retry_after=response.get("retry_after"),
            )

    def call_with_retry(
        self,
        op: str,
        deadline: float | None = None,
        max_attempts: int = 8,
        **args: Any,
    ) -> dict:
        """Like :meth:`call`, but honors ``busy`` retry-after hints."""
        last: ServiceError | None = None
        for _ in range(max_attempts):
            try:
                return self.call(op, deadline=deadline, **args)
            except ServiceError as error:
                if error.code != "busy":
                    raise
                last = error
                time.sleep(error.retry_after or 0.05)
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    # Operations

    def ping(self) -> dict:
        return self.call("ping")

    def register(
        self, name: str, query: str, deadline: float | None = None, **check_kwargs
    ) -> dict:
        args: dict = {"name": name, "query": query}
        if check_kwargs:
            args["check_kwargs"] = check_kwargs
        return self.call("register", deadline=deadline, **args)

    def unregister(self, name: str) -> dict:
        return self.call("unregister", name=name)

    def issue(
        self, tx: Transaction | dict, deadline: float | None = None
    ) -> list[str]:
        wire = protocol.transaction_to_wire(tx) if isinstance(tx, Transaction) else tx
        return self.call("issue", deadline=deadline, tx=wire)["invalidated"]

    def commit(self, tx_id: str, deadline: float | None = None) -> list[str]:
        return self.call("commit", deadline=deadline, tx_id=tx_id)["invalidated"]

    def forget(self, tx_id: str, deadline: float | None = None) -> list[str]:
        return self.call("forget", deadline=deadline, tx_id=tx_id)["invalidated"]

    def absorb(
        self, tx: Transaction | dict, deadline: float | None = None
    ) -> list[str]:
        """Insert externally committed facts (the mined-block path)."""
        wire = protocol.transaction_to_wire(tx) if isinstance(tx, Transaction) else tx
        return self.call("absorb", deadline=deadline, tx=wire)["invalidated"]

    def status(
        self,
        name: str,
        use_subsumption: bool = True,
        deadline: float | None = None,
    ) -> dict:
        return self.call(
            "status", deadline=deadline, name=name, use_subsumption=use_subsumption
        )

    def status_all(
        self, batch: bool = True, deadline: float | None = None
    ) -> dict:
        return self.call("status_all", deadline=deadline, batch=batch)

    def violated(self, deadline: float | None = None) -> dict:
        return self.call("violated", deadline=deadline)

    def constraints(self) -> dict:
        return self.call("constraints")

    def shards(self) -> dict:
        """Shard placement and routing state (``{"sharded": False, ...}``
        when the server runs a single monitor)."""
        return self.call("shards")

    def rebalance(self, deadline: float | None = None) -> dict:
        """Migrate constraints between fleet shards by recorded cost
        (fabric router only; plain servers answer ``bad-request``)."""
        return self.call("rebalance", deadline=deadline)

    def metrics_text(self) -> str:
        return self.call("metrics")["text"]

    def shutdown_server(self) -> dict:
        return self.call("shutdown")

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
