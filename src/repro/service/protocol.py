"""The JSON-lines wire protocol shared by the server and the client.

One request or response per line, UTF-8 JSON, newline-terminated:

Request::

    {"id": 7, "op": "status", "args": {"name": "no-double-spend"},
     "deadline": 2.5}

Response::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": "queue full", "code": "busy",
     "retry_after": 0.05}

``id`` is chosen by the client and echoed verbatim; ``deadline`` (in
seconds, optional) bounds how long the client is willing to wait for
the response.  Error codes: ``busy`` (backpressure — retry after
``retry_after`` seconds), ``deadline`` (the per-request deadline
elapsed before the verdict was ready), ``shutting-down``,
``bad-request`` and ``error``.

Queued requests may carry a ``trace`` field (a correlation id chosen by
the client); the server opens one trace per queued request under that
id — or mints one — and echoes it back as ``trace`` on the response,
ok or error, so the client can fetch the full span tree from
``GET /tracez?trace_id=...``.

Results that carry a :class:`~repro.core.results.DCSatResult` encode it
with :func:`result_to_wire`; transactions travel in the same shape the
on-disk serialization uses (``{"id": ..., "facts": {rel: [[...]]}}``).
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields
from typing import Any, Mapping

from repro.core.results import DCSatResult, DCSatStats
from repro.errors import ServiceError
from repro.relational.transaction import Transaction

MAX_LINE_BYTES = 4 * 1024 * 1024

#: Operations that mutate or read monitor state and therefore go through
#: the server's bounded solve queue (subject to backpressure).
QUEUED_OPS = frozenset(
    {
        "register",
        "unregister",
        "issue",
        "commit",
        "forget",
        "absorb",
        "status",
        "status_all",
        "violated",
        "rebalance",
    }
)

#: Operations answered directly on the event loop.
IMMEDIATE_OPS = frozenset({"ping", "metrics", "constraints", "shards", "shutdown"})

#: Operations safe to resend after an ambiguous transport failure: they
#: read state without changing it, so a double delivery is harmless.
IDEMPOTENT_OPS = frozenset(
    {"ping", "status", "status_all", "violated", "constraints", "shards", "metrics"}
)

#: Operations that change monitor (or server) state.  Once the request
#: bytes may have left the process, a transport failure is *ambiguous* —
#: the server may have applied the op before the reply was lost — so
#: retry layers must never resend these blind.  The fabric router instead
#: resolves ambiguity by respawning the shard and replaying its journal.
MUTATING_OPS = frozenset(
    {
        "register",
        "unregister",
        "issue",
        "commit",
        "forget",
        "absorb",
        "rebalance",
        "shutdown",
    }
)


def is_idempotent(op: str) -> bool:
    """True when *op* may be resent after an ambiguous failure.  Unknown
    ops count as mutating — the safe default for a newer server's ops."""
    return op in IDEMPOTENT_OPS


def encode_line(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"malformed request line: {error}", code="bad-request")
    if not isinstance(payload, dict):
        raise ServiceError("request must be a JSON object", code="bad-request")
    return payload


def transaction_to_wire(tx: Transaction) -> dict:
    return {
        "id": tx.tx_id,
        "facts": {
            rel: sorted([list(values) for values in tx.tuples(rel)])
            for rel in sorted(tx.relation_names)
        },
    }


def transaction_from_wire(payload: Any) -> Transaction:
    if (
        not isinstance(payload, dict)
        or "id" not in payload
        or not isinstance(payload.get("facts"), dict)
    ):
        raise ServiceError(
            'transactions must look like {"id": ..., "facts": {rel: [[...]]}}',
            code="bad-request",
        )
    try:
        return Transaction(
            {
                rel: [tuple(values) for values in rows]
                for rel, rows in payload["facts"].items()
            },
            tx_id=payload["id"],
        )
    except (TypeError, ValueError) as error:
        raise ServiceError(f"malformed transaction: {error}", code="bad-request")


def stats_to_wire(stats: DCSatStats) -> dict:
    return {
        "algorithm": stats.algorithm,
        "engine": stats.engine,
        "short_circuit_used": stats.short_circuit_used,
        "short_circuit_result": stats.short_circuit_result,
        "components_total": stats.components_total,
        "components_pruned": stats.components_pruned,
        "max_component_size": stats.max_component_size,
        "cliques_enumerated": stats.cliques_enumerated,
        "worlds_checked": stats.worlds_checked,
        "evaluations": stats.evaluations,
        "parallel_tasks": stats.parallel_tasks,
        "components_reused": stats.components_reused,
        "witness_revalidations": stats.witness_revalidations,
        "dirty_components": stats.dirty_components,
        "elapsed_seconds": stats.elapsed_seconds,
    }


def result_to_wire(result: DCSatResult) -> dict:
    return {
        "satisfied": result.satisfied,
        "witness": sorted(result.witness) if result.witness is not None else None,
        "stats": stats_to_wire(result.stats),
    }


def stats_from_wire(payload: Mapping[str, Any]) -> DCSatStats:
    """Rebuild :class:`DCSatStats` from :func:`stats_to_wire` output.

    Unknown keys are ignored and missing ones default, so a newer
    router can read an older shard's stats (and vice versa).
    """
    known = {f.name for f in dataclass_fields(DCSatStats)}
    return DCSatStats(**{k: v for k, v in payload.items() if k in known})


def result_from_wire(payload: Mapping[str, Any]) -> DCSatResult:
    """Rebuild :class:`DCSatResult` from :func:`result_to_wire` output —
    what the fabric router does with every shard verdict, so results
    re-encode byte-identically when it answers its own clients."""
    witness = payload.get("witness")
    return DCSatResult(
        satisfied=bool(payload["satisfied"]),
        witness=frozenset(witness) if witness is not None else None,
        stats=stats_from_wire(payload.get("stats") or {}),
    )


def error_response(
    request_id: Any,
    message: str,
    code: str = "error",
    retry_after: float | None = None,
    trace: str | None = None,
) -> dict:
    response: dict = {"id": request_id, "ok": False, "error": message, "code": code}
    if retry_after is not None:
        response["retry_after"] = retry_after
    if trace is not None:
        response["trace"] = trace
    return response


def ok_response(
    request_id: Any,
    result: dict,
    trace: str | None = None,
    spans: list[dict] | None = None,
) -> dict:
    """*spans* (``Span.to_wire`` dicts) ride along when the request set
    ``export_spans`` — the fabric router grafts them into its own trace
    (:meth:`~repro.obs.trace.Tracer.adopt`), which is how one ``/tracez``
    tree spans the router *and* its shard subprocesses."""
    response: dict = {"id": request_id, "ok": True, "result": result}
    if trace is not None:
        response["trace"] = trace
    if spans is not None:
        response["spans"] = spans
    return response
