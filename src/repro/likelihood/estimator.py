"""Estimating the probability that a denial constraint is violated.

World model: every pending transaction is independently *offered* with
its model probability; the offered transactions are then appended in a
uniformly random order, each taken exactly when consistent with the
state built so far (the can-append relation).  The resulting set of
accepted transactions is a possible world by construction; order
resolves races between conflicting offers the way block inclusion does.

* :func:`exact_violation_probability` — enumerate offer subsets × orders
  (feasible for roughly a dozen pending transactions);
* :func:`estimate_violation_probability` — Monte-Carlo with a seeded RNG
  and a normal-approximation confidence interval.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.workspace import Workspace
from repro.errors import ReproError
from repro.likelihood.model import InclusionModel
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.evaluator import evaluate
from repro.relational.checking import can_extend


@dataclass(frozen=True)
class ViolationEstimate:
    """The estimated probability, with sampling metadata."""

    probability: float
    samples: int
    stderr: float

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """A normal-approximation CI (default 95%). Exact results have
        stderr 0 and collapse to a point."""
        low = max(0.0, self.probability - z * self.stderr)
        high = min(1.0, self.probability + z * self.stderr)
        return (low, high)


def _apply_order(
    workspace: Workspace, offered: list[str]
) -> frozenset[str]:
    """Append the offered transactions in order; return the accepted set."""
    constraints = workspace.db.constraints
    accepted: set[str] = set()
    workspace.set_active(accepted)
    progress = True
    remaining = list(offered)
    # A transaction rejected early may become appendable after a later
    # one supplies its inclusion-dependency parents, so sweep to fixpoint
    # while preserving the order-priority of earlier offers.
    while progress and remaining:
        progress = False
        leftover: list[str] = []
        for tx_id in remaining:
            if can_extend(
                workspace, constraints, workspace.transaction_facts(tx_id)
            ):
                accepted.add(tx_id)
                workspace.activate(tx_id)
                progress = True
            else:
                leftover.append(tx_id)
        remaining = leftover
    return frozenset(accepted)


def _violated_in(
    workspace: Workspace,
    query: ConjunctiveQuery | AggregateQuery,
    world: frozenset[str],
) -> bool:
    workspace.set_active(world)
    return evaluate(query, workspace)


def exact_violation_probability(
    db: BlockchainDatabase,
    query: ConjunctiveQuery | AggregateQuery,
    model: InclusionModel,
    pending_limit: int = 8,
) -> ViolationEstimate:
    """Exact ``P(q violated)`` by enumerating offers × arrival orders.

    Complexity is ``O(2^k · k!)`` in the number of pending transactions,
    so the limit is strict; larger instances should use
    :func:`estimate_violation_probability`.
    """
    tx_ids = list(db.pending_ids)
    if len(tx_ids) > pending_limit:
        raise ReproError(
            f"exact estimation limited to {pending_limit} pending txs; "
            f"got {len(tx_ids)} (use estimate_violation_probability)"
        )
    workspace = Workspace(db)
    violated_cache: dict[frozenset[str], bool] = {}

    def violated(world: frozenset[str]) -> bool:
        cached = violated_cache.get(world)
        if cached is None:
            cached = _violated_in(workspace, query, world)
            violated_cache[world] = cached
        return cached

    total = 0.0
    for mask in itertools.product([False, True], repeat=len(tx_ids)):
        offered = [tx for tx, bit in zip(tx_ids, mask) if bit]
        weight = 1.0
        for tx, bit in zip(tx_ids, mask):
            p = model.probability(tx)
            weight *= p if bit else (1.0 - p)
        if weight == 0.0:
            continue
        if not offered:
            if violated(frozenset()):
                total += weight
            continue
        orders = list(itertools.permutations(offered))
        hit = 0
        for order in orders:
            world = _apply_order(workspace, list(order))
            if violated(world):
                hit += 1
        total += weight * (hit / len(orders))
    workspace.clear_active()
    return ViolationEstimate(probability=total, samples=0, stderr=0.0)


def estimate_violation_probability(
    db: BlockchainDatabase,
    query: ConjunctiveQuery | AggregateQuery,
    model: InclusionModel,
    samples: int = 1000,
    seed: int = 0,
) -> ViolationEstimate:
    """Monte-Carlo ``P(q violated)`` with a seeded RNG."""
    if samples <= 0:
        raise ReproError("need at least one sample")
    rng = random.Random(seed)
    workspace = Workspace(db)
    tx_ids = list(db.pending_ids)
    hits = 0
    for _ in range(samples):
        offered = [tx for tx in tx_ids if rng.random() < model.probability(tx)]
        rng.shuffle(offered)
        world = _apply_order(workspace, offered)
        if _violated_in(workspace, query, world):
            hits += 1
    workspace.clear_active()
    p = hits / samples
    stderr = math.sqrt(max(p * (1.0 - p), 1e-12) / samples)
    return ViolationEstimate(probability=p, samples=samples, stderr=stderr)
