"""Inclusion models: per-transaction acceptance probabilities.

The paper observes that realistic probabilities are hard to pin down
(miners choose freely); these models are *estimations* in the spirit of
the future-work proposal.  The built-in one is logistic in the feerate —
higher-paying transactions are likelier to be mined — which matches the
fee-market intuition of the motivating example.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Protocol

from repro.errors import ReproError


class InclusionModel(Protocol):
    """Maps a pending transaction id to its inclusion probability."""

    def probability(self, tx_id: str) -> float:
        """P(the transaction is offered for inclusion), in [0, 1]."""


class UniformInclusion:
    """Every pending transaction is offered with the same probability."""

    def __init__(self, probability: float = 0.5):
        if not 0.0 <= probability <= 1.0:
            raise ReproError("inclusion probability must be in [0, 1]")
        self._probability = probability

    def probability(self, tx_id: str) -> float:
        return self._probability


class MappingInclusion:
    """Explicit per-transaction probabilities (with a default)."""

    def __init__(self, probabilities: Mapping[str, float], default: float = 0.5):
        for tx_id, p in probabilities.items():
            if not 0.0 <= p <= 1.0:
                raise ReproError(f"probability for {tx_id!r} out of [0, 1]: {p}")
        if not 0.0 <= default <= 1.0:
            raise ReproError("default probability must be in [0, 1]")
        self._probabilities = dict(probabilities)
        self._default = default

    def probability(self, tx_id: str) -> float:
        return self._probabilities.get(tx_id, self._default)


def _sigmoid(z: float) -> float:
    """Numerically stable logistic function."""
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    e = math.exp(z)
    return e / (1.0 + e)


def feerate_inclusion_model(
    feerates: Mapping[str, float],
    midpoint: float | None = None,
    steepness: float = 1.0,
) -> MappingInclusion:
    """A logistic-in-feerate model: ``P = σ(steepness · (rate − mid)/s)``.

    *midpoint* defaults to the median feerate, so roughly half the
    mempool is more-likely-in and half more-likely-out — a reasonable
    zero-knowledge prior for a congested fee market.  Rates are
    normalized by their median absolute deviation ``s`` so the model is
    insensitive to the fee unit (satoshis vs. coins).
    """
    if not feerates:
        raise ReproError("feerate model needs at least one transaction")
    ordered = sorted(feerates.values())
    if midpoint is None:
        midpoint = ordered[len(ordered) // 2]
    deviations = sorted(abs(rate - midpoint) for rate in ordered)
    scale = deviations[len(deviations) // 2] or 1.0
    probabilities: dict[str, float] = {}
    for tx_id, rate in feerates.items():
        z = steepness * (rate - midpoint) / scale
        probabilities[tx_id] = _sigmoid(z)
    return MappingInclusion(probabilities)


def model_from_callable(fn: Callable[[str], float]) -> InclusionModel:
    """Adapt a plain function into an inclusion model."""

    class _Fn:
        def probability(self, tx_id: str) -> float:
            return fn(tx_id)

    return _Fn()
