"""Weighted possible worlds (the paper's second future-work item).

Section 8 proposes studying denial-constraint satisfaction "when
weighting possible worlds by learning an estimation of their actual
likelihood".  This package implements a concrete instance: each pending
transaction gets an inclusion probability (e.g. a logistic function of
its feerate), worlds are drawn by offering each transaction
independently and appending the offers in a random order (consistency
permitting), and the quantity of interest becomes

    ``P(q is violated) = P(the drawn world satisfies q)``

instead of the paper's worst-case "violated in *some* world".  Exact
enumeration is provided for small pending sets and Monte-Carlo
estimation for larger ones.
"""

from repro.likelihood.model import (
    InclusionModel,
    UniformInclusion,
    feerate_inclusion_model,
)
from repro.likelihood.estimator import (
    ViolationEstimate,
    estimate_violation_probability,
    exact_violation_probability,
)

__all__ = [
    "InclusionModel",
    "UniformInclusion",
    "feerate_inclusion_model",
    "ViolationEstimate",
    "estimate_violation_probability",
    "exact_violation_probability",
]
