"""Compile denial constraints to SQL (the Postgres-style path).

Conjunctive queries become ``SELECT EXISTS(...)`` over a join of the
positive atoms, with ``_current = 1`` guards playing the paper's
``current`` column, ``NOT EXISTS`` subqueries for negated atoms, and
comparison predicates inlined.  Aggregate queries compile to a
``SELECT DISTINCT`` over the body's variables — the set ``H`` of
satisfying assignments — and the aggregate itself is computed by the
backend in Python, which keeps the bag semantics (including the
empty-bag-is-false rule) in exactly one place.

:func:`compile_query_worlds` is the batched twin: instead of reading
the world off the ``_current`` column, the statement is correlated
against two caller-provided CTEs —

* ``__repro_world_ids(world_id)`` — one row per candidate world;
* ``__repro_worlds(world_id, tx)`` — that world's active-set members —

and every ``_current = 1`` guard becomes "committed, or pending in
*this* row's world".  One statement then answers a whole batch of
worlds in a single round trip: the ``"exists"`` shape returns the ids
of violating worlds, the ``"rows"`` shape returns satisfying
assignments prefixed by their world id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.ast import (
    AggregateQuery,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Variable,
)
from repro.relational.schema import Schema

_OP_SQL = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: CTE names the multi-world compilation references; the backend binds
#: them with a ``WITH ... AS (VALUES ...)`` prologue per batch.
WORLDS_CTE = "__repro_worlds"
WORLD_IDS_CTE = "__repro_world_ids"
#: Alias of the ``WORLD_IDS_CTE`` row the statement is correlated on.
WORLD_ALIAS = "wi"


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier (relation or attribute name)."""
    return '"' + name.replace('"', '""') + '"'


@dataclass
class CompiledQuery:
    """A compiled denial constraint.

    ``kind`` is ``"exists"`` (conjunctive; the statement returns a single
    0/1 row) or ``"rows"`` (aggregate; the statement returns one row per
    satisfying assignment, with columns ordered as ``var_order``).
    """

    sql: str
    params: list = field(default_factory=list)
    kind: str = "exists"
    var_order: tuple[str, ...] = ()


class _Compilation:
    def __init__(self, schema: Schema, world_correlated: bool = False):
        self.schema = schema
        self.world_correlated = world_correlated
        self.conditions: list[str] = []
        self.params: list = []
        self.var_expr: dict[str, str] = {}
        self.from_items: list[str] = []
        self._alias_count = 0

    def _fresh_alias(self) -> str:
        alias = f"t{self._alias_count}"
        self._alias_count += 1
        return alias

    def _column(self, relation: str, position: int) -> str:
        attrs = self.schema[relation].attribute_names
        return quote_identifier(attrs[position])

    def _membership_guard(self, alias: str) -> str:
        """The per-row "belongs to the world under consideration" test.

        Single-world mode reads the materialized ``_current`` column;
        world-correlated mode re-derives it per candidate world: a row
        is in a world when it is committed (``_tx = ''``) or its
        pending transaction is among that world's active set.
        """
        if not self.world_correlated:
            return f"{alias}._current = 1"
        return (
            f"({alias}._tx = '' OR EXISTS (SELECT 1 FROM "
            f"{quote_identifier(WORLDS_CTE)} __w WHERE "
            f"__w.world_id = {WORLD_ALIAS}.world_id "
            f"AND __w.tx = {alias}._tx))"
        )

    def add_positive_atom(self, atom: Atom) -> None:
        alias = self._fresh_alias()
        self.from_items.append(f"{quote_identifier(atom.relation)} {alias}")
        self.conditions.append(self._membership_guard(alias))
        for position, term in enumerate(atom.terms):
            column = f"{alias}.{self._column(atom.relation, position)}"
            if isinstance(term, Constant):
                self.conditions.append(f"{column} = ?")
                self.params.append(term.value)
            else:
                bound = self.var_expr.get(term.name)
                if bound is None:
                    self.var_expr[term.name] = column
                else:
                    self.conditions.append(f"{column} = {bound}")

    def term_sql(self, term) -> str:
        if isinstance(term, Constant):
            self.params.append(term.value)
            return "?"
        expr = self.var_expr.get(term.name)
        if expr is None:
            raise QueryError(
                f"variable {term.name!r} is not bound by a positive atom"
            )
        return expr

    def add_comparison(self, comparison: Comparison) -> None:
        left = self.term_sql(comparison.left)
        op = _OP_SQL[comparison.op]
        right = self.term_sql(comparison.right)
        self.conditions.append(f"{left} {op} {right}")

    def add_negated_atom(self, atom: Atom) -> None:
        alias = self._fresh_alias()
        inner: list[str] = [self._membership_guard(alias)]
        for position, term in enumerate(atom.terms):
            column = f"{alias}.{self._column(atom.relation, position)}"
            inner.append(f"{column} = {self.term_sql(term)}")
        table = quote_identifier(atom.relation)
        self.conditions.append(
            f"NOT EXISTS (SELECT 1 FROM {table} {alias} WHERE "
            + " AND ".join(inner)
            + ")"
        )


def _compile_body(
    body: ConjunctiveQuery, schema: Schema, world_correlated: bool = False
) -> _Compilation:
    compilation = _Compilation(schema, world_correlated=world_correlated)
    for atom in body.positive_atoms:
        compilation.add_positive_atom(atom)
    for comparison in body.comparisons:
        compilation.add_comparison(comparison)
    for atom in body.negated_atoms:
        compilation.add_negated_atom(atom)
    return compilation


def compile_query(
    query: ConjunctiveQuery | AggregateQuery, schema: Schema
) -> CompiledQuery:
    """Compile a denial constraint against *schema*.

    See the module docstring for the two compilation shapes.
    """
    body = query.body if isinstance(query, AggregateQuery) else query
    compilation = _compile_body(body, schema)
    from_clause = ", ".join(compilation.from_items)
    where_clause = " AND ".join(compilation.conditions) or "1"

    if isinstance(query, ConjunctiveQuery):
        sql = (
            f"SELECT EXISTS(SELECT 1 FROM {from_clause} WHERE {where_clause})"
        )
        return CompiledQuery(sql=sql, params=compilation.params, kind="exists")

    variables = sorted(compilation.var_expr)
    if not variables:
        # A variable-free body has at most one satisfying assignment;
        # EXISTS answers whether the bag is empty.
        sql = (
            f"SELECT EXISTS(SELECT 1 FROM {from_clause} WHERE {where_clause})"
        )
        return CompiledQuery(sql=sql, params=compilation.params, kind="exists")

    select_list = ", ".join(
        f"{compilation.var_expr[name]} AS {quote_identifier(name)}"
        for name in variables
    )
    sql = (
        f"SELECT DISTINCT {select_list} FROM {from_clause} "
        f"WHERE {where_clause}"
    )
    return CompiledQuery(
        sql=sql,
        params=compilation.params,
        kind="rows",
        var_order=tuple(variables),
    )


def compile_query_worlds(
    query: ConjunctiveQuery | AggregateQuery, schema: Schema
) -> CompiledQuery:
    """Compile the batched, world-correlated form of a denial constraint.

    The statement references the :data:`WORLD_IDS_CTE` /
    :data:`WORLDS_CTE` tables (the caller prepends the ``WITH``
    prologue binding them — see ``SqliteBackend.evaluate_many``) and
    answers every candidate world in one round trip:

    * ``kind="exists"`` — one row per **violating** world:
      ``SELECT wi.world_id ... WHERE EXISTS(<body>)``;
    * ``kind="rows"`` — the satisfying assignments of every world at
      once, each row prefixed by its ``world_id`` (the backend groups
      them and applies the aggregate per world in Python).
    """
    body = query.body if isinstance(query, AggregateQuery) else query
    compilation = _compile_body(body, schema, world_correlated=True)
    from_clause = ", ".join(compilation.from_items)
    where_clause = " AND ".join(compilation.conditions) or "1"
    ids_table = f"{quote_identifier(WORLD_IDS_CTE)} {WORLD_ALIAS}"

    variables = (
        sorted(compilation.var_expr)
        if isinstance(query, AggregateQuery)
        else []
    )
    if not variables:
        # Conjunctive, or a variable-free aggregate body: per world the
        # answer is Boolean, so return the ids of worlds whose body is
        # non-empty.
        sql = (
            f"SELECT {WORLD_ALIAS}.world_id FROM {ids_table} "
            f"WHERE EXISTS(SELECT 1 FROM {from_clause} WHERE {where_clause})"
        )
        return CompiledQuery(sql=sql, params=compilation.params, kind="exists")

    select_list = ", ".join(
        f"{compilation.var_expr[name]} AS {quote_identifier(name)}"
        for name in variables
    )
    sql = (
        f"SELECT DISTINCT {WORLD_ALIAS}.world_id, {select_list} "
        f"FROM {ids_table}, {from_clause} WHERE {where_clause}"
    )
    return CompiledQuery(
        sql=sql,
        params=compilation.params,
        kind="rows",
        var_order=tuple(variables),
    )
