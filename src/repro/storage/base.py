"""The backend protocols: what the DCSat engine needs from storage.

Two surfaces:

* :class:`Backend` — the blocking protocol.  ``evaluate`` answers one
  world; ``evaluate_many`` answers a whole batch of worlds (the
  :class:`~repro.core.engine.BatchedEngine` hook).  Backends without a
  native batch path can delegate to :func:`evaluate_many_fallback`.
* :class:`AsyncBackend` — the coroutine twin, consumed by
  :class:`~repro.core.engine.AsyncEngine` so the service can run
  evaluations on its event loop.  :class:`AsyncBackendAdapter` lifts
  any synchronous backend onto this surface.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.query.ast import AggregateQuery, ConjunctiveQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.workspace import Workspace
    from repro.relational.transaction import Transaction


def evaluate_many_fallback(
    backend: "Backend",
    query: ConjunctiveQuery | AggregateQuery,
    actives: Sequence[frozenset[str]],
) -> list[bool]:
    """The default batch path: one ``evaluate`` round trip per world.

    Keeps every backend usable under the batched engine; backends that
    can amortize (e.g. sqlite's per-world CTE) override
    ``evaluate_many`` instead.
    """
    return [backend.evaluate(query, active) for active in actives]


@runtime_checkable
class Backend(Protocol):
    """Storage/evaluation backend used by :class:`~repro.core.checker.DCSatChecker`.

    The engine drives world construction (constraint checks, cliques)
    against the in-memory workspace; backends are responsible for the
    query-evaluation side — selecting the tuples of the active world and
    evaluating denial constraints over them.
    """

    def attach(self, workspace: "Workspace") -> None:
        """Bind to a workspace and load its current contents."""

    def evaluate(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        active: frozenset[str],
    ) -> bool:
        """Evaluate the query over the world ``R ∪ {facts of active}``."""

    def evaluate_many(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        actives: Sequence[frozenset[str]],
    ) -> list[bool]:
        """Evaluate the query over each world, positionally aligned."""

    def on_issue(self, tx: "Transaction") -> None:
        """A transaction was added to the pending set."""

    def on_commit(self, tx: "Transaction") -> None:
        """A pending transaction was committed into the current state."""

    def on_forget(self, tx: "Transaction") -> None:
        """A pending transaction was dropped without committing."""

    def close(self) -> None:
        """Release any resources held by the backend."""


@runtime_checkable
class AsyncBackend(Protocol):
    """The coroutine evaluation surface consumed by ``AsyncEngine``.

    Maintenance hooks stay synchronous — they are cheap bookkeeping on
    the request path — while the potentially I/O-bound evaluations are
    awaitable, so a server can interleave them with request handling.
    """

    def attach(self, workspace: "Workspace") -> None:
        """Bind to a workspace and load its current contents."""

    async def evaluate(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        active: frozenset[str],
    ) -> bool:
        """Evaluate the query over the world ``R ∪ {facts of active}``."""

    async def evaluate_many(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        actives: Sequence[frozenset[str]],
    ) -> list[bool]:
        """Evaluate the query over each world, positionally aligned."""

    def on_issue(self, tx: "Transaction") -> None:
        """A transaction was added to the pending set."""

    def on_commit(self, tx: "Transaction") -> None:
        """A pending transaction was committed into the current state."""

    def on_forget(self, tx: "Transaction") -> None:
        """A pending transaction was dropped without committing."""

    def close(self) -> None:
        """Release any resources held by the backend."""


class AsyncBackendAdapter:
    """Lift a synchronous :class:`Backend` onto the async surface.

    Evaluations run inline on the event-loop thread with a cooperative
    yield before each call — sqlite connections are bound to their
    creating thread, so hopping to a worker thread is not an option,
    and the in-memory backend is too cheap to justify one.  A backend
    with genuinely remote I/O should implement :class:`AsyncBackend`
    natively instead of going through this adapter.
    """

    def __init__(self, backend: Backend):
        self.sync_backend = backend

    def attach(self, workspace: "Workspace") -> None:
        self.sync_backend.attach(workspace)

    async def evaluate(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        active: frozenset[str],
    ) -> bool:
        await asyncio.sleep(0)
        return self.sync_backend.evaluate(query, active)

    async def evaluate_many(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        actives: Sequence[frozenset[str]],
    ) -> list[bool]:
        await asyncio.sleep(0)
        many = getattr(self.sync_backend, "evaluate_many", None)
        if many is not None:
            return many(query, actives)
        return evaluate_many_fallback(self.sync_backend, query, actives)

    def on_issue(self, tx: "Transaction") -> None:
        self.sync_backend.on_issue(tx)

    def on_commit(self, tx: "Transaction") -> None:
        self.sync_backend.on_commit(tx)

    def on_forget(self, tx: "Transaction") -> None:
        self.sync_backend.on_forget(tx)

    def close(self) -> None:
        self.sync_backend.close()

    def __repr__(self) -> str:
        return f"AsyncBackendAdapter({self.sync_backend!r})"
