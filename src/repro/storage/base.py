"""The backend protocol: what the DCSat engine needs from storage."""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.query.ast import AggregateQuery, ConjunctiveQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.workspace import Workspace
    from repro.relational.transaction import Transaction


@runtime_checkable
class Backend(Protocol):
    """Storage/evaluation backend used by :class:`~repro.core.checker.DCSatChecker`.

    The engine drives world construction (constraint checks, cliques)
    against the in-memory workspace; backends are responsible for the
    query-evaluation side — selecting the tuples of the active world and
    evaluating denial constraints over them.
    """

    def attach(self, workspace: "Workspace") -> None:
        """Bind to a workspace and load its current contents."""

    def evaluate(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        active: frozenset[str],
    ) -> bool:
        """Evaluate the query over the world ``R ∪ {facts of active}``."""

    def on_issue(self, tx: "Transaction") -> None:
        """A transaction was added to the pending set."""

    def on_commit(self, tx: "Transaction") -> None:
        """A pending transaction was committed into the current state."""

    def on_forget(self, tx: "Transaction") -> None:
        """A pending transaction was dropped without committing."""

    def close(self) -> None:
        """Release any resources held by the backend."""
