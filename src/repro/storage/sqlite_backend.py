"""SQLite backend: the paper's Postgres architecture on the stdlib engine.

Each relation becomes a table with its attribute columns plus

* ``_tx`` — provenance: ``''`` for committed tuples, else the pending
  transaction id;
* ``_current`` — the paper's Boolean ``current`` column: 1 when the
  tuple belongs to the possible world under consideration.

Selecting a possible world issues real ``UPDATE`` statements flipping
``_current`` for the transactions entering/leaving the world — the very
operation the paper reports as a dominant cost — and denial constraints
run as compiled SQL (:mod:`repro.storage.sql_compiler`).
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING, Sequence

from repro.errors import StorageError
from repro.query.ast import AggregateQuery, ConjunctiveQuery, Constant
from repro.storage.sql_compiler import (
    WORLD_IDS_CTE,
    WORLDS_CTE,
    CompiledQuery,
    compile_query,
    compile_query_worlds,
    quote_identifier,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.workspace import Workspace
    from repro.relational.transaction import Transaction

_TYPE_AFFINITY = {int: "INTEGER", float: "REAL", str: "TEXT", bytes: "BLOB", bool: "INTEGER"}

#: sqlite limits host parameters; stay well below the historical 999.
_PARAM_BUDGET = 800


class SqliteBackend:
    """Stores the workspace in sqlite and evaluates compiled SQL."""

    def __init__(self, path: str = ":memory:", create_indexes: bool = True):
        self._path = path
        self._create_indexes = create_indexes
        self._conn: sqlite3.Connection | None = None
        self._workspace: "Workspace | None" = None
        self._active: frozenset[str] = frozenset()
        # Keyed by the query's textual form: id()-based keys are unsafe
        # (CPython recycles addresses of collected query objects, which
        # would hand a later query a stale compiled plan).
        self._compiled: dict[str, CompiledQuery] = {}
        #: SELECT round trips issued for world evaluation — one per
        #: :meth:`evaluate` call, one per :meth:`evaluate_many` chunk.
        self.eval_roundtrips = 0
        #: ``executemany`` flip statements issued by :meth:`set_active`.
        self.flip_statements = 0

    # ------------------------------------------------------------------
    # Attachment / loading

    def attach(self, workspace: "Workspace") -> None:
        self._workspace = workspace
        # The service attaches on the main thread and evaluates on its
        # solver thread (one op at a time, never concurrently), so the
        # connection must be shareable across threads.
        self._conn = sqlite3.connect(self._path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode = MEMORY")
        self._conn.execute("PRAGMA synchronous = OFF")
        self._create_schema()
        self._bulk_load()
        self._active = frozenset()

    def _require(self) -> tuple[sqlite3.Connection, "Workspace"]:
        if self._conn is None or self._workspace is None:
            raise StorageError("sqlite backend is not attached to a workspace")
        return self._conn, self._workspace

    def _create_schema(self) -> None:
        conn, workspace = self._require()
        for rel_schema in workspace.base.schema:
            columns = []
            for attr in rel_schema.attributes:
                affinity = _TYPE_AFFINITY.get(attr.dtype, "")
                columns.append(
                    f"{quote_identifier(attr.name)} {affinity}".rstrip()
                )
            columns.append("_tx TEXT NOT NULL DEFAULT ''")
            columns.append("_current INTEGER NOT NULL DEFAULT 0")
            column_names = ", ".join(
                quote_identifier(a.name) for a in rel_schema.attributes
            )
            table = quote_identifier(rel_schema.name)
            conn.execute(
                f"CREATE TABLE {table} ({', '.join(columns)}, "
                f"UNIQUE ({column_names}, _tx))"
            )
            conn.execute(
                f"CREATE INDEX {quote_identifier('idx_' + rel_schema.name + '_tx')} "
                f"ON {table} (_tx)"
            )
            if self._create_indexes:
                for attr in rel_schema.attributes:
                    conn.execute(
                        f"CREATE INDEX "
                        f"{quote_identifier(f'idx_{rel_schema.name}_{attr.name}')} "
                        f"ON {table} ({quote_identifier(attr.name)})"
                    )
        conn.commit()

    def _insert_rows(self, relation: str, rows: list[tuple]) -> None:
        conn, workspace = self._require()
        arity = workspace.base[relation].schema.arity
        placeholders = ", ".join("?" for _ in range(arity + 2))
        conn.executemany(
            f"INSERT OR IGNORE INTO {quote_identifier(relation)} "
            f"VALUES ({placeholders})",
            rows,
        )

    def _bulk_load(self) -> None:
        conn, workspace = self._require()
        for rel in workspace.base:
            rows = [values + ("", 1) for values in rel]
            if rows:
                self._insert_rows(rel.name, rows)
        for tx in workspace.db.pending:
            self._load_transaction(tx)
        conn.commit()

    def _load_transaction(self, tx: "Transaction") -> None:
        by_relation: dict[str, list[tuple]] = {}
        for rel, values in tx:
            by_relation.setdefault(rel, []).append(values + (tx.tx_id, 0))
        for rel, rows in by_relation.items():
            self._insert_rows(rel, rows)

    # ------------------------------------------------------------------
    # Steady-state maintenance

    def on_issue(self, tx: "Transaction") -> None:
        conn, _ = self._require()
        self._load_transaction(tx)
        conn.commit()

    def on_commit(self, tx: "Transaction") -> None:
        conn, workspace = self._require()
        for rel in tx.relation_names:
            table = quote_identifier(rel)
            conn.execute(f"DELETE FROM {table} WHERE _tx = ?", (tx.tx_id,))
            rows = [values + ("", 1) for values in tx.tuples(rel)]
            self._insert_rows(rel, rows)
        conn.commit()
        if tx.tx_id in self._active:
            self._active = self._active - {tx.tx_id}

    def on_forget(self, tx: "Transaction") -> None:
        conn, _ = self._require()
        for rel in tx.relation_names:
            conn.execute(
                f"DELETE FROM {quote_identifier(rel)} WHERE _tx = ?", (tx.tx_id,)
            )
        conn.commit()
        if tx.tx_id in self._active:
            self._active = self._active - {tx.tx_id}

    # ------------------------------------------------------------------
    # World selection (the ``current`` column updates)

    def _flip(self, tx_ids: list[str], value: int) -> None:
        conn, workspace = self._require()
        rows = [(value, tx_id) for tx_id in tx_ids]
        # One executemany per table inside a single transaction: no
        # per-chunk statement rebuilding, no host-parameter limit.
        with conn:
            for name in workspace.base.relation_names:
                conn.executemany(
                    f"UPDATE {quote_identifier(name)} "
                    f"SET _current = ? WHERE _tx = ?",
                    rows,
                )
                self.flip_statements += 1

    def set_active(self, active: frozenset[str]) -> None:
        """Flip ``_current`` so exactly *active* pending txs are current."""
        added = sorted(active - self._active)
        removed = sorted(self._active - active)
        if added:
            self._flip(added, 1)
        if removed:
            self._flip(removed, 0)
        self._active = active

    # ------------------------------------------------------------------
    # Evaluation

    def _compiled_query(
        self, query: ConjunctiveQuery | AggregateQuery
    ) -> CompiledQuery:
        _, workspace = self._require()
        key = f"{type(query).__name__}:{query}"
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = compile_query(query, workspace.base.schema)
            self._compiled[key] = compiled
        return compiled

    def evaluate(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        active: frozenset[str],
    ) -> bool:
        conn, _ = self._require()
        self.set_active(active)
        compiled = self._compiled_query(query)
        self.eval_roundtrips += 1
        cursor = conn.execute(compiled.sql, compiled.params)
        if compiled.kind == "exists":
            exists = bool(cursor.fetchone()[0])
            if isinstance(query, ConjunctiveQuery):
                return exists
            # Variable-free aggregate body: the bag is empty or holds the
            # single constant row.
            if not exists:
                return False
            return self._aggregate_over(query, [{}])
        rows = cursor.fetchall()
        if not rows:
            return False
        assignments = [dict(zip(compiled.var_order, row)) for row in rows]
        return self._aggregate_over(query, assignments)

    # ------------------------------------------------------------------
    # Batched evaluation (the BatchedEngine hook)

    def _compiled_worlds_query(
        self, query: ConjunctiveQuery | AggregateQuery
    ) -> CompiledQuery:
        _, workspace = self._require()
        key = f"worlds:{type(query).__name__}:{query}"
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = compile_query_worlds(query, workspace.base.schema)
            self._compiled[key] = compiled
        return compiled

    def evaluate_many(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        actives: Sequence[frozenset[str]],
    ) -> list[bool]:
        """Answer a whole batch of worlds in one SQL round trip.

        Instead of N× ``set_active`` flip/evaluate cycles, the batch's
        active-sets are bound as ``VALUES`` CTEs and the
        world-correlated compilation (:func:`compile_query_worlds`)
        answers every world at once.  The ``_current`` column — and
        :attr:`_active` — are left untouched.  Batches whose host
        parameters would exceed sqlite's limit are split transparently.
        """
        actives = list(actives)
        if not actives:
            return []
        self._require()
        compiled = self._compiled_worlds_query(query)
        results = [False] * len(actives)
        base_cost = len(compiled.params)
        start = 0
        while start < len(actives):
            end = start + 1
            budget = base_cost + 2 * len(actives[start]) + 1
            while end < len(actives):
                cost = 2 * len(actives[end]) + 1
                if budget + cost > _PARAM_BUDGET:
                    break
                budget += cost
                end += 1
            self._evaluate_world_chunk(query, compiled, actives, start, end, results)
            start = end
        return results

    def _evaluate_world_chunk(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        compiled: CompiledQuery,
        actives: list[frozenset[str]],
        start: int,
        end: int,
        results: list[bool],
    ) -> None:
        conn, _ = self._require()
        member_params: list = []
        for world_id in range(start, end):
            for tx_id in sorted(actives[world_id]):
                member_params.extend((world_id, tx_id))
        if member_params:
            worlds_rows = ", ".join(
                "(?, ?)" for _ in range(len(member_params) // 2)
            )
            worlds_cte = (
                f"{quote_identifier(WORLDS_CTE)}(world_id, tx) "
                f"AS (VALUES {worlds_rows})"
            )
        else:
            # VALUES cannot be empty; bind a zero-row relation instead.
            worlds_cte = (
                f"{quote_identifier(WORLDS_CTE)}(world_id, tx) "
                f"AS (SELECT -1, '' WHERE 0)"
            )
        id_rows = list(range(start, end))
        ids_cte = (
            f"{quote_identifier(WORLD_IDS_CTE)}(world_id) "
            f"AS (VALUES {', '.join('(?)' for _ in id_rows)})"
        )
        sql = f"WITH {worlds_cte}, {ids_cte} {compiled.sql}"
        params = [*member_params, *id_rows, *compiled.params]
        self.eval_roundtrips += 1
        cursor = conn.execute(sql, params)
        if compiled.kind == "exists":
            violating = {row[0] for row in cursor.fetchall()}
            if isinstance(query, ConjunctiveQuery):
                for world_id in violating:
                    results[world_id] = True
            elif violating:
                # Variable-free aggregate body: every non-empty world
                # holds the same single constant row.
                verdict = self._aggregate_over(query, [{}])
                for world_id in violating:
                    results[world_id] = verdict
            return
        by_world: dict[int, list[dict[str, object]]] = {}
        for row in cursor.fetchall():
            by_world.setdefault(row[0], []).append(
                dict(zip(compiled.var_order, row[1:]))
            )
        for world_id, assignments in by_world.items():
            results[world_id] = self._aggregate_over(query, assignments)

    def _aggregate_over(
        self, query: AggregateQuery, assignments: list[dict[str, object]]
    ) -> bool:
        from repro.query.evaluator import _aggregate_value

        values = [
            tuple(
                term.value if isinstance(term, Constant) else assignment[term.name]
                for term in query.agg_terms
            )
            for assignment in assignments
        ]
        if not values:
            return False
        result = _aggregate_value(query.func, values)
        from repro.query.ast import Comparison

        return Comparison(
            Constant(result), query.op, Constant(query.threshold)
        ).holds(result, query.threshold)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._workspace = None
        self._compiled.clear()
