"""SQLite backend: the paper's Postgres architecture on the stdlib engine.

Each relation becomes a table with its attribute columns plus

* ``_tx`` — provenance: ``''`` for committed tuples, else the pending
  transaction id;
* ``_current`` — the paper's Boolean ``current`` column: 1 when the
  tuple belongs to the possible world under consideration.

Selecting a possible world issues real ``UPDATE`` statements flipping
``_current`` for the transactions entering/leaving the world — the very
operation the paper reports as a dominant cost — and denial constraints
run as compiled SQL (:mod:`repro.storage.sql_compiler`).
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.query.ast import AggregateQuery, ConjunctiveQuery, Constant
from repro.storage.sql_compiler import CompiledQuery, compile_query, quote_identifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.workspace import Workspace
    from repro.relational.transaction import Transaction

_TYPE_AFFINITY = {int: "INTEGER", float: "REAL", str: "TEXT", bytes: "BLOB", bool: "INTEGER"}

#: sqlite limits host parameters; stay well below the historical 999.
_CHUNK = 500


class SqliteBackend:
    """Stores the workspace in sqlite and evaluates compiled SQL."""

    def __init__(self, path: str = ":memory:", create_indexes: bool = True):
        self._path = path
        self._create_indexes = create_indexes
        self._conn: sqlite3.Connection | None = None
        self._workspace: "Workspace | None" = None
        self._active: frozenset[str] = frozenset()
        # Keyed by the query's textual form: id()-based keys are unsafe
        # (CPython recycles addresses of collected query objects, which
        # would hand a later query a stale compiled plan).
        self._compiled: dict[str, CompiledQuery] = {}

    # ------------------------------------------------------------------
    # Attachment / loading

    def attach(self, workspace: "Workspace") -> None:
        self._workspace = workspace
        self._conn = sqlite3.connect(self._path)
        self._conn.execute("PRAGMA journal_mode = MEMORY")
        self._conn.execute("PRAGMA synchronous = OFF")
        self._create_schema()
        self._bulk_load()
        self._active = frozenset()

    def _require(self) -> tuple[sqlite3.Connection, "Workspace"]:
        if self._conn is None or self._workspace is None:
            raise StorageError("sqlite backend is not attached to a workspace")
        return self._conn, self._workspace

    def _create_schema(self) -> None:
        conn, workspace = self._require()
        for rel_schema in workspace.base.schema:
            columns = []
            for attr in rel_schema.attributes:
                affinity = _TYPE_AFFINITY.get(attr.dtype, "")
                columns.append(
                    f"{quote_identifier(attr.name)} {affinity}".rstrip()
                )
            columns.append("_tx TEXT NOT NULL DEFAULT ''")
            columns.append("_current INTEGER NOT NULL DEFAULT 0")
            column_names = ", ".join(
                quote_identifier(a.name) for a in rel_schema.attributes
            )
            table = quote_identifier(rel_schema.name)
            conn.execute(
                f"CREATE TABLE {table} ({', '.join(columns)}, "
                f"UNIQUE ({column_names}, _tx))"
            )
            conn.execute(
                f"CREATE INDEX {quote_identifier('idx_' + rel_schema.name + '_tx')} "
                f"ON {table} (_tx)"
            )
            if self._create_indexes:
                for attr in rel_schema.attributes:
                    conn.execute(
                        f"CREATE INDEX "
                        f"{quote_identifier(f'idx_{rel_schema.name}_{attr.name}')} "
                        f"ON {table} ({quote_identifier(attr.name)})"
                    )
        conn.commit()

    def _insert_rows(self, relation: str, rows: list[tuple]) -> None:
        conn, workspace = self._require()
        arity = workspace.base[relation].schema.arity
        placeholders = ", ".join("?" for _ in range(arity + 2))
        conn.executemany(
            f"INSERT OR IGNORE INTO {quote_identifier(relation)} "
            f"VALUES ({placeholders})",
            rows,
        )

    def _bulk_load(self) -> None:
        conn, workspace = self._require()
        for rel in workspace.base:
            rows = [values + ("", 1) for values in rel]
            if rows:
                self._insert_rows(rel.name, rows)
        for tx in workspace.db.pending:
            self._load_transaction(tx)
        conn.commit()

    def _load_transaction(self, tx: "Transaction") -> None:
        by_relation: dict[str, list[tuple]] = {}
        for rel, values in tx:
            by_relation.setdefault(rel, []).append(values + (tx.tx_id, 0))
        for rel, rows in by_relation.items():
            self._insert_rows(rel, rows)

    # ------------------------------------------------------------------
    # Steady-state maintenance

    def on_issue(self, tx: "Transaction") -> None:
        conn, _ = self._require()
        self._load_transaction(tx)
        conn.commit()

    def on_commit(self, tx: "Transaction") -> None:
        conn, workspace = self._require()
        for rel in tx.relation_names:
            table = quote_identifier(rel)
            conn.execute(f"DELETE FROM {table} WHERE _tx = ?", (tx.tx_id,))
            rows = [values + ("", 1) for values in tx.tuples(rel)]
            self._insert_rows(rel, rows)
        conn.commit()
        if tx.tx_id in self._active:
            self._active = self._active - {tx.tx_id}

    def on_forget(self, tx: "Transaction") -> None:
        conn, _ = self._require()
        for rel in tx.relation_names:
            conn.execute(
                f"DELETE FROM {quote_identifier(rel)} WHERE _tx = ?", (tx.tx_id,)
            )
        conn.commit()
        if tx.tx_id in self._active:
            self._active = self._active - {tx.tx_id}

    # ------------------------------------------------------------------
    # World selection (the ``current`` column updates)

    def _flip(self, tx_ids: list[str], value: int) -> None:
        conn, workspace = self._require()
        tables = [quote_identifier(name) for name in workspace.base.relation_names]
        for start in range(0, len(tx_ids), _CHUNK):
            chunk = tx_ids[start : start + _CHUNK]
            placeholders = ", ".join("?" for _ in chunk)
            for table in tables:
                conn.execute(
                    f"UPDATE {table} SET _current = ? "
                    f"WHERE _tx IN ({placeholders})",
                    [value, *chunk],
                )

    def set_active(self, active: frozenset[str]) -> None:
        """Flip ``_current`` so exactly *active* pending txs are current."""
        added = sorted(active - self._active)
        removed = sorted(self._active - active)
        if added:
            self._flip(added, 1)
        if removed:
            self._flip(removed, 0)
        self._active = active

    # ------------------------------------------------------------------
    # Evaluation

    def _compiled_query(
        self, query: ConjunctiveQuery | AggregateQuery
    ) -> CompiledQuery:
        _, workspace = self._require()
        key = f"{type(query).__name__}:{query}"
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = compile_query(query, workspace.base.schema)
            self._compiled[key] = compiled
        return compiled

    def evaluate(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        active: frozenset[str],
    ) -> bool:
        conn, _ = self._require()
        self.set_active(active)
        compiled = self._compiled_query(query)
        cursor = conn.execute(compiled.sql, compiled.params)
        if compiled.kind == "exists":
            exists = bool(cursor.fetchone()[0])
            if isinstance(query, ConjunctiveQuery):
                return exists
            # Variable-free aggregate body: the bag is empty or holds the
            # single constant row.
            if not exists:
                return False
            return self._aggregate_over(query, [{}])
        rows = cursor.fetchall()
        if not rows:
            return False
        assignments = [dict(zip(compiled.var_order, row)) for row in rows]
        return self._aggregate_over(query, assignments)

    def _aggregate_over(
        self, query: AggregateQuery, assignments: list[dict[str, object]]
    ) -> bool:
        from repro.query.evaluator import _aggregate_value

        values = [
            tuple(
                term.value if isinstance(term, Constant) else assignment[term.name]
                for term in query.agg_terms
            )
            for assignment in assignments
        ]
        if not values:
            return False
        result = _aggregate_value(query.func, values)
        from repro.query.ast import Comparison

        return Comparison(
            Constant(result), query.op, Constant(query.threshold)
        ).holds(result, query.threshold)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._workspace = None
        self._compiled.clear()
