"""The in-memory backend: evaluate straight off the overlay workspace."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import StorageError
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.evaluator import evaluate
from repro.storage.base import evaluate_many_fallback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.workspace import Workspace
    from repro.relational.transaction import Transaction


class MemoryBackend:
    """Evaluates denial constraints with the Python evaluator over the
    workspace; the active set plays the role of the ``current`` column,
    so world switches are O(1)."""

    def __init__(self):
        self._workspace: "Workspace | None" = None

    def attach(self, workspace: "Workspace") -> None:
        self._workspace = workspace

    def _require_workspace(self) -> "Workspace":
        if self._workspace is None:
            raise StorageError("backend is not attached to a workspace")
        return self._workspace

    def evaluate(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        active: frozenset[str],
    ) -> bool:
        workspace = self._require_workspace()
        workspace.set_active(active)
        return evaluate(query, workspace)

    def evaluate_many(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        actives: Sequence[frozenset[str]],
    ) -> list[bool]:
        # World switches are O(1) here; there is nothing to amortize.
        return evaluate_many_fallback(self, query, actives)

    def on_issue(self, tx: "Transaction") -> None:
        pass  # the workspace already indexes pending transactions

    def on_commit(self, tx: "Transaction") -> None:
        pass

    def on_forget(self, tx: "Transaction") -> None:
        pass

    def close(self) -> None:
        self._workspace = None
