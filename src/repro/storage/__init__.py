"""Storage backends for the DCSat engine.

The paper's implementation stores the chain and the mempool in Postgres,
marks the tuples of the possible world under consideration with a
Boolean ``current`` column, and evaluates denial constraints with SQL.
This package reproduces that architecture with two interchangeable
backends:

* :class:`MemoryBackend` — pure-Python evaluation over the overlay
  workspace (the active set *is* the ``current`` column);
* :class:`SqliteBackend` — a real SQL engine (stdlib sqlite3, standing
  in for Postgres): tables carry a ``_current`` flag maintained with
  UPDATE statements, and denial constraints are compiled to SQL; its
  ``evaluate_many`` answers a whole batch of worlds in one round trip
  via a per-world active-set CTE (the
  :class:`~repro.core.engine.BatchedEngine` hook).

:class:`AsyncBackend` is the coroutine twin of the protocol, and
:class:`AsyncBackendAdapter` lifts either backend onto it for the
:class:`~repro.core.engine.AsyncEngine` (see ``docs/ENGINES.md``).
"""

import os

from repro.storage.base import (
    AsyncBackend,
    AsyncBackendAdapter,
    Backend,
    evaluate_many_fallback,
)
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite_backend import SqliteBackend
from repro.storage.sql_compiler import compile_query, compile_query_worlds

__all__ = [
    "AsyncBackend",
    "AsyncBackendAdapter",
    "Backend",
    "MemoryBackend",
    "SqliteBackend",
    "compile_query",
    "compile_query_worlds",
    "evaluate_many_fallback",
    "make_backend",
    "resolve_backend_name",
]


def resolve_backend_name(backend: str | None) -> str:
    """An explicit backend name, or the ``REPRO_BACKEND`` env default."""
    if backend is not None:
        return backend
    return os.environ.get("REPRO_BACKEND", "memory")


def make_backend(name: str | None = None) -> Backend:
    """Build a backend from its name (``"memory"`` or ``"sqlite"``).

    ``None`` falls back to the ``REPRO_BACKEND`` environment variable
    (default ``"memory"``) — the hook CI uses to run the whole suite
    over sqlite without touching each test.
    """
    name = resolve_backend_name(name)
    if name == "memory":
        return MemoryBackend()
    if name == "sqlite":
        return SqliteBackend()
    from repro.errors import StorageError

    raise StorageError(f"unknown backend {name!r} (expected 'memory' or 'sqlite')")
