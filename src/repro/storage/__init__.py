"""Storage backends for the DCSat engine.

The paper's implementation stores the chain and the mempool in Postgres,
marks the tuples of the possible world under consideration with a
Boolean ``current`` column, and evaluates denial constraints with SQL.
This package reproduces that architecture with two interchangeable
backends:

* :class:`MemoryBackend` — pure-Python evaluation over the overlay
  workspace (the active set *is* the ``current`` column);
* :class:`SqliteBackend` — a real SQL engine (stdlib sqlite3, standing
  in for Postgres): tables carry a ``_current`` flag maintained with
  UPDATE statements, and denial constraints are compiled to SQL.
"""

from repro.storage.base import Backend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite_backend import SqliteBackend
from repro.storage.sql_compiler import compile_query

__all__ = ["Backend", "MemoryBackend", "SqliteBackend", "compile_query"]


def make_backend(name: str) -> Backend:
    """Build a backend from its name (``"memory"`` or ``"sqlite"``)."""
    if name == "memory":
        return MemoryBackend()
    if name == "sqlite":
        return SqliteBackend()
    from repro.errors import StorageError

    raise StorageError(f"unknown backend {name!r} (expected 'memory' or 'sqlite')")
