"""Explaining DCSat verdicts: *why* can the constraint be violated?

A bare ``satisfied=False`` is hard to act on.  :func:`explain_violation`
re-evaluates the query inside the witness world and reports the
satisfying assignment, the facts it matched, and each fact's provenance
(committed, or which pending transaction supplies it) — enough for a
user to see exactly which broadcast transactions combine into the bad
outcome, and therefore which one to contradict
(:mod:`repro.core.contradiction`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.results import DCSatResult
from repro.core.workspace import Workspace
from repro.errors import ReproError
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.evaluator import evaluate, iter_matches


@dataclass(frozen=True)
class ExplainedFact:
    """One matched fact with its provenance."""

    relation: str
    values: tuple
    source: str  # "committed" or a pending transaction id

    def __str__(self) -> str:
        return f"{self.relation}{self.values} [{self.source}]"


@dataclass
class Explanation:
    """The witness world unpacked into actionable parts."""

    witness: frozenset[str]
    assignment: dict[str, object] = field(default_factory=dict)
    facts: list[ExplainedFact] = field(default_factory=list)
    aggregate_value: object = None
    note: str = ""

    @property
    def culprit_transactions(self) -> frozenset[str]:
        """The pending transactions actually used by the match — often a
        small subset of the witness world."""
        return frozenset(
            fact.source for fact in self.facts if fact.source != "committed"
        )

    def render(self) -> str:
        lines = [f"witness world: {sorted(self.witness) or '(current state)'}"]
        if self.assignment:
            bound = ", ".join(
                f"{name}={value!r}" for name, value in sorted(self.assignment.items())
            )
            lines.append(f"assignment: {bound}")
        if self.aggregate_value is not None:
            lines.append(f"aggregate value: {self.aggregate_value!r}")
        for fact in self.facts:
            lines.append(f"  uses {fact}")
        if self.note:
            lines.append(self.note)
        return "\n".join(lines)


def explain_violation(
    db: BlockchainDatabase,
    query: ConjunctiveQuery | AggregateQuery,
    result: DCSatResult,
) -> Explanation:
    """Unpack a ``satisfied=False`` verdict into an :class:`Explanation`.

    Raises :class:`ReproError` for satisfied results (nothing to
    explain) or when the witness world unexpectedly fails to satisfy the
    query (a solver bug — surfacing it loudly is the point).
    """
    if result.satisfied:
        raise ReproError("the constraint is satisfied; nothing to explain")
    if result.witness is None:
        raise ReproError("the result carries no witness world")
    workspace = Workspace(db)
    workspace.set_active(result.witness)

    if isinstance(query, AggregateQuery):
        if not evaluate(query, workspace):
            raise ReproError(
                "witness world does not satisfy the aggregate query — "
                "solver inconsistency"
            )
        from repro.query.evaluator import _aggregate_value
        from repro.query.ast import Constant

        rows = []
        facts: list[ExplainedFact] = []
        for assignment, matched in iter_matches(query, workspace):
            rows.append(
                tuple(
                    term.value if isinstance(term, Constant) else assignment[term.name]
                    for term in query.agg_terms
                )
            )
            for relation, values in matched:
                facts.append(_provenance(workspace, relation, values))
        explanation = Explanation(
            witness=result.witness,
            facts=_dedupe(facts),
            aggregate_value=_aggregate_value(query.func, rows),
            note=(
                f"{query.func}({len(rows)} assignments) {query.op} "
                f"{query.threshold!r} holds in this world"
            ),
        )
        workspace.clear_active()
        return explanation

    for assignment, matched in iter_matches(query, workspace):
        facts = [
            _provenance(workspace, relation, values)
            for relation, values in matched
        ]
        explanation = Explanation(
            witness=result.witness,
            assignment=dict(assignment),
            facts=_dedupe(facts),
        )
        workspace.clear_active()
        return explanation
    workspace.clear_active()
    raise ReproError(
        "witness world does not satisfy the query — solver inconsistency"
    )


def _provenance(
    workspace: Workspace, relation: str, values: tuple
) -> ExplainedFact:
    if workspace.fact_in_base(relation, values):
        return ExplainedFact(relation, values, "committed")
    providers = workspace.providers_of(relation, values) & workspace.active
    source = sorted(providers)[0] if providers else "unknown"
    return ExplainedFact(relation, values, source)


def _dedupe(facts: list[ExplainedFact]) -> list[ExplainedFact]:
    seen: set[ExplainedFact] = set()
    unique: list[ExplainedFact] = []
    for fact in facts:
        if fact not in seen:
            seen.add(fact)
            unique.append(fact)
    return unique
