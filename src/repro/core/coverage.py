"""The ``Covers(R, T', q)`` constant-coverage test of OptDCSat.

A connected component of the ind-q-transaction graph is only worth
exploring when, together with the current state, its transactions can
supply a matching tuple for every constant pattern appearing in the
query's positive atoms (Section 6.2)."""

from __future__ import annotations

from typing import Iterable

from repro.core.workspace import Workspace
from repro.query.analysis import ConstantPattern, constant_patterns
from repro.query.ast import AggregateQuery, ConjunctiveQuery


def covers(
    workspace: Workspace,
    component: Iterable[str],
    patterns: tuple[ConstantPattern, ...],
) -> bool:
    """Does ``(R, component)`` cover every constant pattern?"""
    component_set = None
    for pattern in patterns:
        if workspace.base[pattern.relation].lookup(pattern.positions, pattern.values):
            continue
        contributors = workspace.pending_projections(
            pattern.relation, pattern.positions
        ).get(pattern.values)
        if not contributors:
            return False
        if component_set is None:
            component_set = set(component)
        if not (contributors & component_set):
            return False
    return True


def covers_query(
    workspace: Workspace,
    component: Iterable[str],
    query: ConjunctiveQuery | AggregateQuery,
) -> bool:
    """Convenience wrapper deriving the patterns from the query."""
    return covers(workspace, component, constant_patterns(query))
