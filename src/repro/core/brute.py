"""Brute-force reference solver: enumerate ``Poss(D)`` and evaluate.

Exponential in the number of pending transactions — the oracle against
which the practical algorithms are validated, and the fallback for
non-monotone denial constraints on small instances (where maximal worlds
do not suffice).

The search is breadth-first over extendable worlds; each frontier level
is one evaluation plan handed to the
:class:`~repro.core.engine.EvaluationEngine` (so the batched engine
answers a whole level per backend round trip), and the frontier is only
extended once the level is known violation-free.
"""

from __future__ import annotations

from repro.core.engine import EvaluationEngine, as_engine
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.relational.checking import can_extend

#: Refuse to enumerate beyond this many pending transactions by default.
DEFAULT_PENDING_LIMIT = 20


def _check_limit(workspace: Workspace, pending_limit: int) -> None:
    pending = len(workspace.db.pending_ids)
    if pending > pending_limit:
        raise AlgorithmError(
            f"brute-force DCSat refused: {pending} pending "
            f"transactions exceed the limit of {pending_limit}"
        )


def _extend_frontier(
    workspace: Workspace,
    frontier: list[frozenset[str]],
    seen: set[frozenset[str]],
) -> list[frozenset[str]]:
    """All unseen one-transaction extensions of the frontier's worlds."""
    db = workspace.db
    next_frontier: list[frozenset[str]] = []
    for world in frontier:
        for tx_id in db.pending_ids:
            if tx_id in world:
                continue
            candidate = world | {tx_id}
            if candidate in seen:
                continue
            workspace.set_active(world)
            if can_extend(
                workspace, db.constraints, workspace.transaction_facts(tx_id)
            ):
                seen.add(candidate)
                next_frontier.append(candidate)
    return next_frontier


def brute_dcsat(
    workspace: Workspace,
    query: ConjunctiveQuery | AggregateQuery,
    evaluate_world,
    pending_limit: int = DEFAULT_PENDING_LIMIT,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """Decide ``D |= ¬q`` by checking the query over every possible world.

    Sound and complete for *any* Boolean query (monotone or not).
    Raises :class:`AlgorithmError` when the pending set exceeds
    *pending_limit* (the world count can be exponential in it).
    """
    _check_limit(workspace, pending_limit)
    engine = as_engine(evaluate_world)
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "brute"

    seen: set[frozenset[str]] = {frozenset()}
    frontier: list[frozenset[str]] = [frozenset()]
    while frontier:
        witness = engine.sweep(query, frontier, stats=stats)
        if witness is not None:
            return DCSatResult(satisfied=False, witness=witness, stats=stats)
        frontier = _extend_frontier(workspace, frontier, seen)
    return DCSatResult(satisfied=True, stats=stats)


async def brute_dcsat_async(
    workspace: Workspace,
    query: ConjunctiveQuery | AggregateQuery,
    engine: EvaluationEngine,
    pending_limit: int = DEFAULT_PENDING_LIMIT,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """:func:`brute_dcsat` on the engine's coroutine surface."""
    _check_limit(workspace, pending_limit)
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "brute"

    seen: set[frozenset[str]] = {frozenset()}
    frontier: list[frozenset[str]] = [frozenset()]
    while frontier:
        witness = await engine.sweep_async(query, frontier, stats=stats)
        if witness is not None:
            return DCSatResult(satisfied=False, witness=witness, stats=stats)
        frontier = _extend_frontier(workspace, frontier, seen)
    return DCSatResult(satisfied=True, stats=stats)
