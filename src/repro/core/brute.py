"""Brute-force reference solver: enumerate ``Poss(D)`` and evaluate.

Exponential in the number of pending transactions — the oracle against
which the practical algorithms are validated, and the fallback for
non-monotone denial constraints on small instances (where maximal worlds
do not suffice).
"""

from __future__ import annotations

from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.relational.checking import can_extend

#: Refuse to enumerate beyond this many pending transactions by default.
DEFAULT_PENDING_LIMIT = 20


def brute_dcsat(
    workspace: Workspace,
    query: ConjunctiveQuery | AggregateQuery,
    evaluate_world,
    pending_limit: int = DEFAULT_PENDING_LIMIT,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """Decide ``D |= ¬q`` by checking the query over every possible world.

    Sound and complete for *any* Boolean query (monotone or not).
    Raises :class:`AlgorithmError` when the pending set exceeds
    *pending_limit* (the world count can be exponential in it).
    """
    db = workspace.db
    if len(db.pending_ids) > pending_limit:
        raise AlgorithmError(
            f"brute-force DCSat refused: {len(db.pending_ids)} pending "
            f"transactions exceed the limit of {pending_limit}"
        )
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "brute"

    seen: set[frozenset[str]] = {frozenset()}
    frontier: list[frozenset[str]] = [frozenset()]
    while frontier:
        next_frontier: list[frozenset[str]] = []
        for world in frontier:
            stats.worlds_checked += 1
            stats.evaluations += 1
            if evaluate_world(query, world):
                return DCSatResult(satisfied=False, witness=world, stats=stats)
            workspace.set_active(world)
            for tx_id in db.pending_ids:
                if tx_id in world:
                    continue
                candidate = world | {tx_id}
                if candidate in seen:
                    continue
                workspace.set_active(world)
                if can_extend(
                    workspace, db.constraints, workspace.transaction_facts(tx_id)
                ):
                    seen.add(candidate)
                    next_frontier.append(candidate)
        frontier = next_frontier
    return DCSatResult(satisfied=True, stats=stats)
