"""Batched denial-constraint checking: one world sweep, many constraints.

A node monitoring *k* constraints would pay for *k* independent clique
enumerations with the paper's algorithms.  Because NaiveDCSat's world
construction is query-independent, all still-undecided constraints can
be evaluated against each maximal world in a single sweep: worst-case
work is one enumeration plus ``k`` evaluations per world, and each
constraint still benefits individually from the state check and the
monotone short-circuit.
"""

from __future__ import annotations

import time

from repro.core.engine import as_engine
from repro.core.fd_graph import FdTransactionGraph
from repro.core.possible_worlds import get_maximal
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.query.analysis import is_monotone
from repro.query.ast import AggregateQuery, ConjunctiveQuery

Query = ConjunctiveQuery | AggregateQuery


def batch_dcsat(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    queries: list[Query],
    evaluate_world,
    assume_nonnegative_sums: bool = False,
    short_circuit: bool = True,
    pivot: bool = True,
) -> list[DCSatResult]:
    """Decide ``D |= ¬q`` for every monotone query in one clique sweep.

    Results are positionally aligned with *queries*.  Raises
    :class:`AlgorithmError` when a query is not (verifiably) monotone.
    """
    for query in queries:
        if not is_monotone(query, assume_nonnegative_sums):
            raise AlgorithmError(
                f"batch checking requires monotone queries; {query!s} is not"
            )
    engine = as_engine(evaluate_world)
    evaluate_world = engine.evaluate
    started = time.perf_counter()
    results: list[DCSatResult | None] = [None] * len(queries)
    stats_list = [
        DCSatStats(algorithm="batch-naive", engine=engine.name) for _ in queries
    ]

    # Per-query fast paths: the current state, then the overlay.
    open_indexes: list[int] = []
    all_active = frozenset(workspace.db.pending_ids)
    for index, query in enumerate(queries):
        stats = stats_list[index]
        stats.evaluations += 1
        if evaluate_world(query, frozenset()):
            results[index] = DCSatResult(
                satisfied=False, witness=frozenset(), stats=stats
            )
            continue
        if short_circuit:
            stats.evaluations += 1
            stats.short_circuit_used = True
            if not evaluate_world(query, all_active):
                stats.short_circuit_result = True
                results[index] = DCSatResult(satisfied=True, stats=stats)
                continue
            stats.short_circuit_result = False
        open_indexes.append(index)

    # One sweep over maximal worlds for everything still open.
    if open_indexes:
        for clique in fd_graph.maximal_cliques(pivot=pivot):
            world = get_maximal(workspace, clique)
            still_open: list[int] = []
            for index in open_indexes:
                stats = stats_list[index]
                stats.cliques_enumerated += 1
                stats.worlds_checked += 1
                stats.evaluations += 1
                if evaluate_world(queries[index], world):
                    results[index] = DCSatResult(
                        satisfied=False, witness=world, stats=stats
                    )
                else:
                    still_open.append(index)
            open_indexes = still_open
            if not open_indexes:
                break
        for index in open_indexes:
            results[index] = DCSatResult(satisfied=True, stats=stats_list[index])

    elapsed = time.perf_counter() - started
    for index, result in enumerate(results):
        assert result is not None
        result.stats.elapsed_seconds = elapsed
    workspace.clear_active()
    return [result for result in results if result is not None]
