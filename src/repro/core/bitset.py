"""Dense transaction interning and machine-word clique sweeps.

The ``2^K`` maximal-clique sweep dominates DCSat cost (Figures 4–5),
and the set-based machinery spends it manipulating Python sets of
transaction-id strings: every Bron–Kerbosch frame allocates new sets,
every membership test hashes a string.  This module re-expresses the
structures the sweep touches as integer bitmasks over *interned*
transactions:

* :class:`TxInterner` maps pending transaction ids to dense integer
  slots, stable across steady-state add/remove with lowest-slot reuse,
  so masks stay as narrow as the peak concurrent population;
* :class:`BitsetFdGraph` is :class:`~repro.core.fd_graph.FdTransactionGraph`
  with the conflict *complement* maintained incrementally as per-slot
  masks — free/contested classification, pool restriction and the
  ind-component ∩ nodes intersection become single AND/OR sweeps;
* :func:`mask_bron_kerbosch` runs Bron–Kerbosch with Tomita pivoting as
  shift/and/or loops over pure-Python ``int`` masks, with an optional
  numpy fast path for the pivot's popcount scan on wide graphs.

Parity is the design constraint, not an afterthought: the mask sweep
mirrors the canonical ordering of
:func:`repro.graphs.cliques.bron_kerbosch` frame for frame (ascending
candidate order, lowest-rank pivot tie-break), so
:class:`BitsetFdGraph.maximal_cliques` emits the *identical* clique
sequence and the evaluation plans consumed by the engines
(:mod:`repro.core.engine`) are byte-identical — same frozenset worlds,
same order, same :class:`~repro.core.results.DCSatStats`.  The
engine×backend parity suite pins this.

Select the planner per checker (``DCSatChecker(planner="bitset")``),
per CLI invocation (``repro check --planner bitset``) or process-wide
via ``REPRO_BITSET=1``.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.fd_graph import FdTransactionGraph
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError

try:  # optional: the pivot scan's vectorized popcount path
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into CI images
    _np = None

#: Contested-node count from which the numpy pivot path pays for its
#: int → array conversions.  Below it, pure ``int.bit_count`` loops win.
NUMPY_MIN_NODES = 64


class TxInterner:
    """Dense integer slots for pending transaction ids.

    A slot is stable for as long as its transaction stays interned;
    released slots are reused lowest-first, so a long-running monitor
    under mempool churn keeps mask width bounded by the *peak*
    concurrent population instead of growing with total traffic.
    """

    __slots__ = ("_slot_of", "_id_of", "_free")

    def __init__(self) -> None:
        self._slot_of: dict[str, int] = {}
        self._id_of: list[str | None] = []
        self._free: list[int] = []  # min-heap of released slots

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._slot_of

    @property
    def capacity(self) -> int:
        """Mask width in bits: the highest slot count ever live at once."""
        return len(self._id_of)

    def intern(self, tx_id: str) -> int:
        """The slot of *tx_id*, assigning (or reusing) one if needed."""
        slot = self._slot_of.get(tx_id)
        if slot is not None:
            return slot
        if self._free:
            slot = heappop(self._free)
            self._id_of[slot] = tx_id
        else:
            slot = len(self._id_of)
            self._id_of.append(tx_id)
        self._slot_of[tx_id] = slot
        return slot

    def release(self, tx_id: str) -> int | None:
        """Free the slot of *tx_id* for reuse; ``None`` if not interned."""
        slot = self._slot_of.pop(tx_id, None)
        if slot is None:
            return None
        self._id_of[slot] = None
        heappush(self._free, slot)
        return slot

    def slot(self, tx_id: str) -> int:
        """The slot of an interned transaction (``KeyError`` otherwise)."""
        return self._slot_of[tx_id]

    def get(self, tx_id: str) -> int | None:
        return self._slot_of.get(tx_id)

    def id_of(self, slot: int) -> str:
        tx_id = self._id_of[slot]
        if tx_id is None:
            raise KeyError(f"slot {slot} is not live")
        return tx_id

    def mask_of(self, ids: Iterable[str]) -> int:
        """The bitmask selecting the interned transactions of *ids*
        (unknown ids are ignored — they are not appendable nodes)."""
        mask = 0
        get = self._slot_of.get
        for tx_id in ids:
            slot = get(tx_id)
            if slot is not None:
                mask |= 1 << slot
        return mask

    def ids_of(self, mask: int) -> list[str]:
        """The transaction ids selected by *mask*, in slot order."""
        out: list[str] = []
        while mask:
            low = mask & -mask
            out.append(self.id_of(low.bit_length() - 1))
            mask ^= low
        return out

    def __repr__(self) -> str:
        return (
            f"TxInterner({len(self._slot_of)} live, "
            f"capacity={self.capacity})"
        )


# ----------------------------------------------------------------------
# Mask-level Bron–Kerbosch (Tomita pivoting)

#: ``choose_pivot(adjacency, p, x) -> index`` — must return the first
#: index (ascending) among ``p | x`` maximizing ``|adjacency[i] & p|``.
PivotChooser = Callable[[Sequence[int], int, int], int]


def python_pivot(adjacency: Sequence[int], p: int, x: int) -> int:
    """Pure-``int`` Tomita pivot: first maximiser in ascending order."""
    best = -1
    best_score = -1
    scan = p | x
    while scan:
        low = scan & -scan
        index = low.bit_length() - 1
        score = (adjacency[index] & p).bit_count()
        if score > best_score:
            best, best_score = index, score
        scan ^= low
    return best


_POPCOUNT16 = None


def _popcount16_table():
    """A 64K-entry uint8 popcount table for 16-bit lanes (lazy, cached)."""
    global _POPCOUNT16
    if _POPCOUNT16 is None:
        lanes = _np.arange(1 << 16, dtype=_np.uint32)
        lanes = lanes - ((lanes >> 1) & 0x5555)
        lanes = (lanes & 0x3333) + ((lanes >> 2) & 0x3333)
        lanes = (lanes + (lanes >> 4)) & 0x0F0F
        _POPCOUNT16 = ((lanes + (lanes >> 8)) & 0x1F).astype(_np.uint8)
    return _POPCOUNT16


class NumpyPivot:
    """Vectorized Tomita pivot over an adjacency-mask matrix.

    Packs every node's neighbour mask into little-endian uint64 words
    once per sweep; each pivot selection is then one broadcast AND, a
    table-driven popcount and an ``argmax`` (ties resolve to the first
    index — the same lowest-rank tie-break as :func:`python_pivot`).
    """

    __slots__ = ("_rows", "_nbytes", "_n", "_table")

    def __init__(self, adjacency: Sequence[int]):
        n = len(adjacency)
        words = max(1, (n + 63) // 64)
        self._nbytes = words * 8
        buffer = b"".join(
            mask.to_bytes(self._nbytes, "little") for mask in adjacency
        )
        self._rows = _np.frombuffer(buffer, dtype="<u8").reshape(n, words)
        self._n = n
        self._table = _popcount16_table()

    def __call__(self, adjacency: Sequence[int], p: int, x: int) -> int:
        p_words = _np.frombuffer(
            p.to_bytes(self._nbytes, "little"), dtype="<u8"
        )
        overlap = self._rows & p_words
        counts = self._table[overlap.view("<u2")].sum(
            axis=1, dtype=_np.int64
        )
        members = _np.unpackbits(
            _np.frombuffer((p | x).to_bytes(self._nbytes, "little"), _np.uint8),
            bitorder="little",
        )[: self._n]
        counts[members == 0] = -1
        return int(counts.argmax())


def numpy_pivot_enabled() -> bool:
    """numpy importable and not disabled via ``REPRO_BITSET_NUMPY=0``."""
    if _np is None:
        return False
    flag = os.environ.get("REPRO_BITSET_NUMPY", "").strip().lower()
    return flag not in ("0", "false", "no", "off")


def make_pivot_chooser(adjacency: Sequence[int]) -> PivotChooser:
    """The fastest applicable pivot chooser for this adjacency."""
    if len(adjacency) >= NUMPY_MIN_NODES and numpy_pivot_enabled():
        return NumpyPivot(adjacency)
    return python_pivot


def mask_bron_kerbosch(
    adjacency: Sequence[int],
    pool: int,
    pivot: bool = True,
    choose_pivot: PivotChooser | None = None,
) -> Iterator[int]:
    """Yield every maximal clique of the mask graph as a bitmask.

    Node ``i`` has neighbour mask ``adjacency[i]`` (no self-bit); the
    search is restricted to the nodes of *pool*.  Mirrors
    :func:`repro.graphs.cliques.bron_kerbosch` frame for frame — the
    same Tomita pivot with first-maximiser (lowest-index) tie-break,
    the same ascending candidate order — so when node ``i`` is the
    ``i``-th node in canonical order the emitted clique sequence is
    identical, bit for bit.
    """
    if not pool:
        return
    if choose_pivot is None:
        choose_pivot = make_pivot_chooser(adjacency)
    inline_pivot = pivot and choose_pivot is python_pivot

    def candidates(p: int, x: int) -> int:
        if not p:
            return 0
        if not pivot:
            return p
        if inline_pivot:
            # python_pivot, inlined: the call-per-frame overhead is
            # measurable on million-frame sweeps.
            best_adjacency = 0
            best_score = -1
            scan = p | x
            while scan:
                low = scan & -scan
                neighbours = adjacency[low.bit_length() - 1]
                score = (neighbours & p).bit_count()
                if score > best_score:
                    best_adjacency, best_score = neighbours, score
                scan ^= low
            return p & ~best_adjacency
        return p & ~adjacency[choose_pivot(adjacency, p, x)]

    # Frames mutate in place: [R, P, X, candidate mask].
    stack: list[list[int]] = [[0, pool, 0, candidates(pool, 0)]]
    while stack:
        frame = stack[-1]
        p, x, cand = frame[1], frame[2], frame[3]
        if not p and not x:
            yield frame[0]
            stack.pop()
            continue
        if not cand:
            stack.pop()
            continue
        v = cand & -cand  # lowest set bit: ascending canonical order
        frame[3] = cand ^ v
        p = frame[1] = p & ~v
        x = frame[2] = x | v
        nv = adjacency[v.bit_length() - 1]
        child_p = p & nv
        child_x = x & nv
        stack.append([frame[0] | v, child_p, child_x, candidates(child_p, child_x)])


# ----------------------------------------------------------------------
# The bitset fd-transaction graph

class BitsetFdGraph(FdTransactionGraph):
    """``G^fd_T`` with interned nodes and machine-word conflict masks.

    Maintains everything the base class maintains (the conflict-pair
    index, the group index, ``never_appendable``) *plus* a per-slot
    conflict mask and a live-nodes mask, advanced incrementally by the
    same ``add_transaction`` / ``remove_transaction`` /
    ``refresh_after_commit`` steady-state hooks.  Clique enumeration
    — the ``2^K`` hot path — then runs entirely over ``int`` masks.
    """

    #: Cached sweep universes beyond this count are dropped wholesale.
    SWEEP_CACHE_LIMIT = 256

    def __init__(self, workspace: Workspace):
        self.interner = TxInterner()
        self._conflict_masks: list[int] = []
        self._nodes_mask = 0
        # pool mask -> (free frozenset, contested names in canonical
        # order, local adjacency masks, byte-decode table).  A monitor
        # re-sweeps the same components check after check; the universe
        # only changes when the graph itself does, so mutations clear
        # the cache.
        self._sweep_cache: dict[
            int,
            tuple[frozenset[str], list[str], list[int], list[list[tuple]]],
        ] = {}
        super().__init__(workspace)

    # -- maintenance ----------------------------------------------------

    def _build(self) -> None:
        self.interner = TxInterner()
        self._conflict_masks = []
        self._nodes_mask = 0
        self._sweep_cache = {}
        super()._build()

    def _add_node(self, tx_id: str) -> None:
        super()._add_node(tx_id)
        if tx_id not in self.nodes:
            return  # never-appendable: no slot, no universe change
        self._sweep_cache.clear()
        slot = self.interner.intern(tx_id)
        while len(self._conflict_masks) <= slot:
            self._conflict_masks.append(0)
        bit = 1 << slot
        self._nodes_mask |= bit
        mask = 0
        slot_of = self.interner.slot
        for other in self.conflicts[tx_id]:
            other_slot = slot_of(other)
            mask |= 1 << other_slot
            self._conflict_masks[other_slot] |= bit
        self._conflict_masks[slot] = mask

    def remove_transaction(self, tx_id: str) -> None:
        slot = self.interner.get(tx_id)
        super().remove_transaction(tx_id)
        if slot is None:
            return
        self._sweep_cache.clear()
        bit = 1 << slot
        self._nodes_mask &= ~bit
        mask = self._conflict_masks[slot]
        while mask:
            low = mask & -mask
            self._conflict_masks[low.bit_length() - 1] &= ~bit
            mask ^= low
        self._conflict_masks[slot] = 0
        self.interner.release(tx_id)

    # -- mask queries ---------------------------------------------------

    @property
    def nodes_mask(self) -> int:
        """The live appendable transactions, as a bitmask."""
        return self._nodes_mask

    def conflict_mask(self, tx_id: str) -> int:
        """The conflict (complement-edge) mask of an appendable tx."""
        return self._conflict_masks[self.interner.slot(tx_id)]

    def mask_of(self, ids: Iterable[str]) -> int:
        """``ids ∩ nodes`` as a bitmask (non-nodes drop out)."""
        return self.interner.mask_of(ids) & self._nodes_mask

    def restrict_appendable(self, ids: Iterable[str]) -> set[str]:
        """``ids ∩ nodes`` — the ind-component pruning intersection of
        OptDCSat, answered through the interner's masks."""
        return set(self.interner.ids_of(self.mask_of(ids)))

    # -- the sweep ------------------------------------------------------

    def maximal_cliques(
        self, restrict: Iterable[str] | None = None, pivot: bool = True
    ) -> Iterator[frozenset[str]]:
        """Identical stream to the set-based sweep, computed on masks.

        Free/contested classification is one AND per pool member;
        Bron–Kerbosch runs over a *local* mask universe holding only
        the contested nodes, ranked canonically (sorted tx id) so the
        emitted clique sequence matches the base class bit for bit.
        """
        if restrict is None:
            pool_mask = self._nodes_mask
        else:
            pool_mask = self.interner.mask_of(restrict) & self._nodes_mask
        universe = self._sweep_cache.get(pool_mask)
        if universe is None:
            universe = self._build_sweep_universe(pool_mask)
            if len(self._sweep_cache) >= self.SWEEP_CACHE_LIMIT:
                self._sweep_cache.clear()
            self._sweep_cache[pool_mask] = universe
        free, names, adjacency, decode = universe
        if not names:
            yield free
            return
        full = (1 << len(names)) - 1
        base = tuple(free)
        # Clique mask -> frozenset of ids, one byte (8 members max) per
        # Python-level step via the universe's precomputed decode table.
        for clique in mask_bron_kerbosch(adjacency, full, pivot=pivot):
            members = base
            # Jump straight to the first populated byte (cliques from a
            # narrow corner of a wide universe skip the dead low words).
            position = ((clique & -clique).bit_length() - 1) >> 3
            clique >>= position << 3
            while clique:
                byte = clique & 0xFF
                if byte:
                    members += decode[position][byte]
                clique >>= 8
                position += 1
            yield frozenset(members)

    def _build_sweep_universe(
        self, pool_mask: int
    ) -> tuple[frozenset[str], list[str], list[int], list[list[tuple]]]:
        """Free set + local dense universe of the contested nodes, in
        canonical (sorted-id) rank — the parity anchor with the set
        planner.  Adjacency is built from the sparse conflict sets, so
        the cost is O(contested + conflict pairs), not O(mask width²).
        """
        free_mask = 0
        contested_slots: list[int] = []
        scan = pool_mask
        while scan:
            low = scan & -scan
            slot = low.bit_length() - 1
            if self._conflict_masks[slot] & pool_mask:
                contested_slots.append(slot)
            else:
                free_mask |= low
            scan ^= low
        free = frozenset(self.interner.ids_of(free_mask))
        if not contested_slots:
            return free, [], [], []
        names = sorted(self.interner.id_of(slot) for slot in contested_slots)
        local = {name: index for index, name in enumerate(names)}
        count = len(names)
        full = (1 << count) - 1
        adjacency = [0] * count
        get_local = local.get
        for index, name in enumerate(names):
            conflict_local = 1 << index  # no self loops
            for other in self.conflicts[name]:
                other_index = get_local(other)
                if other_index is not None:
                    conflict_local |= 1 << other_index
            adjacency[index] = full & ~conflict_local
        # byte position -> byte value -> names tuple: decodes clique
        # masks eight members at a time.
        decode: list[list[tuple]] = []
        for position in range((count + 7) // 8):
            offset = position * 8
            width = min(8, count - offset)
            decode.append(
                [
                    tuple(
                        names[offset + bit]
                        for bit in range(width)
                        if value >> bit & 1
                    )
                    for value in range(1 << width)
                ]
            )
        return free, names, adjacency, decode

    def verify_masks(self) -> None:
        """Cross-check masks against the set-based conflict index (tests)."""
        assert set(self.interner.ids_of(self._nodes_mask)) == self.nodes
        for tx_id in self.nodes:
            expected = self.interner.mask_of(self.conflicts[tx_id])
            actual = self.conflict_mask(tx_id)
            if expected != actual:
                raise AssertionError(
                    f"conflict-mask mismatch for {tx_id}: "
                    f"sets={expected:b} mask={actual:b}"
                )

    def __repr__(self) -> str:
        return (
            f"BitsetFdGraph({len(self.nodes)} nodes, "
            f"{self.conflict_count()} conflicts, "
            f"{len(self.never_appendable)} never-appendable, "
            f"width={self.interner.capacity})"
        )


# ----------------------------------------------------------------------
# Planner selection

class Planner:
    """An enumeration-side strategy: which fd-graph implementation
    produces the evaluation plans the engines sweep."""

    name: str = ""
    graph_class: type[FdTransactionGraph] = FdTransactionGraph

    def fd_graph(self, workspace: Workspace) -> FdTransactionGraph:
        return self.graph_class(workspace)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SetPlanner(Planner):
    """The classical planner: Python sets of transaction-id strings."""

    name = "set"
    graph_class = FdTransactionGraph


class BitsetPlanner(Planner):
    """Interned transactions, machine-word clique sweeps — byte-identical
    plans to :class:`SetPlanner` (same worlds, same order, same stats)."""

    name = "bitset"
    graph_class = BitsetFdGraph


PLANNERS = ("set", "bitset")

_PLANNER_CLASSES: dict[str, type[Planner]] = {
    "set": SetPlanner,
    "bitset": BitsetPlanner,
}

#: Truthy / falsy spellings accepted by the ``REPRO_BITSET`` toggle.
_TRUE_FLAGS = ("1", "true", "yes", "on", "bitset")
_FALSE_FLAGS = ("", "0", "false", "no", "off", "set")


def resolve_planner_name(planner: str | None) -> str:
    """An explicit planner name, or the ``REPRO_BITSET`` env default.

    Validates eagerly — a typo fails at checker construction with the
    valid choices named, not deep inside a sweep (or on a worker).
    """
    if planner is None:
        raw = os.environ.get("REPRO_BITSET", "")
        flag = raw.strip().lower()
        if flag in _FALSE_FLAGS:
            return "set"
        if flag in _TRUE_FLAGS:
            return "bitset"
        raise AlgorithmError(
            f"unknown REPRO_BITSET value {raw!r}; expected a boolean "
            f"flag or one of {PLANNERS}"
        )
    if planner not in PLANNERS:
        raise AlgorithmError(
            f"unknown planner {planner!r}; expected one of {PLANNERS}"
        )
    return planner


def make_planner(planner: str | None) -> Planner:
    """Build a :class:`Planner` by name (``None`` → ``REPRO_BITSET``)."""
    return _PLANNER_CLASSES[resolve_planner_name(planner)]()


def make_fd_graph(
    planner: str | None, workspace: Workspace
) -> FdTransactionGraph:
    """The fd-transaction graph of the selected planner over *workspace*."""
    return make_planner(planner).fd_graph(workspace)
