"""Result and statistics types returned by the DCSat solvers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DCSatStats:
    """Work counters for one denial-constraint satisfaction check."""

    algorithm: str = ""
    #: Which evaluation engine examined the worlds ("sync", "batched",
    #: "async"; empty when no world sweep ran).  Deliberately *not* part
    #: of the parity contract — engines must agree on every counter
    #: below while differing here.
    engine: str = ""
    short_circuit_used: bool = False
    short_circuit_result: bool | None = None
    components_total: int = 0
    components_pruned: int = 0
    #: Largest surviving component (pending transactions) the solve
    #: touched — the size axis of the perf cost model
    #: (:mod:`repro.obs.perf`): clique-sweep cost grows with ``2^K``,
    #: so this single number explains most of a check's latency.
    max_component_size: int = 0
    cliques_enumerated: int = 0
    worlds_checked: int = 0
    evaluations: int = 0
    assignments_examined: int = 0
    parallel_tasks: int = 0
    #: Surviving components answered from the monitor's verdict ledger
    #: without re-sweeping (:mod:`repro.core.incremental`).
    components_reused: int = 0
    #: Dirty components whose stored witness was re-validated against
    #: the backend instead of re-enumerated.
    witness_revalidations: int = 0
    #: Components the triggering state change dirtied or pruned in the
    #: ledger (0 on a recompute-from-scratch path).
    dirty_components: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "DCSatStats") -> None:
        # Keep the first non-empty algorithm: a coordinator merging
        # worker stats keeps its own identity, but merging into a blank
        # stats object adopts the worker's.
        if not self.algorithm:
            self.algorithm = other.algorithm
        if not self.engine:
            self.engine = other.engine
        # Short-circuit evidence must survive the merge: it was used if
        # either side used it, and the first concrete outcome wins.
        self.short_circuit_used = (
            self.short_circuit_used or other.short_circuit_used
        )
        if self.short_circuit_result is None:
            self.short_circuit_result = other.short_circuit_result
        self.components_total += other.components_total
        self.components_pruned += other.components_pruned
        # A maximum, not a sum: pool workers each report their own
        # largest component; the merged stats keep the overall largest.
        self.max_component_size = max(
            self.max_component_size, other.max_component_size
        )
        self.cliques_enumerated += other.cliques_enumerated
        self.worlds_checked += other.worlds_checked
        self.evaluations += other.evaluations
        self.assignments_examined += other.assignments_examined
        self.parallel_tasks += other.parallel_tasks
        self.components_reused += other.components_reused
        self.witness_revalidations += other.witness_revalidations
        self.dirty_components += other.dirty_components
        # Accumulated, so stats merged from pool workers report the true
        # aggregate solve time rather than the last worker's share.
        self.elapsed_seconds += other.elapsed_seconds


@dataclass
class DCSatResult:
    """Outcome of checking ``D |= ¬q``.

    ``satisfied`` is True when the denial constraint holds in *every*
    possible world (the safe answer); when False, ``witness`` names the
    pending transactions of a violating possible world (empty frozenset
    means the current state itself already violates the constraint).
    """

    satisfied: bool
    witness: frozenset[str] | None = None
    stats: DCSatStats = field(default_factory=DCSatStats)

    def __bool__(self) -> bool:
        return self.satisfied

    def __repr__(self) -> str:
        outcome = "satisfied" if self.satisfied else f"violated by {set(self.witness or ())}"
        return f"DCSatResult({outcome}, {self.stats.algorithm})"
