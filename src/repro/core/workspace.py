"""The merged store behind the DCSat engine (Section 6.3).

The paper's implementation keeps both the committed state ``R`` and the
pending transactions ``T`` in one database, with a Boolean ``current``
column marking which tuples belong to the possible world under
consideration.  :class:`Workspace` is the in-memory equivalent: committed
tuples live in the base :class:`~repro.relational.database.Database`
(always current), pending tuples carry their transaction id as
provenance, and an *active set* of transaction ids plays the role of the
``current`` flags.  Switching possible worlds is a single set assignment
instead of per-tuple updates.

The workspace implements the fact-view protocol, so the query evaluator
and the incremental constraint checker run directly against whichever
possible world is active.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Iterator

from repro.core.blockchain_db import BlockchainDatabase
from repro.errors import ReproError
from repro.relational.relation import project
from repro.relational.transaction import Transaction


class Workspace:
    """Overlay view: base database + pending facts + an active-set cursor."""

    def __init__(self, db: BlockchainDatabase):
        self.db = db
        self.base = db.current
        # relation -> {tuple -> set of provider tx ids}
        self._pending_facts: dict[str, dict[tuple, set[str]]] = {}
        # (relation, positions) -> {projected key -> set of tx ids}
        self._projection_cache: dict[tuple[str, tuple[int, ...]], dict[tuple, set[str]]] = {}
        # (relation, positions) -> {projected key -> {tuple -> providers}}
        self._lookup_cache: dict[
            tuple[str, tuple[int, ...]], dict[tuple, dict[tuple, set[str]]]
        ] = {}
        self._active: frozenset[str] = frozenset()
        for tx in db.pending:
            self._index_transaction(tx)

    # ------------------------------------------------------------------
    # Maintenance (steady state: issue / commit)

    def _index_transaction(self, tx: Transaction) -> None:
        for rel, values in tx:
            self._pending_facts.setdefault(rel, {}).setdefault(values, set()).add(
                tx.tx_id
            )
        for (rel, positions), index in self._projection_cache.items():
            for values in tx.tuples(rel):
                index.setdefault(project(values, positions), set()).add(tx.tx_id)
        for (rel, positions), index in self._lookup_cache.items():
            for values in tx.tuples(rel):
                index.setdefault(project(values, positions), {}).setdefault(
                    values, set()
                ).add(tx.tx_id)

    def _unindex_transaction(self, tx: Transaction) -> None:
        for rel, values in tx:
            providers = self._pending_facts.get(rel, {}).get(values)
            if providers is not None:
                providers.discard(tx.tx_id)
                if not providers:
                    del self._pending_facts[rel][values]
        for (rel, positions), index in self._projection_cache.items():
            for values in tx.tuples(rel):
                key = project(values, positions)
                txs = index.get(key)
                if txs is not None:
                    txs.discard(tx.tx_id)
                    if not txs:
                        del index[key]
        for (rel, positions), index in self._lookup_cache.items():
            for values in tx.tuples(rel):
                key = project(values, positions)
                bucket = index.get(key)
                if bucket is None:
                    continue
                providers = bucket.get(values)
                if providers is not None:
                    providers.discard(tx.tx_id)
                    if not providers:
                        del bucket[values]
                        if not bucket:
                            del index[key]

    def issue(self, tx: Transaction) -> None:
        """Add a newly issued transaction to the pending structures."""
        self.db.add_pending(tx)
        self._index_transaction(tx)

    def commit(self, tx_id: str) -> Transaction:
        """Move a pending transaction into the committed base state."""
        tx = self.db.remove_pending(tx_id)
        self._unindex_transaction(tx)
        for rel, values in tx:
            self.base.insert(rel, values)
        if tx_id in self._active:
            self._active = self._active - {tx_id}
        return tx

    def forget(self, tx_id: str) -> Transaction:
        """Drop a pending transaction without committing it."""
        tx = self.db.remove_pending(tx_id)
        self._unindex_transaction(tx)
        if tx_id in self._active:
            self._active = self._active - {tx_id}
        return tx

    # ------------------------------------------------------------------
    # The possible-world cursor

    @property
    def active(self) -> frozenset[str]:
        return self._active

    def set_active(self, tx_ids: Iterable[str]) -> None:
        """Select the possible world ``R ∪ {facts of tx_ids}``.

        This is the analogue of flipping the ``current`` column: O(1) in
        the in-memory workspace, while the SQL backend mirrors it with
        real UPDATE statements.
        """
        active = frozenset(tx_ids)
        unknown = active - set(self.db.pending_ids)
        if unknown:
            raise ReproError(f"unknown transaction ids in active set: {unknown}")
        self._active = active

    def activate(self, tx_id: str) -> None:
        self.set_active(self._active | {tx_id})

    def activate_all(self) -> None:
        self.set_active(self.db.pending_ids)

    def clear_active(self) -> None:
        self._active = frozenset()

    # ------------------------------------------------------------------
    # Fact-view protocol (drives the evaluator and constraint checker)

    def iter_tuples(self, relation: str) -> Iterator[tuple]:
        base_rel = self.base[relation]
        pending = self._pending_facts.get(relation)
        if not pending:
            yield from base_rel
            return
        active = self._active
        yield from base_rel
        for values, providers in pending.items():
            if values not in base_rel and providers & active:
                yield values

    def lookup(
        self, relation: str, positions: tuple[int, ...], key: tuple
    ) -> Iterator[tuple]:
        base_rel = self.base[relation]
        yield from base_rel.lookup(positions, key)
        bucket = self._pending_lookup_index(relation, positions).get(key)
        if bucket:
            active = self._active
            for values, providers in bucket.items():
                if values not in base_rel and providers & active:
                    yield values

    def has_projection(
        self, relation: str, positions: tuple[int, ...], key: tuple
    ) -> bool:
        if self.base[relation].lookup(positions, key):
            return True
        bucket = self._pending_lookup_index(relation, positions).get(key)
        if not bucket:
            return False
        active = self._active
        return any(providers & active for providers in bucket.values())

    def has_fact(self, relation: str, values: tuple) -> bool:
        if values in self.base[relation]:
            return True
        providers = self._pending_facts.get(relation, {}).get(values)
        return bool(providers and providers & self._active)

    def count_tuples(self, relation: str) -> int:
        # An upper bound (pending facts of inactive transactions are
        # included): only used as a join-ordering heuristic.
        return len(self.base[relation]) + len(self._pending_facts.get(relation, ()))

    # ------------------------------------------------------------------
    # Pending-side indexes (shared by the ind graph and coverage tests)

    def _pending_lookup_index(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[tuple, dict[tuple, set[str]]]:
        cache_key = (relation, positions)
        index = self._lookup_cache.get(cache_key)
        if index is None:
            index = {}
            for values, providers in self._pending_facts.get(relation, {}).items():
                index.setdefault(project(values, positions), {})[values] = set(
                    providers
                )
            self._lookup_cache[cache_key] = index
        return index

    def pending_projections(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[tuple, set[str]]:
        """``projected key -> transaction ids`` over *all* pending facts.

        Independent of the active set; used to build ind-graph edges and
        the ``Covers`` test.
        """
        cache_key = (relation, positions)
        index = self._projection_cache.get(cache_key)
        if index is None:
            index = {}
            for values, providers in self._pending_facts.get(relation, {}).items():
                index.setdefault(project(values, positions), set()).update(providers)
            self._projection_cache[cache_key] = index
        return index

    def providers_of(self, relation: str, values: tuple) -> frozenset[str]:
        """The pending transactions that insert exactly this fact."""
        return frozenset(self._pending_facts.get(relation, {}).get(values, ()))

    def fact_in_base(self, relation: str, values: tuple) -> bool:
        return values in self.base[relation]

    def transaction_facts(self, tx_id: str) -> dict[str, frozenset[tuple]]:
        tx = self.db.transaction(tx_id)
        return {rel: tx.tuples(rel) for rel in tx.relation_names}

    def pending_tuple_count(self) -> int:
        return sum(len(facts) for facts in self._pending_facts.values())

    def __repr__(self) -> str:
        return (
            f"Workspace(base={self.base.total_tuples()} tuples, "
            f"pending={self.pending_tuple_count()} tuples, "
            f"active={len(self._active)} txs)"
        )
