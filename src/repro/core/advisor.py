"""The issuance advisor: the paper's user story as a single call.

Example 4's workflow — *before* broadcasting, hypothetically add the
transaction, check every denial constraint you care about, and only
issue when all hold — packaged with explanations and a repair
suggestion: when the hypothetical transaction is unsafe because it
coexists with an earlier pending transaction, the advisor proposes
reissuing *as a contradiction* of the culprit instead (the safe
fee-bump pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.checker import DCSatChecker
from repro.core.explain import Explanation, explain_violation
from repro.errors import ReproError
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.relational.transaction import Transaction

Query = ConjunctiveQuery | AggregateQuery


@dataclass
class ConstraintViolation:
    """One constraint the hypothetical issuance would make violable."""

    name: str
    explanation: Explanation | None

    @property
    def culprits(self) -> frozenset[str]:
        if self.explanation is None:
            return frozenset()
        return self.explanation.culprit_transactions


@dataclass
class Advice:
    """The advisor's verdict for a proposed transaction."""

    safe: bool
    violations: list[ConstraintViolation] = field(default_factory=list)
    suggestion: str = ""

    def render(self) -> str:
        if self.safe:
            return "SAFE TO ISSUE: every registered constraint stays satisfied."
        lines = ["DO NOT ISSUE:"]
        for violation in self.violations:
            lines.append(f"  constraint {violation.name!r} becomes violable")
            if violation.explanation is not None:
                for fact in violation.explanation.facts:
                    lines.append(f"    via {fact}")
        if self.suggestion:
            lines.append(self.suggestion)
        return "\n".join(lines)


class IssuanceAdvisor:
    """Registers denial constraints; advises on hypothetical issuances."""

    def __init__(self, checker: DCSatChecker):
        self.checker = checker
        self._constraints: dict[str, Query] = {}

    def register(self, name: str, query: Query | str) -> None:
        if name in self._constraints:
            raise ReproError(f"constraint {name!r} already registered")
        self._constraints[name] = (
            parse_query(query) if isinstance(query, str) else query
        )

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._constraints)

    def advise(self, tx: Transaction, explain: bool = True) -> Advice:
        """Dry-run *tx* against every registered constraint.

        The transaction is issued hypothetically, each constraint
        checked (and violations explained while the transaction is still
        in place), then retracted — the database is left untouched.
        """
        if not self._constraints:
            raise ReproError("advisor has no registered constraints")
        self.checker.issue(tx)
        try:
            violations: list[ConstraintViolation] = []
            for name, query in self._constraints.items():
                result = self.checker.check(query)
                if result.satisfied:
                    continue
                explanation = (
                    explain_violation(self.checker.db, query, result)
                    if explain
                    else None
                )
                violations.append(ConstraintViolation(name, explanation))
        finally:
            self.checker.forget(tx.tx_id)
        if not violations:
            return Advice(safe=True)
        return Advice(
            safe=False,
            violations=violations,
            suggestion=self._suggest(tx, violations),
        )

    def _suggest(
        self, tx: Transaction, violations: list[ConstraintViolation]
    ) -> str:
        """Propose the safe-reissue repair when a specific pending
        transaction co-stars in the violation."""
        culprits: set[str] = set()
        for violation in violations:
            culprits |= violation.culprits
        culprits.discard(tx.tx_id)
        if not culprits:
            return (
                "suggestion: the current state alone enables the violation; "
                "issuing any version of this transaction is unsafe"
            )
        named = ", ".join(sorted(culprits))
        return (
            f"suggestion: reissue as a contradiction of [{named}] "
            "(e.g. spend the same input with a fee bump) so no possible "
            "world contains both — see repro.core.contradiction"
        )
