"""The fd-transaction graph ``G^fd_T`` (Section 6.1, Figure 3).

Nodes are pending transactions; there is an edge ``(T, T')`` whenever
``T ∪ T' |= I_fd``.  Every possible world corresponds to a clique, so
the DCSat algorithms enumerate maximal cliques.

Representation: real mempools contain very few mutually contradicting
transactions (the paper injects 10–50 into thousands), so ``G^fd_T`` is
nearly complete.  Materializing its adjacency sets would be quadratic;
instead we store the sparse *complement* — the conflict pairs — and
derive cliques from it: transactions with no conflicts ("free" nodes)
belong to every maximal clique, and the maximal cliques of the full
graph are exactly ``free ∪ C`` for the maximal cliques ``C`` of the
induced subgraph on the conflicted nodes.

Transactions that can *never* be appended because of functional
dependencies alone — internally inconsistent, or clashing with the
committed state (FD violations cannot be repaired by adding tuples) —
are excluded from the node set up front and reported separately.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.workspace import Workspace
from repro.graphs import UndirectedGraph, bron_kerbosch
from repro.relational.checking import transactions_fd_consistent
from repro.relational.relation import project


class FdTransactionGraph:
    """``G^fd_T`` with complement (conflict-pair) representation."""

    def __init__(self, workspace: Workspace):
        self._workspace = workspace
        self.conflicts: dict[str, set[str]] = {}
        self.nodes: set[str] = set()
        self.never_appendable: set[str] = set()
        self._build()

    # ------------------------------------------------------------------
    # Construction / maintenance

    def _build(self) -> None:
        self.conflicts = {}
        self.nodes = set()
        self.never_appendable = set()
        self._group_index = {}
        self._tx_signatures = {}
        for tx_id in self._workspace.db.pending_ids:
            self._add_node(tx_id)

    def _fd_signature(self, tx_id: str) -> list[tuple[tuple, tuple]]:
        """``(group key, rhs projection)`` pairs for every fact and FD.

        The group key identifies the FD and the left-hand-side value;
        two transactions conflict iff they share a group key with
        different right-hand sides.
        """
        constraints = self._workspace.db.constraints
        tx = self._workspace.db.transaction(tx_id)
        signature: list[tuple[tuple, tuple]] = []
        for rel in tx.relation_names:
            for fd_index, rfd in enumerate(constraints.fds_for(rel)):
                for values in tx.tuples(rel):
                    group = (rel, fd_index, project(values, rfd.lhs_positions))
                    signature.append((group, project(values, rfd.rhs_positions)))
        return signature

    def _clashes_with_base(self, tx_id: str) -> bool:
        constraints = self._workspace.db.constraints
        tx = self._workspace.db.transaction(tx_id)
        base = self._workspace.base
        for rel in tx.relation_names:
            for rfd in constraints.fds_for(rel):
                for values in tx.tuples(rel):
                    key = project(values, rfd.lhs_positions)
                    rhs = project(values, rfd.rhs_positions)
                    for existing in base[rel].lookup(rfd.lhs_positions, key):
                        if project(existing, rfd.rhs_positions) != rhs:
                            return True
        return False

    def _internally_inconsistent(self, tx_id: str) -> bool:
        return self._signature_inconsistent(self._fd_signature(tx_id))

    @staticmethod
    def _signature_inconsistent(
        signature: list[tuple[tuple, tuple]]
    ) -> bool:
        groups: dict[tuple, tuple] = {}
        for group, rhs in signature:
            seen = groups.get(group)
            if seen is None:
                groups[group] = rhs
            elif seen != rhs:
                return True
        return False

    # group key -> {rhs projection -> set of tx ids}
    _group_index: dict[tuple, dict[tuple, set[str]]]
    # tx id -> its fd signature at add time, so removal can prune the
    # exact buckets the transaction occupies (the transaction itself may
    # already be gone from the pending set when it is removed here).
    _tx_signatures: dict[str, list[tuple[tuple, tuple]]]

    def _add_node(self, tx_id: str) -> None:
        signature = self._fd_signature(tx_id)
        if self._signature_inconsistent(signature) or self._clashes_with_base(tx_id):
            self.never_appendable.add(tx_id)
            return
        self.nodes.add(tx_id)
        self.conflicts.setdefault(tx_id, set())
        self._tx_signatures[tx_id] = signature
        for group, rhs in signature:
            bucket = self._group_index.setdefault(group, {})
            for other_rhs, others in bucket.items():
                if other_rhs != rhs:
                    for other in others:
                        if other != tx_id:
                            self.conflicts[tx_id].add(other)
                            self.conflicts[other].add(tx_id)
            bucket.setdefault(rhs, set()).add(tx_id)

    def add_transaction(self, tx_id: str) -> None:
        """Steady-state maintenance: a new transaction was issued."""
        self._add_node(tx_id)

    def remove_transaction(self, tx_id: str) -> None:
        """Steady-state maintenance: a transaction left the pending set.

        When a transaction is *committed*, transactions conflicting with
        the now-committed facts become never-appendable; callers should
        invoke :meth:`refresh_after_commit` afterwards.
        """
        self.never_appendable.discard(tx_id)
        if tx_id not in self.nodes:
            return
        self.nodes.discard(tx_id)
        for other in self.conflicts.pop(tx_id, set()):
            self.conflicts[other].discard(tx_id)
        signature = self._tx_signatures.pop(tx_id, None)
        if signature is not None:
            # Prune exactly the buckets the transaction occupies, and
            # drop emptied rhs-buckets/group keys — a long-running
            # monitor under churn must not leak dead groups (they cost
            # memory *and* a scan on every subsequent ``_add_node``).
            for group, rhs in signature:
                bucket = self._group_index.get(group)
                if bucket is None:
                    continue
                others = bucket.get(rhs)
                if others is None:
                    continue
                others.discard(tx_id)
                if not others:
                    del bucket[rhs]
                if not bucket:
                    del self._group_index[group]
        else:  # defensive: unknown signature, fall back to a full scan
            for group in list(self._group_index):
                bucket = self._group_index[group]
                for rhs in list(bucket):
                    others = bucket[rhs]
                    others.discard(tx_id)
                    if not others:
                        del bucket[rhs]
                if not bucket:
                    del self._group_index[group]

    def refresh_after_commit(self) -> None:
        """Re-evaluate base clashes after the committed state grew."""
        for tx_id in list(self.nodes):
            if self._clashes_with_base(tx_id):
                self.remove_transaction(tx_id)
                self.never_appendable.add(tx_id)

    # ------------------------------------------------------------------
    # Queries

    def has_edge(self, u: str, v: str) -> bool:
        """``T ∪ T' |= I_fd`` for two (appendable) transactions."""
        if u not in self.nodes or v not in self.nodes or u == v:
            return False
        return v not in self.conflicts[u]

    def conflicted_nodes(self) -> set[str]:
        return {tx for tx, cs in self.conflicts.items() if cs}

    def free_nodes(self) -> set[str]:
        return {tx for tx, cs in self.conflicts.items() if not cs}

    def conflict_count(self) -> int:
        return sum(len(cs) for cs in self.conflicts.values()) // 2

    def conflict_subgraph(self, restrict: Iterable[str] | None = None) -> UndirectedGraph:
        """The *complement* restricted to the conflicted nodes — i.e. the
        fd-graph induced on conflicted nodes, for clique enumeration."""
        if restrict is None:
            pool = self.conflicted_nodes()
        else:
            pool = {t for t in restrict if t in self.nodes and self.conflicts[t]}
        graph = UndirectedGraph(nodes=pool)
        pool_list = sorted(pool)
        for i, u in enumerate(pool_list):
            for v in pool_list[i + 1 :]:
                if v not in self.conflicts[u]:
                    graph.add_edge(u, v)
        return graph

    def maximal_cliques(
        self, restrict: Iterable[str] | None = None, pivot: bool = True
    ) -> Iterator[frozenset[str]]:
        """Yield the maximal cliques of ``G^fd_T`` (optionally of the
        subgraph induced by *restrict*).

        Conflict-free nodes join every maximal clique; clique structure
        on the conflicted nodes is enumerated with Bron–Kerbosch.
        """
        if restrict is None:
            pool = set(self.nodes)
        else:
            pool = {t for t in restrict if t in self.nodes}
        free = {t for t in pool if not (self.conflicts[t] & pool)}
        contested = pool - free
        if not contested:
            yield frozenset(free)
            return
        subgraph = UndirectedGraph(nodes=contested)
        contested_list = sorted(contested)
        for i, u in enumerate(contested_list):
            for v in contested_list[i + 1 :]:
                if v not in self.conflicts[u]:
                    subgraph.add_edge(u, v)
        for clique in bron_kerbosch(subgraph, pivot=pivot):
            yield frozenset(free) | clique

    def is_clique(self, tx_ids: Iterable[str]) -> bool:
        ids = [t for t in tx_ids]
        if any(t not in self.nodes for t in ids):
            return False
        for i, u in enumerate(ids):
            for v in ids[i + 1 :]:
                if u != v and v in self.conflicts[u]:
                    return False
        return True

    def verify_against(self) -> None:
        """Cross-check the conflict index with pairwise fd checks (tests)."""
        ids = sorted(self.nodes)
        for i, u in enumerate(ids):
            for v in ids[i + 1 :]:
                expected = transactions_fd_consistent(
                    self._workspace.transaction_facts(u),
                    self._workspace.transaction_facts(v),
                    self._workspace.db.constraints,
                )
                actual = self.has_edge(u, v)
                if expected != actual:
                    raise AssertionError(
                        f"fd-graph mismatch for ({u}, {v}): "
                        f"pairwise={expected} index={actual}"
                    )

    def __repr__(self) -> str:
        return (
            f"FdTransactionGraph({len(self.nodes)} nodes, "
            f"{self.conflict_count()} conflicts, "
            f"{len(self.never_appendable)} never-appendable)"
        )
