"""The paper's core: blockchain databases and denial-constraint satisfaction.

* :class:`BlockchainDatabase` — the triple ``D = (R, I, T)`` of Section 4.
* :mod:`~repro.core.possible_worlds` — the can-append relation, possible
  world recognition (Proposition 1) and enumeration, ``getMaximal``.
* :mod:`~repro.core.fd_graph` / :mod:`~repro.core.ind_graph` — the
  precomputed graphs of Section 6 (Figure 3).
* :mod:`~repro.core.naive` / :mod:`~repro.core.opt` — NaiveDCSat
  (Figure 4) and OptDCSat (Figure 5).
* :class:`DCSatChecker` — the steady-state engine of Section 6.3 tying
  everything together, with the ``q(R ∪ T)`` short-circuit.
* :mod:`~repro.core.tractable` — the PTIME special cases of Theorems 1–2.
* :mod:`~repro.core.contradiction` — deriving conflicting transactions
  (the paper's future-work item).
* :mod:`~repro.core.bitset` — dense transaction interning and
  machine-word clique sweeps (the ``planner="bitset"`` fast path,
  plan-identical to the set-based enumeration).
"""

from repro.core.advisor import Advice, IssuanceAdvisor
from repro.core.bitset import BitsetFdGraph, TxInterner
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker, DCSatResult, DCSatStats
from repro.core.explain import Explanation, explain_violation
from repro.core.monitor import ConstraintMonitor
from repro.core.possible_worlds import (
    enumerate_possible_worlds,
    get_maximal,
    is_possible_world,
    world_database,
)

__all__ = [
    "Advice",
    "IssuanceAdvisor",
    "BitsetFdGraph",
    "TxInterner",
    "BlockchainDatabase",
    "DCSatChecker",
    "DCSatResult",
    "DCSatStats",
    "ConstraintMonitor",
    "Explanation",
    "explain_violation",
    "enumerate_possible_worlds",
    "is_possible_world",
    "world_database",
    "get_maximal",
]
