"""NaiveDCSat (Figure 4).

Iterates over every maximal clique of the fd-transaction graph, builds
the unique maximal possible world for the clique with ``getMaximal``,
and evaluates the denial constraint there.  Sound and complete for
*monotone* denial constraints: a monotone query satisfied in any world
is satisfied in some maximal world, and every maximal world arises from
a maximal clique.
"""

from __future__ import annotations

from typing import Callable

from repro.core.fd_graph import FdTransactionGraph
from repro.core.possible_worlds import get_maximal
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.obs.trace import span as obs_span
from repro.query.ast import AggregateQuery, ConjunctiveQuery

#: Evaluates the query over the workspace's currently active world.
WorldEvaluator = Callable[[ConjunctiveQuery | AggregateQuery, frozenset[str]], bool]


def naive_dcsat(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    evaluate_world: WorldEvaluator,
    pivot: bool = True,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """Decide ``D |= ¬q`` for a monotone denial constraint.

    Returns ``satisfied=False`` with the violating world as witness as
    soon as the query evaluates to true over some maximal world.
    """
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "naive"
    with obs_span("clique_sweep", algorithm="naive") as sp:
        for clique in fd_graph.maximal_cliques(pivot=pivot):
            stats.cliques_enumerated += 1
            world = get_maximal(workspace, clique)
            stats.worlds_checked += 1
            stats.evaluations += 1
            if evaluate_world(query, world):
                sp.set(cliques=stats.cliques_enumerated, violated=True)
                return DCSatResult(satisfied=False, witness=world, stats=stats)
        sp.set(cliques=stats.cliques_enumerated, violated=False)
    return DCSatResult(satisfied=True, stats=stats)
