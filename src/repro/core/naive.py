"""NaiveDCSat (Figure 4).

Iterates over every maximal clique of the fd-transaction graph, builds
the unique maximal possible world for the clique with ``getMaximal``,
and evaluates the denial constraint there.  Sound and complete for
*monotone* denial constraints: a monotone query satisfied in any world
is satisfied in some maximal world, and every maximal world arises from
a maximal clique.

Enumeration and evaluation are decoupled: :func:`maximal_worlds` emits
the evaluation plan (a pure stream of candidate active-sets, no side
effects), and an :class:`~repro.core.engine.EvaluationEngine` sweeps
it — one world at a time, batched, or as coroutines
(:func:`naive_dcsat_async`).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.engine import EvaluationEngine, as_engine
from repro.core.fd_graph import FdTransactionGraph
from repro.core.possible_worlds import get_maximal
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.obs.trace import span as obs_span
from repro.query.ast import AggregateQuery, ConjunctiveQuery

#: Evaluates the query over the workspace's currently active world.
#: Solvers also accept an :class:`~repro.core.engine.EvaluationEngine`
#: wherever a ``WorldEvaluator`` is expected (see ``as_engine``).
WorldEvaluator = Callable[[ConjunctiveQuery | AggregateQuery, frozenset[str]], bool]


def maximal_worlds(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    restrict: set[str] | None = None,
    pivot: bool = True,
) -> Iterator[frozenset[str]]:
    """The clique sweep's evaluation plan: one maximal world per clique.

    A pure generator — it never touches solver statistics, so an engine
    that prefetches (batching) cannot skew the counters.  The consuming
    engine charges ``cliques_enumerated`` / ``worlds_checked`` /
    ``evaluations`` per world it actually examines.
    """
    for clique in fd_graph.maximal_cliques(restrict=restrict, pivot=pivot):
        yield get_maximal(workspace, clique)


def naive_dcsat(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    evaluate_world: WorldEvaluator | EvaluationEngine,
    pivot: bool = True,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """Decide ``D |= ¬q`` for a monotone denial constraint.

    Returns ``satisfied=False`` with the violating world as witness as
    soon as the query evaluates to true over some maximal world.
    """
    engine = as_engine(evaluate_world)
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "naive"
    with obs_span("clique_sweep", algorithm="naive", engine=engine.name) as sp:
        witness = engine.sweep(
            query,
            maximal_worlds(workspace, fd_graph, pivot=pivot),
            stats=stats,
            count_cliques=True,
        )
        sp.set(cliques=stats.cliques_enumerated, violated=witness is not None)
    if witness is not None:
        return DCSatResult(satisfied=False, witness=witness, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)


async def naive_dcsat_async(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    engine: EvaluationEngine,
    pivot: bool = True,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """:func:`naive_dcsat` on the engine's coroutine surface."""
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "naive"
    with obs_span("clique_sweep", algorithm="naive", engine=engine.name) as sp:
        witness = await engine.sweep_async(
            query,
            maximal_worlds(workspace, fd_graph, pivot=pivot),
            stats=stats,
            count_cliques=True,
        )
        sp.set(cliques=stats.cliques_enumerated, violated=witness is not None)
    if witness is not None:
        return DCSatResult(satisfied=False, witness=witness, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)
