"""Incremental verdict maintenance: the component-scoped verdict ledger.

The paper's monitoring use case is a *stream*: transactions arrive,
confirm and evict continuously, and a registered constraint's verdict
must stay current at production cadence.  Re-running OptDCSat from
scratch after every state change throws away the one thing churn rarely
touches — the per-component sub-verdicts.  OptDCSat's unit of work is a
connected component of the ind-q-transaction graph (Proposition 2: no
satisfying assignment spans two components), so a verdict decomposes
into independent component verdicts, and most events leave most
components untouched:

* **issue(t) / forget(t)** change the membership of at most the
  components whose ind/fd neighborhood contains ``t``.  Every other
  component keeps exactly the same candidate set, the committed state is
  unchanged, and the clique sweep within a component only ever consults
  the component's own pending facts — so its previous sub-verdict
  (witness included) is *exactly* what a fresh sweep would produce.
  Components that did change surface as key misses: the ledger keys each
  sub-verdict by the frozenset of member transaction ids, and the
  survivors are recomputed fresh on every status call.

* **commit / absorb** grow the committed state, which can flip
  IND-appendability (and hence world membership) inside *any* component
  of a constraint the coupled-closure invalidation reaches — a
  footprint-refined rule here would be unsound for the same reason raw
  footprint intersection was in the monitor (see
  :func:`repro.core.monitor.coupled_relations`).  All entries of the
  invalidated constraints are therefore dirtied wholesale.

For a dirtied component the ledger supports two policies
(``witness_mode``):

* ``"strict"`` (default) — dirty entries are dropped and re-swept, so
  verdicts *and witnesses* are bit-identical to a fresh full
  recomputation (the churn-parity suite pins this).
* ``"revalidate"`` — a previously *violated* component first re-checks
  its stored witness (one greedy possible-world fixpoint plus one
  backend evaluation, instead of a ``2^K`` sweep); a previously
  *satisfied* component first re-runs the monotone short-circuit at
  component scope (one evaluation of ``q`` over ``R`` plus the whole
  candidate set).  Verdicts remain identical to a fresh recompute;
  witnesses are guaranteed to be valid violating possible worlds but
  may be non-maximal (a fresh sweep only ever reports maximal worlds).
  See ``docs/INCREMENTAL.md`` for the exact contract.

The ledger is owned by :class:`~repro.core.monitor.ConstraintMonitor`;
the solver pool solves only the dirty components
(:meth:`~repro.service.pool.SolverPool.solve_components`), and the
revalidate-vs-sweep costs feed the perf cost model under separate
``mode`` keys (:mod:`repro.obs.perf`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.possible_worlds import get_maximal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import EvaluationEngine
    from repro.core.results import DCSatStats
    from repro.core.workspace import Workspace

#: Ledger entries kept per constraint; the least recently touched entry
#: is evicted first.  Components come and go as the mempool churns, so
#: an unbounded ledger would accumulate keys that can never match again.
DEFAULT_MAX_ENTRIES = 512

WITNESS_MODES = ("strict", "revalidate")


@dataclass
class ComponentVerdict:
    """One component-scoped sub-verdict.

    ``key`` is the frozenset of member transaction ids (the component's
    surviving candidate set) and ``footprint`` the relations those
    members write — together the component identity the tentpole keys
    on.  ``witness`` is the first violating world the sweep found
    (``None`` when no world restricted to the component satisfies the
    query).  ``epoch`` records the checker epoch the sweep ran at;
    ``dirty`` marks entries whose committed state shifted underneath
    them (commit / absorb) and that therefore need revalidation.
    """

    key: frozenset[str]
    footprint: frozenset[str]
    witness: frozenset[str] | None
    epoch: int
    dirty: bool = False


def _fresh_counters() -> dict[str, int]:
    return {
        "reused": 0,
        "swept": 0,
        "revalidations": 0,
        "revalidation_hits": 0,
        "dirtied": 0,
        "pruned": 0,
        "evicted": 0,
        "epoch_resets": 0,
    }


@dataclass
class _LedgerState:
    """Per-constraint entry table (insertion order doubles as LRU)."""

    entries: dict[frozenset[str], ComponentVerdict] = field(
        default_factory=dict
    )


class VerdictLedger:
    """Component-scoped sub-verdicts, maintained across state changes.

    The owning monitor forwards every state change through
    :meth:`note_change` and resolves each status call through
    :meth:`plan` + :meth:`store`.  The ledger never talks to a backend
    itself — witness revalidation is the module-level helpers below,
    run by the monitor which owns the workspace and engine.
    """

    def __init__(
        self,
        witness_mode: str = "strict",
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ):
        if witness_mode not in WITNESS_MODES:
            raise ValueError(
                f"witness_mode must be one of {WITNESS_MODES}, "
                f"got {witness_mode!r}"
            )
        self.witness_mode = witness_mode
        self.max_entries = max_entries
        self._states: dict[str, _LedgerState] = {}
        #: Checker epoch the ledger last synchronized with.  ``None``
        #: until the first state change or solve; a solve observing an
        #: epoch the monitor never reported (direct checker mutation,
        #: e.g. :meth:`DCSatChecker.dry_run`) clears everything.
        self._epoch: int | None = None
        self.counters: dict[str, int] = _fresh_counters()

    # -- lifecycle -----------------------------------------------------

    def drop(self, name: str) -> None:
        """Forget every entry of an unregistered constraint."""
        self._states.pop(name, None)

    def clear(self) -> None:
        self._states.clear()

    @property
    def entry_count(self) -> int:
        return sum(len(state.entries) for state in self._states.values())

    # -- state-change propagation --------------------------------------

    def note_change(
        self,
        kind: str,
        tx_id: str | None,
        invalidated: Iterable[str],
        epoch: int,
    ) -> dict[str, int]:
        """Propagate one monitor state change into the ledger.

        Returns the per-constraint count of entries the change dirtied
        or pruned (the ``dirty_components`` payload the service layers
        surface) — empty for changes that only shift component
        membership, which the key-addressed lookup absorbs without
        touching any stored entry.
        """
        self._epoch = epoch
        affected: dict[str, int] = {}
        if kind in ("forget", "commit") and tx_id is not None:
            # The transaction left the pending set: entries containing
            # it can never match a future survivor again.
            for name, state in self._states.items():
                stale = [key for key in state.entries if tx_id in key]
                for key in stale:
                    del state.entries[key]
                if stale:
                    self.counters["pruned"] += len(stale)
                    affected[name] = affected.get(name, 0) + len(stale)
        if kind in ("commit", "absorb"):
            # The committed state grew: IND-appendability inside *any*
            # component of a reachable constraint may flip, so entries
            # are dirtied wholesale (see the module docstring for why a
            # footprint-refined rule would be unsound).
            for name in invalidated:
                state = self._states.get(name)
                if state is None or not state.entries:
                    continue
                if self.witness_mode == "strict":
                    count = len(state.entries)
                    state.entries.clear()
                else:
                    count = 0
                    for entry in state.entries.values():
                        if not entry.dirty:
                            entry.dirty = True
                            count += 1
                if count:
                    self.counters["dirtied"] += count
                    affected[name] = affected.get(name, 0) + count
        return affected

    # -- solve planning ------------------------------------------------

    def plan(
        self, name: str, epoch: int, survivors: list[set[str]]
    ) -> list[tuple[str, ComponentVerdict | None]]:
        """Disposition for each surviving component, in survivor order.

        ``("reuse", entry)`` — clean key hit, the stored sub-verdict is
        exactly what a fresh sweep would produce; ``("revalidate",
        entry)`` — dirty key hit under ``witness_mode="revalidate"``;
        ``("sweep", None)`` — no usable entry, run the clique sweep.
        """
        if self._epoch is None:
            self._epoch = epoch
        elif epoch != self._epoch:
            # A state change bypassed the monitor: nothing stored can be
            # trusted.  Start over (cheap — the next statuses repopulate).
            self.clear()
            self.counters["epoch_resets"] += 1
            self._epoch = epoch
        state = self._states.get(name)
        plan: list[tuple[str, ComponentVerdict | None]] = []
        for candidates in survivors:
            entry = None if state is None else state.entries.get(
                frozenset(candidates)
            )
            if entry is None:
                plan.append(("sweep", None))
            elif entry.dirty:
                plan.append(("revalidate", entry))
            else:
                plan.append(("reuse", entry))
        return plan

    def store(
        self,
        name: str,
        candidates: Iterable[str],
        footprint: frozenset[str],
        witness: frozenset[str] | None,
        epoch: int,
    ) -> ComponentVerdict:
        """Record (or refresh) one component sub-verdict."""
        key = frozenset(candidates)
        state = self._states.setdefault(name, _LedgerState())
        # Re-inserting moves the key to the end of the dict, which is
        # the LRU order eviction walks from the front.
        state.entries.pop(key, None)
        entry = ComponentVerdict(
            key=key, footprint=footprint, witness=witness, epoch=epoch
        )
        state.entries[key] = entry
        while len(state.entries) > self.max_entries:
            oldest = next(iter(state.entries))
            del state.entries[oldest]
            self.counters["evicted"] += 1
        return entry

    def touch(self, name: str, entry: ComponentVerdict) -> None:
        """Refresh an entry's LRU position after a reuse."""
        state = self._states.get(name)
        if state is not None and entry.key in state.entries:
            state.entries.pop(entry.key)
            state.entries[entry.key] = entry

    # -- exposition ----------------------------------------------------

    def snapshot(self) -> dict:
        """The ledger's state for ``/perfz`` and ``describe()``."""
        return {
            "witness_mode": self.witness_mode,
            "constraints": len(self._states),
            "entries": self.entry_count,
            "counters": dict(self.counters),
        }

    def merge_snapshot(self, other: dict, into: dict) -> dict:
        """Fold another snapshot into *into* (sharded aggregation)."""
        into.setdefault("witness_mode", other.get("witness_mode"))
        into["constraints"] = into.get("constraints", 0) + other.get(
            "constraints", 0
        )
        into["entries"] = into.get("entries", 0) + other.get("entries", 0)
        counters = into.setdefault("counters", _fresh_counters())
        for key, value in (other.get("counters") or {}).items():
            counters[key] = counters.get(key, 0) + value
        return into

    def __repr__(self) -> str:
        return (
            f"VerdictLedger({len(self._states)} constraints, "
            f"{self.entry_count} entries, mode={self.witness_mode})"
        )


# ----------------------------------------------------------------------
# Revalidation primitives (run by the monitor, which owns the engine)


def revalidate_witness(
    workspace: "Workspace",
    engine: "EvaluationEngine",
    query,
    witness: frozenset[str],
    stats: "DCSatStats | None" = None,
) -> bool:
    """Is the stored violating world still a violating possible world?

    Two checks, both far cheaper than a ``2^K`` sweep: the greedy
    ``getMaximal`` fixpoint restricted to the witness itself (the world
    is appendable iff the fixpoint reaches all of it), then one backend
    evaluation of ``q`` over it.  A hit keeps the component's VIOLATED
    verdict with the same witness; note the witness may no longer be
    *maximal* after base growth — valid for the verdict (monotone
    queries: any violating possible world suffices) but not necessarily
    the world a fresh sweep would report.
    """
    if not all(tx_id in workspace.db.pending_ids for tx_id in witness):
        return False
    world = get_maximal(workspace, witness)
    if world != witness:
        return False
    if stats is not None:
        stats.evaluations += 1
    return bool(engine.evaluate(query, witness))


async def revalidate_witness_async(
    workspace: "Workspace",
    engine: "EvaluationEngine",
    query,
    witness: frozenset[str],
    stats: "DCSatStats | None" = None,
) -> bool:
    """:func:`revalidate_witness` with the evaluation awaited."""
    if not all(tx_id in workspace.db.pending_ids for tx_id in witness):
        return False
    world = get_maximal(workspace, witness)
    if world != witness:
        return False
    if stats is not None:
        stats.evaluations += 1
    return bool(await engine.evaluate_async(query, witness))


def component_still_satisfied(
    engine: "EvaluationEngine",
    query,
    candidates: Iterable[str],
    stats: "DCSatStats | None" = None,
) -> bool:
    """The monotone short-circuit at component scope.

    Every possible world restricted to the component is a subset of
    ``R ∪ {facts of candidates}``; for a monotone query, ``q`` false
    over that superset implies ``q`` false in each of them — one
    evaluation confirms the component's SATISFIED verdict survives a
    base-state change.
    """
    if stats is not None:
        stats.evaluations += 1
    return not engine.evaluate(query, frozenset(candidates))


async def component_still_satisfied_async(
    engine: "EvaluationEngine",
    query,
    candidates: Iterable[str],
    stats: "DCSatStats | None" = None,
) -> bool:
    """:func:`component_still_satisfied` with the evaluation awaited."""
    if stats is not None:
        stats.evaluations += 1
    return not await engine.evaluate_async(query, frozenset(candidates))


def component_footprint(db, candidates: Iterable[str]) -> frozenset[str]:
    """The relations the component's member transactions write."""
    relations: set[str] = set()
    for tx_id in candidates:
        relations.update(db.transaction(tx_id).relation_names)
    return frozenset(relations)


__all__ = [
    "ComponentVerdict",
    "VerdictLedger",
    "component_footprint",
    "component_still_satisfied",
    "component_still_satisfied_async",
    "revalidate_witness",
    "revalidate_witness_async",
]
