"""Certain answers over blockchain databases (Section 5's aside).

The paper observes that the classical *certain answers* question — which
tuples appear in the query result over **every** possible world — is
less interesting here than denial constraints, because for positive
conjunctive queries the certain answers are precisely the answers over
the current state ``R`` (every world contains ``R``, and ``R`` itself is
a world).  This module makes that observation executable:

* :func:`certain_answers` — the general definition, by world
  enumeration (exponential; small instances);
* :func:`certain_answers_monotone` — the PTIME shortcut for monotone
  queries: evaluate over ``R`` alone;
* plus *possible answers* (appear in **some** world), the other side of
  the coin, which for monotone queries reduces to the maximal worlds the
  DCSat machinery already enumerates.
"""

from __future__ import annotations

from repro.core.bitset import make_fd_graph
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.possible_worlds import enumerate_possible_worlds, get_maximal
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.query.analysis import is_monotone
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.evaluator import iter_assignments

#: An answer: the tuple of values bound to the query's variables, in
#: sorted variable-name order.
Answer = tuple


def _answers_over(query: ConjunctiveQuery, view) -> set[Answer]:
    names = sorted(v.name for v in query.variables)
    return {
        tuple(assignment[name] for name in names)
        for assignment in iter_assignments(query, view)
    }


def certain_answers(
    db: BlockchainDatabase,
    query: ConjunctiveQuery,
    world_limit: int = 4096,
) -> set[Answer]:
    """Answers present in *every* possible world (the general definition).

    Enumerates ``Poss(D)`` — exponential; guarded by *world_limit*.
    """
    if isinstance(query, AggregateQuery):
        raise AlgorithmError("certain answers are defined for conjunctive queries")
    workspace = Workspace(db)
    result: set[Answer] | None = None
    for world in enumerate_possible_worlds(db, limit=world_limit):
        workspace.set_active(world)
        answers = _answers_over(query, workspace)
        result = answers if result is None else (result & answers)
        if not result:
            break
    workspace.clear_active()
    return result or set()


def certain_answers_monotone(
    db: BlockchainDatabase, query: ConjunctiveQuery
) -> set[Answer]:
    """Certain answers of a *monotone* query: just evaluate over ``R``.

    ``R`` is itself a possible world and a subset of every other one, so
    for monotone queries the intersection over all worlds equals the
    answers over ``R`` — the paper's observation that certain answering
    collapses in this setting.
    """
    if not is_monotone(query):
        raise AlgorithmError(
            "the R-only shortcut requires a monotone query; use "
            "certain_answers() for general ones"
        )
    workspace = Workspace(db)
    workspace.clear_active()
    return _answers_over(query, workspace)


def possible_answers(
    db: BlockchainDatabase,
    query: ConjunctiveQuery,
    pivot: bool = True,
) -> set[Answer]:
    """Answers appearing in *some* possible world, for monotone queries.

    A monotone answer appears in some world iff it appears in some
    *maximal* world, so this walks the same maximal cliques DCSat does —
    no exponential world enumeration.
    """
    if not is_monotone(query):
        raise AlgorithmError("possible_answers requires a monotone query")
    workspace = Workspace(db)
    fd_graph = make_fd_graph(None, workspace)
    answers: set[Answer] = set()
    for clique in fd_graph.maximal_cliques(pivot=pivot):
        world = get_maximal(workspace, clique)
        workspace.set_active(world)
        answers |= _answers_over(query, workspace)
    workspace.clear_active()
    return answers
