"""PTIME special cases of the denial-constraint satisfaction problem.

Theorems 1 and 2 identify fragments where ``DCSat`` is tractable; this
module implements direct polynomial algorithms for the constructive
cases (data complexity — the query is constant-size):

* ``DCSat(Qc, {key, fd})`` — conjunctive queries (negation allowed) when
  only functional dependencies are declared.  With FDs alone, *every*
  pairwise-consistent set of pending transactions is appendable in any
  order, so ``q`` is violated iff some satisfying assignment of its
  positive part touches a mutually-consistent support set whose minimal
  world avoids the negated facts.
* ``DCSat(Qc, {ind})`` — conjunctive queries when only inclusion
  dependencies are declared.  There are no conflicts, so there is a
  single ⊆-maximal world; negation is handled by removing the
  transactions carrying forbidden facts and re-saturating.
* ``DCSat(Q_max, {key, fd})`` with ``>``/``>=`` and the ``<``-threshold
  aggregate cases of Theorem 2.2 (count/cntd/sum decrease to minimal
  worlds).
* ``DCSat(Q+_α,>, {ind})`` — positive aggregates with ``>`` over the
  unique maximal world (Theorem 2.4; for ``sum`` the caller must vouch
  for non-negative values).

Calling a solver outside its fragment raises
:class:`~repro.errors.AlgorithmError` — these functions never guess.
"""

from __future__ import annotations

import itertools

from repro.core.fd_graph import FdTransactionGraph
from repro.core.possible_worlds import get_maximal
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.query.ast import AggregateQuery, ConjunctiveQuery, Constant
from repro.query.evaluator import evaluate, iter_matches

#: Guard for the provider-combination product (polynomial in the data,
#: exponent bounded by the constant query size, but still guarded).
MAX_PROVIDER_COMBINATIONS = 4096


def _positive_body(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The query with negated atoms dropped (safety is preserved —
    safety only ever relies on positive atoms)."""
    if query.is_positive:
        return query
    return ConjunctiveQuery(
        query.positive_atoms, query.comparisons, name=f"{query.name}_pos"
    )


def _ground_negated_atoms(
    query: ConjunctiveQuery, assignment: dict[str, object]
) -> list[tuple[str, tuple]]:
    facts = []
    for atom in query.negated_atoms:
        values = tuple(
            term.value if isinstance(term, Constant) else assignment[term.name]
            for term in atom.terms
        )
        facts.append((atom.relation, values))
    return facts


def _provider_choices(workspace: Workspace, matched):
    """Provider option lists for the matched facts outside the base."""
    options: list[list[str]] = []
    for relation, values in matched:
        if workspace.fact_in_base(relation, values):
            continue
        providers = sorted(workspace.providers_of(relation, values))
        if not providers:
            return None
        options.append(providers)
    total = 1
    for providers in options:
        total *= len(providers)
    if total > MAX_PROVIDER_COMBINATIONS:
        raise AlgorithmError(
            f"tractable solver aborted: {total} provider combinations"
        )
    return options


def dcsat_fd_only(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    query: ConjunctiveQuery,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """``DCSat(Qc, {key, fd})`` in polynomial time (Theorem 1.1).

    Works for arbitrary conjunctive queries, including negation — the
    witnessing world is the *minimal* one ``R ∪ S``.
    """
    constraints = workspace.db.constraints
    if constraints.has_inds:
        raise AlgorithmError("dcsat_fd_only requires a {key, fd}-only database")
    if isinstance(query, AggregateQuery):
        raise AlgorithmError("dcsat_fd_only handles conjunctive queries only")
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "tractable-fd"

    positive = _positive_body(query)
    workspace.activate_all()
    matches = [
        (dict(assignment), list(matched))
        for assignment, matched in iter_matches(positive, workspace)
    ]
    for assignment, matched in matches:
        stats.assignments_examined += 1
        forbidden = _ground_negated_atoms(query, assignment)
        if any(workspace.fact_in_base(rel, values) for rel, values in forbidden):
            continue
        options = _provider_choices(workspace, matched)
        if options is None:
            continue
        for combo in itertools.product(*options) if options else [()]:
            support = frozenset(combo)
            if not fd_graph.is_clique(support):
                continue
            # Minimal world R ∪ S: negated facts must not be dragged in
            # by the support transactions themselves.
            support_facts: set[tuple[str, tuple]] = set()
            for tx_id in support:
                support_facts.update(workspace.db.transaction(tx_id).facts)
            if any(fact in support_facts for fact in forbidden):
                continue
            stats.worlds_checked += 1
            return DCSatResult(satisfied=False, witness=support, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)


def dcsat_ind_only(
    workspace: Workspace,
    query: ConjunctiveQuery,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """``DCSat(Qc, {ind})`` in polynomial time (Theorem 1.1).

    With inclusion dependencies only there are no conflicts: the pending
    set has one ⊆-maximal appendable subset ``M``, and every world is a
    subset of ``R ∪ M``.  For each satisfying assignment of the positive
    part, remove the transactions carrying its (grounded) negated facts,
    re-saturate, and test whether the assignment's facts survive.
    """
    constraints = workspace.db.constraints
    if constraints.has_fds:
        raise AlgorithmError("dcsat_ind_only requires an {ind}-only database")
    if isinstance(query, AggregateQuery):
        raise AlgorithmError("dcsat_ind_only handles conjunctive queries only")
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "tractable-ind"

    all_ids = list(workspace.db.pending_ids)
    maximal = get_maximal(workspace, all_ids)
    stats.worlds_checked += 1
    positive = _positive_body(query)
    workspace.set_active(maximal)
    matches = [
        (dict(assignment), list(matched))
        for assignment, matched in iter_matches(positive, workspace)
    ]
    for assignment, matched in matches:
        stats.assignments_examined += 1
        forbidden = _ground_negated_atoms(query, assignment)
        if any(workspace.fact_in_base(rel, values) for rel, values in forbidden):
            continue
        banned_txs: set[str] = set()
        for rel, values in forbidden:
            banned_txs |= workspace.providers_of(rel, values)
        if banned_txs:
            allowed = [tx for tx in all_ids if tx not in banned_txs]
            world = get_maximal(workspace, allowed)
            stats.worlds_checked += 1
        else:
            world = maximal
        workspace.set_active(world)
        survives = all(
            workspace.has_fact(rel, values) for rel, values in matched
        )
        workspace.set_active(maximal)
        if survives:
            return DCSatResult(satisfied=False, witness=world, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)


def _minimal_world_aggregate(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    query: AggregateQuery,
    stats: DCSatStats,
) -> DCSatResult:
    """``α(B) < c`` (or ``<=``) over {key, fd}: scan minimal worlds.

    A world with a non-empty bag and a small aggregate exists iff some
    single assignment's minimal world ``R ∪ S(h)`` already passes the
    threshold — aggregates over positive bodies only grow with more
    transactions (count/cntd always; sum for the non-negative workloads
    these constraints are written for).
    """
    positive = _positive_body(query.body)
    workspace.activate_all()
    matches = [
        (dict(assignment), list(matched))
        for assignment, matched in iter_matches(positive, workspace)
    ]
    for _, matched in matches:
        stats.assignments_examined += 1
        options = _provider_choices(workspace, matched)
        if options is None:
            continue
        for combo in itertools.product(*options) if options else [()]:
            support = frozenset(combo)
            if not fd_graph.is_clique(support):
                continue
            workspace.set_active(support)
            stats.worlds_checked += 1
            stats.evaluations += 1
            if evaluate(query, workspace):
                return DCSatResult(satisfied=False, witness=support, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)


def dcsat_aggregate_fd(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    query: AggregateQuery,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """Tractable aggregate cases over ``{key, fd}`` (Theorem 2.1/2.2).

    Supported: ``max`` with ``>``/``>=`` (witnessed by one assignment),
    and ``count``/``cntd``/``sum``/``max``/``min`` with ``<``/``<=``
    (witnessed by a minimal world).  The body must be positive.
    """
    constraints = workspace.db.constraints
    if constraints.has_inds:
        raise AlgorithmError("dcsat_aggregate_fd requires a {key, fd}-only database")
    if not query.is_positive:
        raise AlgorithmError("dcsat_aggregate_fd requires a positive body")
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "tractable-fd-agg"

    if query.func == "max" and query.op in (">", ">="):
        # max(B) > c iff one assignment exceeds c and extends to a world;
        # with FDs only, the minimal world of the assignment suffices.
        positive = _positive_body(query.body)
        workspace.activate_all()
        matches = [
            (dict(assignment), list(matched))
            for assignment, matched in iter_matches(positive, workspace)
        ]
        for assignment, matched in matches:
            stats.assignments_examined += 1
            term = query.agg_terms[0]
            value = (
                term.value if isinstance(term, Constant) else assignment[term.name]
            )
            comparison_ok = (
                value > query.threshold
                if query.op == ">"
                else value >= query.threshold
            )
            if not comparison_ok:
                continue
            options = _provider_choices(workspace, matched)
            if options is None:
                continue
            for combo in itertools.product(*options) if options else [()]:
                support = frozenset(combo)
                if fd_graph.is_clique(support):
                    stats.worlds_checked += 1
                    return DCSatResult(
                        satisfied=False, witness=support, stats=stats
                    )
        return DCSatResult(satisfied=True, stats=stats)

    if query.op in ("<", "<="):
        return _minimal_world_aggregate(workspace, fd_graph, query, stats)

    raise AlgorithmError(
        f"aggregate case ({query.func}, {query.op}) over {{key, fd}} is "
        "CoNP-complete (Theorem 2.3) or unsupported; use NaiveDCSat"
    )


def dcsat_aggregate_ind(
    workspace: Workspace,
    query: AggregateQuery,
    assume_nonnegative: bool = False,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """``DCSat(Q+_α,>, {ind})`` (Theorem 2.4): evaluate at the unique
    maximal world.

    ``count``/``cntd``/``max`` only grow with more transactions; ``sum``
    requires the caller to vouch that aggregated values are non-negative.
    """
    constraints = workspace.db.constraints
    if constraints.has_fds:
        raise AlgorithmError("dcsat_aggregate_ind requires an {ind}-only database")
    if not query.is_positive:
        raise AlgorithmError("dcsat_aggregate_ind requires a positive body")
    if query.op not in (">", ">="):
        raise AlgorithmError(
            f"aggregate case ({query.func}, {query.op}) over {{ind}} is "
            "CoNP-complete (Theorem 2.5/2.6) or unsupported; use NaiveDCSat"
        )
    if query.func == "sum" and not assume_nonnegative:
        raise AlgorithmError(
            "sum over {ind} is only monotone for non-negative values; "
            "pass assume_nonnegative=True to vouch for the data"
        )
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "tractable-ind-agg"
    maximal = get_maximal(workspace, workspace.db.pending_ids)
    stats.worlds_checked += 1
    stats.evaluations += 1
    if evaluate(query, workspace):
        return DCSatResult(satisfied=False, witness=maximal, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)
