"""The blockchain database triple ``D = (R, I, T)`` (Section 4)."""

from __future__ import annotations

from typing import Iterable

from repro.errors import IntegrityViolationError, ReproError
from repro.relational.checking import find_violations
from repro.relational.constraints import ConstraintSet
from repro.relational.database import Database
from repro.relational.transaction import Transaction


class BlockchainDatabase:
    """A blockchain database: current state, constraints, pending transactions.

    * ``current`` — the relations already committed to the chain (``R``);
      must satisfy the constraints (``R |= I``), which is validated on
      construction unless ``validate=False``.
    * ``constraints`` — the integrity constraints ``I``.
    * ``pending`` — the pending transactions ``T = {T1, ..., Tk}``, each
      an immutable set of ground tuples.  Pending transactions need *not*
      be mutually consistent — that is the whole point of the model.
    """

    def __init__(
        self,
        current: Database,
        constraints: ConstraintSet,
        pending: Iterable[Transaction] = (),
        validate: bool = True,
    ):
        if constraints.schema is not current.schema:
            # Schemas are compared by identity first (the common case) and
            # structurally otherwise, so independently built but equal
            # schemas are accepted.
            current_rels = {r.name: r for r in current.schema}
            constraint_rels = {r.name: r for r in constraints.schema}
            if current_rels != constraint_rels:
                raise ReproError(
                    "current state and constraints use different schemas"
                )
        self.current = current
        self.constraints = constraints
        self._pending: dict[str, Transaction] = {}
        for tx in pending:
            self.add_pending(tx)
        if validate:
            violations = find_violations(current, constraints)
            if violations:
                raise IntegrityViolationError(
                    f"current state violates {len(violations)} constraint(s); "
                    f"first: {violations[0]}",
                    violations,
                )

    @property
    def pending(self) -> tuple[Transaction, ...]:
        return tuple(self._pending.values())

    @property
    def pending_ids(self) -> tuple[str, ...]:
        return tuple(self._pending)

    def transaction(self, tx_id: str) -> Transaction:
        try:
            return self._pending[tx_id]
        except KeyError:
            raise ReproError(f"no pending transaction {tx_id!r}") from None

    def add_pending(self, tx: Transaction) -> None:
        """Issue a transaction: add it to the pending set ``T``."""
        if tx.tx_id in self._pending:
            raise ReproError(f"duplicate pending transaction id {tx.tx_id!r}")
        for rel in tx.relation_names:
            if rel not in self.current:
                raise ReproError(
                    f"transaction {tx.tx_id!r} targets unknown relation {rel!r}"
                )
            schema = self.current[rel].schema
            for values in tx.tuples(rel):
                schema.validate_tuple(values)
        self._pending[tx.tx_id] = tx

    def remove_pending(self, tx_id: str) -> Transaction:
        """Drop a pending transaction (e.g. it was committed, or the
        simulation evicts it from the mempool)."""
        tx = self.transaction(tx_id)
        del self._pending[tx_id]
        return tx

    def __repr__(self) -> str:
        return (
            f"BlockchainDatabase({self.current.total_tuples()} committed tuples, "
            f"{len(self.constraints)} constraints, {len(self._pending)} pending)"
        )
