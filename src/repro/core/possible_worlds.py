"""Possible worlds: the can-append relation, recognition and enumeration.

``R →(T,I) R'`` holds when ``R' = R`` or ``R' = R ∪ T`` for a pending
transaction ``T`` with ``R' |= I``; ``Poss(D)`` is the transitive
closure (Section 4).  This module provides:

* :func:`enumerate_possible_worlds` — all of ``Poss(D)`` (exponential;
  meant for small instances, tests and the brute-force oracle);
* :func:`is_possible_world` — the PTIME recognition of Proposition 1;
* :func:`get_maximal` — the ``getMaximal`` procedure of Figure 4, over a
  :class:`~repro.core.workspace.Workspace` (it mutates the workspace's
  active set to the maximal world it constructs).

Why the greedy fixpoints are correct: functional-dependency satisfaction
is *anti-monotone* (every subset of a satisfying relation satisfies the
FDs), so FD-consistency of the final state implies FD-consistency of
every intermediate state; inclusion-dependency "addability" is
*monotone* (new tuples only add parents), so a transaction that can be
appended now can still be appended later.  Hence repeatedly adding any
currently-appendable transaction reaches a unique fixpoint.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.workspace import Workspace
from repro.relational.checking import can_extend, find_violations
from repro.relational.database import Database


def world_database(
    db: BlockchainDatabase, included: Iterable[str]
) -> Database:
    """Materialize the world ``R ∪ {facts of included transactions}``."""
    world = db.current.copy()
    for tx_id in included:
        tx = db.transaction(tx_id)
        for rel, values in tx:
            world.insert(rel, values)
    return world


def enumerate_possible_worlds(
    db: BlockchainDatabase, limit: int | None = None
) -> Iterator[frozenset[str]]:
    """Yield every possible world of ``D`` as a frozenset of included ids.

    Exhaustive BFS over the can-append relation; the empty frozenset
    (the current state itself) is always yielded first.  ``limit`` guards
    against blow-up: the iterator raises :class:`ReproError` after
    yielding that many worlds.
    """
    from repro.errors import ReproError

    workspace = Workspace(db)
    seen: set[frozenset[str]] = set()
    frontier: list[frozenset[str]] = [frozenset()]
    seen.add(frozenset())
    count = 0
    while frontier:
        next_frontier: list[frozenset[str]] = []
        for world in frontier:
            yield world
            count += 1
            if limit is not None and count > limit:
                raise ReproError(
                    f"possible-world enumeration exceeded limit of {limit}"
                )
            workspace.set_active(world)
            for tx_id in db.pending_ids:
                if tx_id in world:
                    continue
                candidate = world | {tx_id}
                if candidate in seen:
                    continue
                if can_extend(
                    workspace, db.constraints, workspace.transaction_facts(tx_id)
                ):
                    seen.add(candidate)
                    next_frontier.append(candidate)
        frontier = next_frontier


def is_possible_world(db: BlockchainDatabase, candidate: Database) -> bool:
    """Decide ``candidate ∈ Poss(D)`` in polynomial time (Proposition 1).

    Greedy saturation: repeatedly append any pending transaction whose
    facts all lie inside *candidate* and whose addition preserves ``I``.
    Correct because appendability only grows as tuples accumulate (see
    the module docstring), and appending a transaction contained in the
    target can never overshoot it.
    """
    # The candidate must extend the current state...
    for rel_name in db.current.relation_names:
        if rel_name not in candidate:
            return False
        if not db.current[rel_name].tuples <= candidate[rel_name].tuples:
            return False
    # ... and be consistent itself.
    if find_violations(candidate, db.constraints):
        return False

    # Facts of the candidate that are not in the current state must be
    # exactly covered by a sequence of appendable transactions.
    target_delta: set[tuple[str, tuple]] = set()
    for rel_name in candidate.relation_names:
        if rel_name not in db.current:
            return False
        base_tuples = db.current[rel_name].tuples
        for values in candidate[rel_name]:
            if values not in base_tuples:
                target_delta.add((rel_name, values))

    workspace = Workspace(db)
    eligible = [
        tx_id
        for tx_id in db.pending_ids
        if all(fact in target_delta or db.current.contains_fact(*fact)
               for fact in db.transaction(tx_id))
    ]
    included: set[str] = set()
    covered: set[tuple[str, tuple]] = set()
    progress = True
    while progress and covered != target_delta:
        progress = False
        workspace.set_active(included)
        for tx_id in list(eligible):
            if tx_id in included:
                continue
            if can_extend(
                workspace, db.constraints, workspace.transaction_facts(tx_id)
            ):
                included.add(tx_id)
                covered.update(
                    fact for fact in db.transaction(tx_id) if fact in target_delta
                )
                workspace.set_active(included)
                progress = True
    return covered == target_delta


def get_maximal(
    workspace: Workspace,
    candidates: Iterable[str],
    start: Iterable[str] = (),
) -> frozenset[str]:
    """``getMaximal`` (Figure 4): a maximal world over *candidates*.

    Starting from the world selected by *start* (normally empty),
    repeatedly appends every candidate transaction whose addition
    preserves the constraints, until a fixpoint.  Leaves the workspace's
    active set at the resulting world and returns it.

    The result is *unique* (order-independent) when the candidates are
    mutually fd-consistent — a clique of the fd-transaction graph, which
    is how the DCSat algorithms always call it — because FD obstacles
    then never arise and IND-appendability only grows.  Over a candidate
    set containing conflicts, the iteration order decides the races
    (first-come wins), which is exactly the behaviour the likelihood
    module's arrival-order semantics builds on.
    """
    constraints = workspace.db.constraints
    included = set(start)
    workspace.set_active(included)
    remaining = [tx_id for tx_id in candidates if tx_id not in included]
    progress = True
    while remaining and progress:
        progress = False
        leftover: list[str] = []
        for tx_id in remaining:
            if can_extend(
                workspace, constraints, workspace.transaction_facts(tx_id)
            ):
                included.add(tx_id)
                workspace.activate(tx_id)
                progress = True
            else:
                leftover.append(tx_id)
        remaining = leftover
    return frozenset(included)
