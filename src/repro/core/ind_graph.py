"""The ind-q-transaction graph ``G^{q,ind}_T`` (Section 6.2, Figure 3).

Edges come from equality constraints ``Θ = Θ_I ∪ Θ_q``: there is an edge
``(T, T')`` when some ``θ ∈ Θ`` is satisfied by a pair of their tuples.
OptDCSat only needs the *connected components*, so instead of
materializing edges we union transactions sharing a projected value:
for ``θ = L[X̄] = S[Ȳ]``, every transaction contributing a tuple of
``L`` projecting to value ``v`` is connected to every transaction
contributing a tuple of ``S`` projecting to ``v`` — i.e. per projected
value, all contributors on both sides fall in one component (they are
pairwise linked through any contributor of the opposite side).

The Θ_I part is precomputed in the steady state; Θ_q edges are added per
query on top of a cheap clone of the union-find.
"""

from __future__ import annotations

from repro.core.workspace import Workspace
from repro.query.analysis import (
    EqualityConstraint,
    equality_constraints_from_inds,
    equality_constraints_from_query,
)
from repro.query.ast import AggregateQuery, ConjunctiveQuery


class _UnionFind:
    """Union-find with path halving; supports cheap cloning."""

    __slots__ = ("parent",)

    def __init__(self, parent: dict[str, str] | None = None):
        self.parent: dict[str, str] = dict(parent) if parent else {}

    def add(self, item: str) -> None:
        self.parent.setdefault(item, item)

    def find(self, item: str) -> str:
        self.parent.setdefault(item, item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb

    def union_all(self, items) -> None:
        items = list(items)
        for other in items[1:]:
            self.union(items[0], other)

    def components(self) -> list[frozenset[str]]:
        groups: dict[str, set[str]] = {}
        for item in self.parent:
            groups.setdefault(self.find(item), set()).add(item)
        # Deterministic component order (lowest member first): the
        # evaluation-plan stream — and hence engine/planner parity —
        # must not depend on hash randomization.
        return sorted((frozenset(g) for g in groups.values()), key=min)

    def clone(self) -> "_UnionFind":
        return _UnionFind(self.parent)


class IndQTransactionGraph:
    """Connected-component index for ``G^{q,ind}_T``."""

    def __init__(self, workspace: Workspace):
        self._workspace = workspace
        self._ind_constraints = equality_constraints_from_inds(
            workspace.db.constraints
        )
        self._base_uf: _UnionFind | None = None

    # ------------------------------------------------------------------
    # Steady-state maintenance

    def invalidate(self) -> None:
        """Drop the precomputed Θ_I union-find (pending set changed)."""
        self._base_uf = None

    def _apply_constraint(
        self, uf: _UnionFind, constraint: EqualityConstraint
    ) -> None:
        left = self._workspace.pending_projections(
            constraint.left, constraint.left_positions
        )
        right = self._workspace.pending_projections(
            constraint.right, constraint.right_positions
        )
        # Iterate the smaller side for speed; the semantics are symmetric.
        if len(left) > len(right):
            left, right = right, left
        for key, group_a in left.items():
            group_b = right.get(key)
            if group_b:
                combined = group_a | group_b
                if len(combined) > 1:
                    uf.union_all(combined)

    def _ind_union_find(self) -> _UnionFind:
        if self._base_uf is None:
            uf = _UnionFind()
            for tx_id in self._workspace.db.pending_ids:
                uf.add(tx_id)
            for constraint in self._ind_constraints:
                self._apply_constraint(uf, constraint)
            self._base_uf = uf
        return self._base_uf

    # ------------------------------------------------------------------
    # Per-query components

    def components(
        self, query: ConjunctiveQuery | AggregateQuery | None = None
    ) -> list[frozenset[str]]:
        """Connected components of ``G^{q,ind}_T``.

        With ``query=None`` this is ``G^ind_T`` (the precomputed part of
        Figure 3); otherwise the Θ_q edges of the query are added.
        """
        base = self._ind_union_find()
        if query is None:
            return base.components()
        uf = base.clone()
        for constraint in equality_constraints_from_query(query):
            self._apply_constraint(uf, constraint)
        return uf.components()

    def ind_edge_count(self) -> int:
        """Number of non-singleton Θ_I components (diagnostics only)."""
        return sum(1 for c in self._ind_union_find().components() if len(c) > 1)

    def __repr__(self) -> str:
        components = self._ind_union_find().components()
        return (
            f"IndQTransactionGraph({len(self._workspace.db.pending_ids)} txs, "
            f"{len(components)} ind-components)"
        )
