"""OptDCSat (Figure 5).

For connected, monotone denial constraints: split the pending set into
connected components of the ind-q-transaction graph, discard components
that cannot cover the query's constants, and run the maximal-clique
machinery within each surviving component independently (Proposition 2:
no satisfying assignment spans two components).

Enumeration is decoupled from evaluation: :func:`component_survivors`
plus the per-component :func:`~repro.core.naive.maximal_worlds` stream
form the evaluation plan, and :func:`solve_component` hands the stream
to an :class:`~repro.core.engine.EvaluationEngine` (sync, batched or
async — see :func:`opt_dcsat_async`).

Reproduction note: Proposition 2, as stated in the paper, can fail when
two pending transactions are joined only *through tuples of the current
state* — the chain of shared query variables passes through ``R``, so no
equality constraint links the transactions directly and they may land in
different components even though one assignment touches both.  This
implementation is faithful to the paper (the Bitcoin workloads of the
evaluation never trigger the case, because a committed tuple's join
partners on the chain side are committed too); the test suite contains a
crafted instance demonstrating the divergence, and
:mod:`repro.core.assignment` provides a sound-and-complete alternative.
"""

from __future__ import annotations

from repro.core.coverage import covers
from repro.core.engine import EvaluationEngine, as_engine
from repro.core.fd_graph import FdTransactionGraph
from repro.core.ind_graph import IndQTransactionGraph
from repro.core.naive import WorldEvaluator, maximal_worlds
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.obs.trace import span as obs_span
from repro.query.analysis import constant_patterns, is_connected
from repro.query.ast import AggregateQuery, ConjunctiveQuery


def component_survivors(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    ind_graph: IndQTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    use_coverage: bool = True,
    stats: DCSatStats | None = None,
) -> list[set[str]]:
    """The components of ``G^{q,ind}_T`` that survive the cheap pruning.

    Components also include never-appendable transactions (they carry
    no worlds); restrict every component to fd-graph nodes.  Coverage
    filtering happens for every component up front (the cheap test),
    then only the surviving components pay for clique enumeration.

    Each survivor is an independent unit of work (Proposition 2: no
    satisfying assignment spans two components), which is exactly what
    :mod:`repro.service.pool` fans out across worker processes.
    """
    patterns = constant_patterns(query)
    survivors: list[set[str]] = []
    with obs_span("component_prune") as sp:
        total = pruned = 0
        for component in ind_graph.components(query):
            total += 1
            if stats is not None:
                stats.components_total += 1
            # The bitset planner answers the component ∩ nodes
            # intersection through its interner masks (one AND sweep);
            # the set planner intersects Python sets.
            restrict = getattr(fd_graph, "restrict_appendable", None)
            if restrict is not None:
                candidates = restrict(component)
            else:
                candidates = component & fd_graph.nodes
            if not candidates:
                pruned += 1
                if stats is not None:
                    stats.components_pruned += 1
                continue
            if use_coverage and not covers(workspace, candidates, patterns):
                pruned += 1
                if stats is not None:
                    stats.components_pruned += 1
                continue
            if stats is not None:
                stats.max_component_size = max(
                    stats.max_component_size, len(candidates)
                )
            survivors.append(candidates)
        sp.set(components=total, pruned=pruned, survivors=len(survivors))
    return survivors


def solve_component(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    candidates: set[str],
    evaluate_world: WorldEvaluator | EvaluationEngine,
    pivot: bool = True,
    stats: DCSatStats | None = None,
) -> frozenset[str] | None:
    """Run the maximal-clique machinery within one surviving component.

    Returns the first violating world (as a frozenset of pending
    transaction ids), or ``None`` when no possible world restricted to
    *candidates* satisfies the query.  This is the picklable task unit
    of the parallel solver pool: it only needs the workspace, the
    fd-graph and a candidate set — no ind-graph, no checker.
    """
    engine = as_engine(evaluate_world)
    before = stats.cliques_enumerated if stats is not None else 0
    with obs_span(
        "clique_sweep", candidates=len(candidates), engine=engine.name
    ) as sp:
        witness = engine.sweep(
            query,
            maximal_worlds(workspace, fd_graph, restrict=candidates, pivot=pivot),
            stats=stats,
            count_cliques=True,
        )
        after = stats.cliques_enumerated if stats is not None else 0
        sp.set(cliques=after - before, violated=witness is not None)
    return witness


async def solve_component_async(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    candidates: set[str],
    engine: EvaluationEngine,
    pivot: bool = True,
    stats: DCSatStats | None = None,
) -> frozenset[str] | None:
    """:func:`solve_component` on the engine's coroutine surface."""
    before = stats.cliques_enumerated if stats is not None else 0
    with obs_span(
        "clique_sweep", candidates=len(candidates), engine=engine.name
    ) as sp:
        witness = await engine.sweep_async(
            query,
            maximal_worlds(workspace, fd_graph, restrict=candidates, pivot=pivot),
            stats=stats,
            count_cliques=True,
        )
        after = stats.cliques_enumerated if stats is not None else 0
        sp.set(cliques=after - before, violated=witness is not None)
    return witness


def opt_dcsat(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    ind_graph: IndQTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    evaluate_world: WorldEvaluator | EvaluationEngine,
    pivot: bool = True,
    use_coverage: bool = True,
    check_connected: bool = True,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """Decide ``D |= ¬q`` for a connected, monotone denial constraint.

    ``use_coverage=False`` disables the ``Covers`` pruning (ablation).
    ``check_connected=False`` skips the connectivity validation (callers
    that already verified it).
    """
    if check_connected and not is_connected(query):
        raise AlgorithmError(
            "OptDCSat requires a connected conjunctive query; "
            f"{query!s} is not connected"
        )
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "opt"
    survivors = component_survivors(
        workspace, fd_graph, ind_graph, query,
        use_coverage=use_coverage, stats=stats,
    )
    engine = as_engine(evaluate_world)
    for index, candidates in enumerate(survivors):
        with obs_span("solve_component", component=index):
            witness = solve_component(
                workspace, fd_graph, query, candidates, engine,
                pivot=pivot, stats=stats,
            )
        if witness is not None:
            return DCSatResult(satisfied=False, witness=witness, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)


async def opt_dcsat_async(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    ind_graph: IndQTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    engine: EvaluationEngine,
    pivot: bool = True,
    use_coverage: bool = True,
    check_connected: bool = True,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """:func:`opt_dcsat` on the engine's coroutine surface."""
    if check_connected and not is_connected(query):
        raise AlgorithmError(
            "OptDCSat requires a connected conjunctive query; "
            f"{query!s} is not connected"
        )
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "opt"
    survivors = component_survivors(
        workspace, fd_graph, ind_graph, query,
        use_coverage=use_coverage, stats=stats,
    )
    for index, candidates in enumerate(survivors):
        with obs_span("solve_component", component=index):
            witness = await solve_component_async(
                workspace, fd_graph, query, candidates, engine,
                pivot=pivot, stats=stats,
            )
        if witness is not None:
            return DCSatResult(satisfied=False, witness=witness, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)
