"""OptDCSat (Figure 5).

For connected, monotone denial constraints: split the pending set into
connected components of the ind-q-transaction graph, discard components
that cannot cover the query's constants, and run the maximal-clique
machinery within each surviving component independently (Proposition 2:
no satisfying assignment spans two components).

Reproduction note: Proposition 2, as stated in the paper, can fail when
two pending transactions are joined only *through tuples of the current
state* — the chain of shared query variables passes through ``R``, so no
equality constraint links the transactions directly and they may land in
different components even though one assignment touches both.  This
implementation is faithful to the paper (the Bitcoin workloads of the
evaluation never trigger the case, because a committed tuple's join
partners on the chain side are committed too); the test suite contains a
crafted instance demonstrating the divergence, and
:mod:`repro.core.assignment` provides a sound-and-complete alternative.
"""

from __future__ import annotations

from repro.core.coverage import covers
from repro.core.fd_graph import FdTransactionGraph
from repro.core.ind_graph import IndQTransactionGraph
from repro.core.naive import WorldEvaluator
from repro.core.possible_worlds import get_maximal
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.query.analysis import constant_patterns, is_connected
from repro.query.ast import AggregateQuery, ConjunctiveQuery


def opt_dcsat(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    ind_graph: IndQTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    evaluate_world: WorldEvaluator,
    pivot: bool = True,
    use_coverage: bool = True,
    check_connected: bool = True,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """Decide ``D |= ¬q`` for a connected, monotone denial constraint.

    ``use_coverage=False`` disables the ``Covers`` pruning (ablation).
    ``check_connected=False`` skips the connectivity validation (callers
    that already verified it).
    """
    if check_connected and not is_connected(query):
        raise AlgorithmError(
            "OptDCSat requires a connected conjunctive query; "
            f"{query!s} is not connected"
        )
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "opt"
    patterns = constant_patterns(query)

    # Components also include never-appendable transactions (they carry
    # no worlds); restrict every component to fd-graph nodes.  Coverage
    # filtering happens for every component up front (the cheap test),
    # then only the surviving components pay for clique enumeration.
    survivors: list[set[str]] = []
    for component in ind_graph.components(query):
        stats.components_total += 1
        candidates = component & fd_graph.nodes
        if not candidates:
            stats.components_pruned += 1
            continue
        if use_coverage and not covers(workspace, candidates, patterns):
            stats.components_pruned += 1
            continue
        survivors.append(candidates)
    for candidates in survivors:
        for clique in fd_graph.maximal_cliques(restrict=candidates, pivot=pivot):
            stats.cliques_enumerated += 1
            world = get_maximal(workspace, clique)
            stats.worlds_checked += 1
            stats.evaluations += 1
            if evaluate_world(query, world):
                return DCSatResult(satisfied=False, witness=world, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)
