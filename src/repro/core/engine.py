"""The evaluation-engine layer: *how* candidate worlds are evaluated.

The paper's algorithms interleave two concerns that this module pulls
apart:

* **enumeration** — NaiveDCSat/OptDCSat walk maximal cliques (per
  surviving component) and build each clique's unique maximal world;
* **evaluation** — the query runs over ``R ∪ {facts of the world}``.

Enumeration now produces an explicit *evaluation plan*: a stream of
candidate active-sets (plain frozensets of pending transaction ids,
with no side effects on solver statistics).  An
:class:`EvaluationEngine` consumes the stream and decides how the
backend is driven:

* :class:`SyncEngine` — the classical shape: one blocking
  ``backend.evaluate`` round trip per world;
* :class:`BatchedEngine` — chunks the stream and drives the
  ``Backend.evaluate_many(query, actives)`` hook, letting SQL backends
  answer a whole batch of worlds in one round trip (see
  :meth:`repro.storage.sqlite_backend.SqliteBackend.evaluate_many`);
* :class:`AsyncEngine` — drives an
  :class:`~repro.storage.base.AsyncBackend` whose evaluations are
  coroutines, so :mod:`repro.service.server` can run solves on its
  event loop and overlap evaluation I/O with request handling.

Statistics parity is part of the engine contract: every engine counts
``worlds_checked`` / ``evaluations`` (and ``cliques_enumerated`` when
the stream is a clique sweep) only up to and including the first
violating world, so a batched engine's over-fetch never shows up in
:class:`~repro.core.results.DCSatStats` and all engines are
stats-identical on the same plan.  Engines also keep the fleet-level
``repro_worlds_evaluated_total{engine=...}`` counter in the default
metrics registry and tag their sweeps' spans with ``engine=<name>``.
"""

from __future__ import annotations

import asyncio
import os
from typing import TYPE_CHECKING, AsyncIterator, Callable, Iterable, Iterator

from repro.core.results import DCSatStats
from repro.errors import AlgorithmError
from repro.query.ast import AggregateQuery, ConjunctiveQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.base import AsyncBackend, Backend

Query = ConjunctiveQuery | AggregateQuery
World = frozenset[str]

ENGINES = ("sync", "batched", "async")

#: Worlds per ``evaluate_many`` round trip under :class:`BatchedEngine`.
DEFAULT_BATCH_SIZE = 32


def resolve_engine_name(engine: str | None) -> str:
    """An explicit engine name, or the ``REPRO_ENGINE`` env default.

    Validated eagerly: a typo like ``REPRO_ENGINE=bacthed`` fails here,
    at resolution time, with the valid choices named — not deep inside
    ``as_engine`` on some worker process.
    """
    name = engine if engine is not None else os.environ.get("REPRO_ENGINE", "sync")
    if name not in ENGINES:
        raise AlgorithmError(
            f"unknown evaluation engine {name!r}; expected one of {ENGINES}"
        )
    return name


# engine name -> (registry it was resolved against, bound counter).  The
# registry identity is part of the key so a swapped default registry
# (tests) never receives charges through a stale counter.
_counter_cache: dict[str, tuple[object, object]] = {}


def _bound_counter(engine_name: str):
    """The ``repro_worlds_evaluated_total{engine=...}`` counter, cached.

    ``_count_worlds`` sits inside the sweep hot loop; re-importing the
    metrics module and re-resolving the labelled counter on every charge
    is measurable overhead for nothing — the binding is stable for the
    life of the default registry.
    """
    # Imported lazily: repro.core must stay importable without pulling
    # the service package in (workers import core before service).
    from repro.service.metrics import default_registry

    registry = default_registry()
    cached = _counter_cache.get(engine_name)
    if cached is not None and cached[0] is registry:
        return cached[1]
    counter = registry.counter(
        "repro_worlds_evaluated_total",
        "Worlds evaluated, by evaluation engine",
        labels={"engine": engine_name},
    )
    _counter_cache[engine_name] = (registry, counter)
    return counter


def _count_worlds(engine_name: str, worlds: int) -> None:
    if not worlds:
        return
    _bound_counter(engine_name).inc(worlds)


def _charge(
    stats: DCSatStats | None, engine_name: str, worlds: int, count_cliques: bool
) -> None:
    """Record *worlds* examined worlds on the stats and the metric."""
    if stats is not None:
        stats.engine = stats.engine or engine_name
        stats.worlds_checked += worlds
        stats.evaluations += worlds
        if count_cliques:
            stats.cliques_enumerated += worlds
    _count_worlds(engine_name, worlds)


class EvaluationEngine:
    """Base class: evaluates plans produced by the enumeration side.

    Subclasses override :meth:`evaluate` / :meth:`sweep` (and their
    ``*_async`` twins).  The base class bridges each direction so every
    engine exposes **both** surfaces: sync engines run unchanged inside
    ``check_async`` (their awaitables simply never yield), and
    :class:`AsyncEngine` still serves plain ``check`` by running its
    coroutines on a private event loop.
    """

    name = "sync"
    #: True when the engine's native surface is the coroutine one —
    #: i.e. running it on an event loop actually overlaps I/O.
    is_async = False

    def __init__(self, backend: "Backend"):
        self.backend = backend

    # -- single-world ---------------------------------------------------

    def evaluate(self, query: Query, active: World) -> bool:
        """Evaluate *query* over the world ``R ∪ {facts of active}``."""
        raise NotImplementedError

    async def evaluate_async(self, query: Query, active: World) -> bool:
        return self.evaluate(query, active)

    # -- plan sweeps ----------------------------------------------------

    def sweep(
        self,
        query: Query,
        worlds: Iterable[World],
        stats: DCSatStats | None = None,
        count_cliques: bool = False,
    ) -> World | None:
        """Evaluate the plan's worlds in order; return the first violator.

        Returns ``None`` when no world in the stream satisfies the
        query.  Counts stats only up to and including the violating
        world (the parity contract — see the module docstring).
        """
        raise NotImplementedError

    async def sweep_async(
        self,
        query: Query,
        worlds: Iterable[World],
        stats: DCSatStats | None = None,
        count_cliques: bool = False,
    ) -> World | None:
        return self.sweep(query, worlds, stats=stats, count_cliques=count_cliques)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(backend={type(self.backend).__name__})"


class SyncEngine(EvaluationEngine):
    """Today's behaviour: one blocking backend round trip per world."""

    name = "sync"

    def evaluate(self, query: Query, active: World) -> bool:
        _count_worlds(self.name, 1)
        return self.backend.evaluate(query, active)

    def sweep(
        self,
        query: Query,
        worlds: Iterable[World],
        stats: DCSatStats | None = None,
        count_cliques: bool = False,
    ) -> World | None:
        for world in worlds:
            _charge(stats, self.name, 1, count_cliques)
            if self.backend.evaluate(query, world):
                return world
        return None


class _CallbackEngine(SyncEngine):
    """Adapts a bare ``evaluate_world`` callable to the engine surface.

    Keeps the historical solver signatures working: callers that pass
    ``checker._evaluate_world`` (or any ``(query, active) -> bool``)
    get :class:`SyncEngine` semantics.
    """

    def __init__(self, evaluate_world: Callable[[Query, World], bool]):
        self._evaluate_world = evaluate_world

        class _Shim:
            evaluate = staticmethod(evaluate_world)

        super().__init__(_Shim())  # type: ignore[arg-type]


class BatchedEngine(EvaluationEngine):
    """Chunk the plan and drive ``Backend.evaluate_many``.

    Backends without a native batch path fall back to a loop (see
    :func:`repro.storage.base.evaluate_many_fallback`), so the engine
    is verdict- and stats-identical to :class:`SyncEngine` everywhere
    and strictly cheaper where the backend can amortize — the sqlite
    backend answers each chunk in one SQL round trip.
    """

    name = "batched"

    def __init__(self, backend: "Backend", batch_size: int = DEFAULT_BATCH_SIZE):
        super().__init__(backend)
        if batch_size < 1:
            raise AlgorithmError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = batch_size

    def _evaluate_many(self, query: Query, actives: list[World]) -> list[bool]:
        many = getattr(self.backend, "evaluate_many", None)
        if many is not None:
            return many(query, actives)
        return [self.backend.evaluate(query, active) for active in actives]

    def evaluate(self, query: Query, active: World) -> bool:
        _count_worlds(self.name, 1)
        return self._evaluate_many(query, [active])[0]

    def sweep(
        self,
        query: Query,
        worlds: Iterable[World],
        stats: DCSatStats | None = None,
        count_cliques: bool = False,
    ) -> World | None:
        iterator: Iterator[World] = iter(worlds)
        while True:
            chunk: list[World] = []
            for world in iterator:
                chunk.append(world)
                if len(chunk) >= self.batch_size:
                    break
            if not chunk:
                return None
            verdicts = self._evaluate_many(query, chunk)
            for index, violated in enumerate(verdicts):
                if violated:
                    # Over-fetched worlds past the violator are never
                    # charged: stats stay identical to the sync sweep.
                    _charge(stats, self.name, index + 1, count_cliques)
                    return chunk[index]
            _charge(stats, self.name, len(chunk), count_cliques)


def _run_coroutine(coroutine):
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coroutine)
    coroutine.close()
    raise AlgorithmError(
        "AsyncEngine cannot bridge to a blocking call from inside a "
        "running event loop; use check_async / the *_async engine surface"
    )


class AsyncEngine(EvaluationEngine):
    """Drive an :class:`~repro.storage.base.AsyncBackend` coroutine-first.

    The native surface is ``evaluate_async`` / ``sweep_async``; the
    blocking surface bridges through a private event loop per call, or
    — when the backend is a :class:`~repro.storage.base.AsyncBackendAdapter`
    over a synchronous backend — short-circuits to the wrapped backend
    directly (sqlite connections are thread-bound, so the adapter never
    hops threads anyway).
    """

    name = "async"
    is_async = True

    def __init__(self, backend: "AsyncBackend"):
        super().__init__(backend)  # type: ignore[arg-type]
        self._sync_backend: "Backend | None" = getattr(
            backend, "sync_backend", None
        )

    async def evaluate_async(self, query: Query, active: World) -> bool:
        _count_worlds(self.name, 1)
        return await self.backend.evaluate(query, active)

    def evaluate(self, query: Query, active: World) -> bool:
        if self._sync_backend is not None:
            _count_worlds(self.name, 1)
            return self._sync_backend.evaluate(query, active)
        return _run_coroutine(self.evaluate_async(query, active))

    async def sweep_async(
        self,
        query: Query,
        worlds: Iterable[World],
        stats: DCSatStats | None = None,
        count_cliques: bool = False,
    ) -> World | None:
        async for world, violated in self._evaluations(query, worlds):
            _charge(stats, self.name, 1, count_cliques)
            if violated:
                return world
        return None

    async def _evaluations(
        self, query: Query, worlds: Iterable[World]
    ) -> AsyncIterator[tuple[World, bool]]:
        for world in worlds:
            yield world, await self.backend.evaluate(query, world)

    def sweep(
        self,
        query: Query,
        worlds: Iterable[World],
        stats: DCSatStats | None = None,
        count_cliques: bool = False,
    ) -> World | None:
        return _run_coroutine(
            self.sweep_async(query, worlds, stats=stats, count_cliques=count_cliques)
        )


def as_engine(evaluator) -> EvaluationEngine:
    """Coerce *evaluator* — an engine or a bare callable — to an engine."""
    if isinstance(evaluator, EvaluationEngine):
        return evaluator
    if callable(evaluator):
        return _CallbackEngine(evaluator)
    raise AlgorithmError(
        f"expected an EvaluationEngine or a (query, active) -> bool "
        f"callable, got {type(evaluator).__name__}"
    )


def make_engine(
    name: str | None,
    backend: "Backend",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> EvaluationEngine:
    """Build an engine by name over *backend*.

    ``name=None`` reads the ``REPRO_ENGINE`` environment variable
    (default ``"sync"``).  ``"async"`` wraps a synchronous backend in
    :class:`~repro.storage.base.AsyncBackendAdapter` automatically;
    backends that already expose coroutine ``evaluate`` are used as-is.
    """
    name = resolve_engine_name(name)
    if name == "sync":
        return SyncEngine(backend)
    if name == "batched":
        return BatchedEngine(backend, batch_size=batch_size)
    if name == "async":
        if asyncio.iscoroutinefunction(getattr(backend, "evaluate", None)):
            return AsyncEngine(backend)  # type: ignore[arg-type]
        from repro.storage.base import AsyncBackendAdapter

        return AsyncEngine(AsyncBackendAdapter(backend))
    raise AlgorithmError(
        f"unknown engine {name!r}; expected one of {ENGINES}"
    )
