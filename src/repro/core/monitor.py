"""A standing constraint monitor over a live blockchain database.

Downstream systems rarely check one constraint once: an exchange keeps a
battery of invariants ("no customer is paid twice", "hot-wallet outflow
stays under X") that must be re-examined as the mempool churns.
:class:`ConstraintMonitor` wraps a :class:`~repro.core.checker.DCSatChecker`,
registers named denial constraints, caches verdicts, and invalidates
only the constraints whose relations a state change touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.checker import DCSatChecker
from repro.core.results import DCSatResult
from repro.errors import ReproError
from repro.obs.trace import span as obs_span
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet
from repro.relational.transaction import Transaction


def coupled_relations(
    relations: Iterable[str],
    constraints: ConstraintSet,
    pending_footprints: Iterable[Iterable[str]] = (),
) -> frozenset[str]:
    """All relations whose possible-world facts can change when the
    state of *relations* changes.

    A state change over one relation reaches others two ways:

    * **Inclusion dependencies** — committing parent rows can make a
      child transaction appendable (and vice versa a committed child's
      parent requirement pins parents), so the whole ind-connected
      component of :meth:`ConstraintSet.ind_closure` is coupled.
    * **Co-written relations** — a single pending transaction spanning
      several relations is one include-or-not decision: if a commit
      elsewhere makes it never-appendable over relation ``B``, its facts
      over relation ``A`` vanish from every possible world too.

    The two edge kinds interleave, so the expansion runs to a fixpoint.
    """
    footprints = [frozenset(fp) for fp in pending_footprints]
    expanded = constraints.ind_closure(relations)
    while True:
        grown = set(expanded)
        for footprint in footprints:
            if len(footprint) > 1 and footprint & grown:
                grown |= footprint
        grown = constraints.ind_closure(grown)
        if grown == expanded:
            return expanded
        expanded = grown


@dataclass
class MonitorEntry:
    """One registered constraint and its cached verdict."""

    name: str
    query: ConjunctiveQuery | AggregateQuery
    check_kwargs: dict = field(default_factory=dict)
    result: DCSatResult | None = None
    checks_run: int = 0
    cache_hits: int = 0

    @property
    def relations(self) -> frozenset[str]:
        return self.query.relations()


class ConstraintMonitor:
    """Registers denial constraints; re-checks lazily on state changes."""

    def __init__(self, checker: DCSatChecker):
        self.checker = checker
        self._entries: dict[str, MonitorEntry] = {}

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        name: str,
        query: ConjunctiveQuery | AggregateQuery | str,
        **check_kwargs,
    ) -> MonitorEntry:
        """Register a named denial constraint.

        ``check_kwargs`` are forwarded to
        :meth:`~repro.core.checker.DCSatChecker.check` (algorithm
        selection, pruning toggles).
        """
        if name in self._entries:
            raise ReproError(f"constraint {name!r} is already registered")
        if isinstance(query, str):
            query = parse_query(query)
        entry = MonitorEntry(name=name, query=query, check_kwargs=check_kwargs)
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        if name not in self._entries:
            raise ReproError(f"no constraint named {name!r}")
        del self._entries[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def entry(self, name: str) -> MonitorEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ReproError(f"no constraint named {name!r}") from None

    # ------------------------------------------------------------------
    # Checking with verdict caching (and optional subsumption)

    def _subsumed_by_satisfied(self, entry: MonitorEntry) -> str | None:
        """A registered constraint whose cached SATISFIED verdict
        logically covers *entry* (denial subsumption), if any.

        If ``¬q1`` subsumes ``¬q2`` and ``q1`` is satisfied on this
        database, ``q2`` is satisfied too — no solver run needed.  Only
        positive conjunctive queries participate (the containment test's
        scope).
        """
        from repro.query.ast import ConjunctiveQuery
        from repro.query.containment import denial_subsumes

        if not isinstance(entry.query, ConjunctiveQuery) or not entry.query.is_positive:
            return None
        for other in self._entries.values():
            if other is entry or other.result is None:
                continue
            if not other.result.satisfied:
                continue
            if not isinstance(other.query, ConjunctiveQuery):
                continue
            if not other.query.is_positive:
                continue
            if denial_subsumes(other.query, entry.query):
                return other.name
        return None

    def status(self, name: str, use_subsumption: bool = True) -> DCSatResult:
        """The (possibly cached) verdict for one constraint.

        With ``use_subsumption`` (default), a constraint subsumed by an
        already-verified satisfied constraint is answered for free.
        """
        entry = self.entry(name)
        with obs_span("monitor.status", constraint=name) as sp:
            if entry.result is None and use_subsumption:
                covering = self._subsumed_by_satisfied(entry)
                if covering is not None:
                    from repro.core.results import DCSatStats

                    entry.result = DCSatResult(
                        satisfied=True,
                        stats=DCSatStats(algorithm=f"subsumed-by:{covering}"),
                    )
                    sp.set(outcome="subsumed", covered_by=covering)
                    return entry.result
            if entry.result is None:
                sp.set(outcome="check")
                entry.result = self.checker.check(
                    entry.query, **entry.check_kwargs
                )
                entry.checks_run += 1
            else:
                sp.set(outcome="cache-hit")
                entry.cache_hits += 1
            sp.set(satisfied=entry.result.satisfied)
        return entry.result

    async def status_async(
        self, name: str, use_subsumption: bool = True
    ) -> DCSatResult:
        """:meth:`status` for event-loop callers.

        Cache hits and subsumption answers resolve without suspending;
        an actual solve awaits :meth:`DCSatChecker.check_async`, so an
        async evaluation engine's backend I/O can overlap with whatever
        else the loop is doing (see :mod:`repro.service.server`).
        """
        entry = self.entry(name)
        with obs_span("monitor.status", constraint=name, mode="async") as sp:
            if entry.result is None and use_subsumption:
                covering = self._subsumed_by_satisfied(entry)
                if covering is not None:
                    from repro.core.results import DCSatStats

                    entry.result = DCSatResult(
                        satisfied=True,
                        stats=DCSatStats(algorithm=f"subsumed-by:{covering}"),
                    )
                    sp.set(outcome="subsumed", covered_by=covering)
                    return entry.result
            if entry.result is None:
                sp.set(outcome="check")
                entry.result = await self.checker.check_async(
                    entry.query, **entry.check_kwargs
                )
                entry.checks_run += 1
            else:
                sp.set(outcome="cache-hit")
                entry.cache_hits += 1
            sp.set(satisfied=entry.result.satisfied)
        return entry.result

    def status_all(self, batch: bool = True) -> dict[str, DCSatResult]:
        """Verdicts for every registered constraint.

        With ``batch=True`` (default), uncached constraints that are
        monotone and use default check options are decided together in a
        single world sweep (:meth:`DCSatChecker.check_batch`); the rest
        fall back to individual checks.
        """
        if batch:
            from repro.query.analysis import is_monotone

            batchable = [
                entry
                for entry in self._entries.values()
                if entry.result is None
                and not entry.check_kwargs
                and is_monotone(
                    entry.query, self.checker.assume_nonnegative_sums
                )
            ]
            if len(batchable) > 1:
                results = self.checker.check_batch(
                    [entry.query for entry in batchable]
                )
                for entry, result in zip(batchable, results):
                    entry.result = result
                    entry.checks_run += 1
        return {name: self.status(name) for name in self._entries}

    def violated(self) -> dict[str, DCSatResult]:
        """The subset of constraints that some possible world violates."""
        return {
            name: result
            for name, result in self.status_all().items()
            if not result.satisfied
        }

    # ------------------------------------------------------------------
    # State changes (targeted invalidation)

    def _invalidate_touching(self, relations: frozenset[str]) -> list[str]:
        """Drop cached verdicts over relations the change can reach.

        The changed relations are first expanded through ind-connectivity
        and pending co-writes (:func:`coupled_relations`): a commit into
        relation ``A`` can flip the verdict of a constraint whose query
        never mentions ``A``, because it changes which transactions are
        appendable over an ind-coupled (or co-written) relation ``B``.
        Intersecting raw footprints served stale verdicts in that case.
        """
        with obs_span("monitor.invalidate") as sp:
            touched = coupled_relations(
                relations,
                self.checker.db.constraints,
                (tx.relation_names for tx in self.checker.db.pending),
            )
            invalidated = []
            for entry in self._entries.values():
                if entry.result is not None and entry.relations & touched:
                    entry.result = None
                    invalidated.append(entry.name)
            sp.set(touched=len(touched), invalidated=len(invalidated))
        return invalidated

    def issue(self, tx: Transaction) -> list[str]:
        """Forward a newly issued transaction; returns the names of the
        constraints whose cached verdicts were invalidated."""
        self.checker.issue(tx)
        return self._invalidate_touching(frozenset(tx.relation_names))

    def commit(self, tx_id: str) -> list[str]:
        tx = self.checker.commit(tx_id)
        return self._invalidate_touching(frozenset(tx.relation_names))

    def forget(self, tx_id: str) -> list[str]:
        tx = self.checker.forget(tx_id)
        return self._invalidate_touching(frozenset(tx.relation_names))

    def absorb(self, tx: Transaction) -> list[str]:
        """Insert externally committed facts (mined-block coinbases,
        transactions first heard about inside a block) and invalidate the
        cached verdicts the new facts can reach.

        Without this, calling :meth:`DCSatChecker.absorb` underneath a
        monitor left every cached verdict stale.
        """
        self.checker.absorb(tx)
        return self._invalidate_touching(frozenset(tx.relation_names))

    def __repr__(self) -> str:
        cached = sum(1 for e in self._entries.values() if e.result is not None)
        return (
            f"ConstraintMonitor({len(self._entries)} constraints, "
            f"{cached} cached verdicts)"
        )
