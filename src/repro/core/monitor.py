"""A standing constraint monitor over a live blockchain database.

Downstream systems rarely check one constraint once: an exchange keeps a
battery of invariants ("no customer is paid twice", "hot-wallet outflow
stays under X") that must be re-examined as the mempool churns.
:class:`ConstraintMonitor` wraps a :class:`~repro.core.checker.DCSatChecker`,
registers named denial constraints, caches verdicts, and invalidates
only the constraints whose relations a state change touches.

Verdicts are maintained *incrementally* (docs/INCREMENTAL.md): the
monitor owns a :class:`~repro.core.incremental.VerdictLedger` of
component-scoped sub-verdicts, so an invalidated constraint usually
re-sweeps only the components the state change actually reached and
reuses (or revalidates) the rest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.checker import DCSatChecker
from repro.core.incremental import (
    VerdictLedger,
    component_footprint,
    component_still_satisfied,
    component_still_satisfied_async,
    revalidate_witness,
    revalidate_witness_async,
)
from repro.core.opt import (
    component_survivors,
    solve_component,
    solve_component_async,
)
from repro.core.results import DCSatResult, DCSatStats
from repro.errors import ReproError
from repro.obs.perf import default_cost_model
from repro.obs.trace import span as obs_span
from repro.query.analysis import is_connected, is_monotone
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet
from repro.relational.transaction import Transaction

#: check() keyword arguments the ledger path understands.  Anything else
#: (pending_limit, an explicit non-opt algorithm) routes the entry to
#: the plain checker, exactly as before.
_INCREMENTAL_KWARGS = frozenset(
    {"algorithm", "short_circuit", "use_coverage", "pivot", "normalize"}
)


def coupled_relations(
    relations: Iterable[str],
    constraints: ConstraintSet,
    pending_footprints: Iterable[Iterable[str]] = (),
) -> frozenset[str]:
    """All relations whose possible-world facts can change when the
    state of *relations* changes.

    A state change over one relation reaches others two ways:

    * **Inclusion dependencies** — committing parent rows can make a
      child transaction appendable (and vice versa a committed child's
      parent requirement pins parents), so the whole ind-connected
      component of :meth:`ConstraintSet.ind_closure` is coupled.
    * **Co-written relations** — a single pending transaction spanning
      several relations is one include-or-not decision: if a commit
      elsewhere makes it never-appendable over relation ``B``, its facts
      over relation ``A`` vanish from every possible world too.

    The two edge kinds interleave, so the expansion runs to a fixpoint.
    """
    footprints = [frozenset(fp) for fp in pending_footprints]
    expanded = constraints.ind_closure(relations)
    while True:
        grown = set(expanded)
        for footprint in footprints:
            if len(footprint) > 1 and footprint & grown:
                grown |= footprint
        grown = constraints.ind_closure(grown)
        if grown == expanded:
            return expanded
        expanded = grown


@dataclass
class MonitorEntry:
    """One registered constraint and its cached verdict."""

    name: str
    query: ConjunctiveQuery | AggregateQuery
    check_kwargs: dict = field(default_factory=dict)
    result: DCSatResult | None = None
    checks_run: int = 0
    cache_hits: int = 0

    @property
    def relations(self) -> frozenset[str]:
        return self.query.relations()


class ConstraintMonitor:
    """Registers denial constraints; re-checks lazily on state changes.

    With ``incremental`` (default), verdict recomputation for monotone
    connected constraints runs through the component-scoped
    :class:`~repro.core.incremental.VerdictLedger` instead of a full
    OptDCSat sweep: clean components are reused, and — under
    ``witness_mode="revalidate"`` — dirty components first try the
    cheap witness-revalidation / component-short-circuit probes.
    ``witness_mode="strict"`` (default) re-sweeps every dirty
    component, keeping witnesses bit-identical to a fresh recompute.
    """

    def __init__(
        self,
        checker: DCSatChecker,
        incremental: bool = True,
        witness_mode: str = "strict",
    ):
        self.checker = checker
        self.incremental = incremental
        self.ledger = VerdictLedger(witness_mode=witness_mode)
        self._entries: dict[str, MonitorEntry] = {}
        #: Per-constraint count of ledger entries the most recent state
        #: change dirtied or pruned — surfaced by the service layers as
        #: the op response's ``dirty_components`` payload.
        self.last_dirty_components: dict[str, int] = {}
        #: Same counts accumulated until the constraint's next check
        #: (several ops can land between two status calls).
        self._dirty_since_check: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        name: str,
        query: ConjunctiveQuery | AggregateQuery | str,
        **check_kwargs,
    ) -> MonitorEntry:
        """Register a named denial constraint.

        ``check_kwargs`` are forwarded to
        :meth:`~repro.core.checker.DCSatChecker.check` (algorithm
        selection, pruning toggles).
        """
        if name in self._entries:
            raise ReproError(f"constraint {name!r} is already registered")
        if isinstance(query, str):
            query = parse_query(query)
        entry = MonitorEntry(name=name, query=query, check_kwargs=check_kwargs)
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        if name not in self._entries:
            raise ReproError(f"no constraint named {name!r}")
        del self._entries[name]
        # Long-lived servers churn constraints: drop the per-constraint
        # state that would otherwise outlive the registration (ledger
        # sub-verdicts here; the server additionally removes its
        # labelled latency series).
        self.ledger.drop(name)
        self._dirty_since_check.pop(name, None)
        self.last_dirty_components.pop(name, None)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def entry(self, name: str) -> MonitorEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ReproError(f"no constraint named {name!r}") from None

    # ------------------------------------------------------------------
    # Checking with verdict caching (and optional subsumption)

    def _subsumed_by_satisfied(self, entry: MonitorEntry) -> str | None:
        """A registered constraint whose cached SATISFIED verdict
        logically covers *entry* (denial subsumption), if any.

        If ``¬q1`` subsumes ``¬q2`` and ``q1`` is satisfied on this
        database, ``q2`` is satisfied too — no solver run needed.  Only
        positive conjunctive queries participate (the containment test's
        scope).  Verdicts assembled from reused ledger components are
        ordinary cached results, so they cover subsumed constraints
        exactly like fully swept ones.
        """
        from repro.query.ast import ConjunctiveQuery
        from repro.query.containment import denial_subsumes

        if not isinstance(entry.query, ConjunctiveQuery) or not entry.query.is_positive:
            return None
        for other in self._entries.values():
            if other is entry or other.result is None:
                continue
            if not other.result.satisfied:
                continue
            if not isinstance(other.query, ConjunctiveQuery):
                continue
            if not other.query.is_positive:
                continue
            if denial_subsumes(other.query, entry.query):
                return other.name
        return None

    def status(self, name: str, use_subsumption: bool = True) -> DCSatResult:
        """The (possibly cached) verdict for one constraint.

        With ``use_subsumption`` (default), a constraint subsumed by an
        already-verified satisfied constraint is answered for free.
        """
        entry = self.entry(name)
        with obs_span("monitor.status", constraint=name) as sp:
            if entry.result is None and use_subsumption:
                covering = self._subsumed_by_satisfied(entry)
                if covering is not None:
                    entry.result = DCSatResult(
                        satisfied=True,
                        stats=DCSatStats(algorithm=f"subsumed-by:{covering}"),
                    )
                    sp.set(outcome="subsumed", covered_by=covering)
                    return entry.result
            if entry.result is None:
                sp.set(outcome="check")
                entry.result = self._check_entry(entry)
                entry.checks_run += 1
            else:
                sp.set(outcome="cache-hit")
                entry.cache_hits += 1
            sp.set(satisfied=entry.result.satisfied)
        return entry.result

    async def status_async(
        self, name: str, use_subsumption: bool = True
    ) -> DCSatResult:
        """:meth:`status` for event-loop callers.

        Cache hits and subsumption answers resolve without suspending;
        an actual solve awaits :meth:`DCSatChecker.check_async`, so an
        async evaluation engine's backend I/O can overlap with whatever
        else the loop is doing (see :mod:`repro.service.server`).
        """
        entry = self.entry(name)
        with obs_span("monitor.status", constraint=name, mode="async") as sp:
            if entry.result is None and use_subsumption:
                covering = self._subsumed_by_satisfied(entry)
                if covering is not None:
                    entry.result = DCSatResult(
                        satisfied=True,
                        stats=DCSatStats(algorithm=f"subsumed-by:{covering}"),
                    )
                    sp.set(outcome="subsumed", covered_by=covering)
                    return entry.result
            if entry.result is None:
                sp.set(outcome="check")
                entry.result = await self._check_entry_async(entry)
                entry.checks_run += 1
            else:
                sp.set(outcome="cache-hit")
                entry.cache_hits += 1
            sp.set(satisfied=entry.result.satisfied)
        return entry.result

    def status_all(self, batch: bool = True) -> dict[str, DCSatResult]:
        """Verdicts for every registered constraint.

        With ``batch=True`` (default), uncached constraints that are
        monotone and use default check options are decided together in a
        single world sweep (:meth:`DCSatChecker.check_batch`); the rest
        fall back to individual checks.
        """
        if batch:
            batchable = [
                entry
                for entry in self._entries.values()
                if entry.result is None
                and not entry.check_kwargs
                and is_monotone(
                    entry.query, self.checker.assume_nonnegative_sums
                )
            ]
            if len(batchable) > 1:
                results = self.checker.check_batch(
                    [entry.query for entry in batchable]
                )
                for entry, result in zip(batchable, results):
                    entry.result = result
                    entry.checks_run += 1
        return {name: self.status(name) for name in self._entries}

    def violated(self) -> dict[str, DCSatResult]:
        """The subset of constraints that some possible world violates."""
        return {
            name: result
            for name, result in self.status_all().items()
            if not result.satisfied
        }

    # ------------------------------------------------------------------
    # Incremental checking through the verdict ledger

    def _incremental_eligible(self, entry: MonitorEntry) -> bool:
        """Can this entry's verdict be maintained through the ledger?

        The ledger path is OptDCSat with component-level memoization, so
        the eligibility gate mirrors the pool's: default-ish kwargs, an
        ``auto``/``opt`` algorithm request, and a monotone connected
        query.  Everything else takes the plain checker path unchanged.
        """
        if not self.incremental:
            return False
        if not set(entry.check_kwargs) <= _INCREMENTAL_KWARGS:
            return False
        if entry.check_kwargs.get("algorithm", "auto") not in ("auto", "opt"):
            return False
        query = entry.query
        return is_monotone(
            query, self.checker.assume_nonnegative_sums
        ) and is_connected(query)

    def _check_entry(self, entry: MonitorEntry) -> DCSatResult:
        if self._incremental_eligible(entry):
            return self._check_incremental(entry)
        self._dirty_since_check.pop(entry.name, None)
        return self.checker.check(entry.query, **entry.check_kwargs)

    async def _check_entry_async(self, entry: MonitorEntry) -> DCSatResult:
        if self._incremental_eligible(entry):
            return await self._check_incremental_async(entry)
        self._dirty_since_check.pop(entry.name, None)
        return await self.checker.check_async(
            entry.query, **entry.check_kwargs
        )

    def _incremental_preamble(
        self, entry: MonitorEntry
    ) -> tuple[ConjunctiveQuery | AggregateQuery | None, DCSatResult | None, DCSatStats]:
        """Shared setup of the ledger path: normalize + dirty counters.

        Returns ``(query, early_result, stats)`` — ``early_result`` is
        non-None when normalization already decided the check.
        """
        kwargs = entry.check_kwargs
        stats = DCSatStats()
        stats.dirty_components = self._dirty_since_check.pop(entry.name, 0)
        query = entry.query
        if kwargs.get("normalize", True):
            from repro.query.rewriter import Verdict
            from repro.query.rewriter import normalize as normalize_query

            query, verdict = normalize_query(query)
            if verdict is Verdict.UNSATISFIABLE:
                stats.algorithm = "rewrite"
                return None, DCSatResult(satisfied=True, stats=stats), stats
        return query, None, stats

    def _check_incremental(self, entry: MonitorEntry) -> DCSatResult:
        """OptDCSat with the ledger consulted per surviving component."""
        checker = self.checker
        kwargs = entry.check_kwargs
        query, early, stats = self._incremental_preamble(entry)
        if early is not None:
            return early
        started = time.perf_counter()
        with obs_span("dcsat.check", requested="opt-ledger") as sp:
            try:
                decided = checker.fast_paths(
                    query, True, kwargs.get("short_circuit", True), stats
                )
                if decided is not None:
                    return decided
                stats.algorithm = "opt-ledger"
                survivors = component_survivors(
                    checker.workspace,
                    checker.fd_graph,
                    checker.ind_graph,
                    query,
                    use_coverage=kwargs.get("use_coverage", True),
                    stats=stats,
                )
                plan = self.ledger.plan(entry.name, checker.epoch, survivors)
                return self._solve_with_ledger(
                    entry.name, query, survivors, plan,
                    kwargs.get("pivot", True), stats,
                )
            finally:
                stats.elapsed_seconds = time.perf_counter() - started
                sp.fold_stats(stats)
                checker.workspace.clear_active()

    def _resolve_cached(
        self,
        name: str,
        query,
        plan,
        survivors: list[set[str]],
        stats: DCSatStats,
        counters: dict[str, int],
    ) -> tuple[int | None, frozenset[str] | None, list[int]]:
        """Resolve reuse/revalidate dispositions (the cheap ones) first.

        Returns ``(cutoff, cutoff_witness, sweep_indices)``: the lowest
        component index already *known* violated from the ledger (with
        its witness), and the indices below it that still need a sweep.
        A fresh recompute stops at its first violated component, so
        components past the cutoff are irrelevant either way.
        """
        checker = self.checker
        cutoff: int | None = None
        cutoff_witness: frozenset[str] | None = None
        sweep_indices: list[int] = []
        for index, (disposition, ledger_entry) in enumerate(plan):
            candidates = survivors[index]
            if disposition == "reuse":
                stats.components_reused += 1
                counters["reused"] += 1
                self.ledger.touch(name, ledger_entry)
                if ledger_entry.witness is not None:
                    cutoff, cutoff_witness = index, ledger_entry.witness
                    break
                continue
            if disposition == "revalidate":
                counters["revalidations"] += 1
                stats.witness_revalidations += 1
                probe_started = time.perf_counter()
                if ledger_entry.witness is not None:
                    alive = revalidate_witness(
                        checker.workspace, checker.engine, query,
                        ledger_entry.witness, stats,
                    )
                else:
                    alive = component_still_satisfied(
                        checker.engine, query, candidates, stats
                    )
                self._observe_probe(
                    time.perf_counter() - probe_started, len(candidates)
                )
                if alive:
                    counters["revalidation_hits"] += 1
                    refreshed = self.ledger.store(
                        name, ledger_entry.key, ledger_entry.footprint,
                        ledger_entry.witness, checker.epoch,
                    )
                    if refreshed.witness is not None:
                        cutoff, cutoff_witness = index, refreshed.witness
                        break
                    continue
            sweep_indices.append(index)
        return cutoff, cutoff_witness, sweep_indices

    def _solve_with_ledger(
        self,
        name: str,
        query,
        survivors: list[set[str]],
        plan,
        pivot: bool,
        stats: DCSatStats,
    ) -> DCSatResult:
        checker = self.checker
        counters = self.ledger.counters
        cutoff, cutoff_witness, sweep_indices = self._resolve_cached(
            name, query, plan, survivors, stats, counters
        )
        witness = self._solve_dirty(
            name, query, survivors, sweep_indices, pivot, stats
        )
        if witness is not None:
            return DCSatResult(satisfied=False, witness=witness, stats=stats)
        if cutoff_witness is not None:
            return DCSatResult(
                satisfied=False, witness=cutoff_witness, stats=stats
            )
        return DCSatResult(satisfied=True, stats=stats)

    def _solve_dirty(
        self,
        name: str,
        query,
        survivors: list[set[str]],
        indices: list[int],
        pivot: bool,
        stats: DCSatStats,
    ) -> frozenset[str] | None:
        """Sweep the components the ledger could not answer.

        Dispatches through the checker's solver pool when one is
        attached and the dirty set is worth fanning out; otherwise
        sweeps sequentially in ascending index order with the usual
        early stop.  Solved components are stored back into the ledger;
        returns the lowest-index violating witness, if any.
        """
        if not indices:
            return None
        checker = self.checker
        counters = self.ledger.counters
        pool = getattr(checker, "pool", None)
        if (
            pool is not None
            and pool.max_workers > 1
            and len(indices) >= max(2, pool.min_components)
        ):
            resolved = pool.solve_components(
                query,
                [(index, survivors[index]) for index in indices],
                pivot=pivot,
                stats=stats,
            )
        else:
            resolved = {}
            for index in indices:
                candidates = survivors[index]
                cliques_before = stats.cliques_enumerated
                sweep_started = time.perf_counter()
                with obs_span("solve_component", component=index):
                    witness = solve_component(
                        checker.workspace, checker.fd_graph, query,
                        candidates, checker.engine, pivot=pivot, stats=stats,
                    )
                default_cost_model().observe(
                    time.perf_counter() - sweep_started,
                    len(candidates),
                    engine=checker.engine.name,
                    planner=getattr(checker, "planner", ""),
                    cliques=stats.cliques_enumerated - cliques_before,
                    mode="sweep",
                )
                resolved[index] = witness
                if witness is not None:
                    break
        best_index: int | None = None
        best_witness: frozenset[str] | None = None
        for index, witness in resolved.items():
            counters["swept"] += 1
            self.ledger.store(
                name,
                survivors[index],
                component_footprint(checker.db, survivors[index]),
                witness,
                checker.epoch,
            )
            if witness is not None and (
                best_index is None or index < best_index
            ):
                best_index, best_witness = index, witness
        return best_witness

    async def _check_incremental_async(
        self, entry: MonitorEntry
    ) -> DCSatResult:
        """:meth:`_check_incremental` on the engine's coroutine surface.

        The dirty components are swept sequentially (awaited) — the
        process pool is a blocking surface, and the async engine's win
        is overlapping backend I/O, which the awaited sweep preserves.
        """
        checker = self.checker
        kwargs = entry.check_kwargs
        query, early, stats = self._incremental_preamble(entry)
        if early is not None:
            return early
        started = time.perf_counter()
        with obs_span(
            "dcsat.check", requested="opt-ledger", mode="async"
        ) as sp:
            try:
                decided = await checker.fast_paths_async(
                    query, True, kwargs.get("short_circuit", True), stats
                )
                if decided is not None:
                    return decided
                stats.algorithm = "opt-ledger"
                survivors = component_survivors(
                    checker.workspace,
                    checker.fd_graph,
                    checker.ind_graph,
                    query,
                    use_coverage=kwargs.get("use_coverage", True),
                    stats=stats,
                )
                plan = self.ledger.plan(entry.name, checker.epoch, survivors)
                pivot = kwargs.get("pivot", True)
                counters = self.ledger.counters
                cutoff_witness: frozenset[str] | None = None
                sweep_indices: list[int] = []
                for index, (disposition, ledger_entry) in enumerate(plan):
                    candidates = survivors[index]
                    if disposition == "reuse":
                        stats.components_reused += 1
                        counters["reused"] += 1
                        self.ledger.touch(entry.name, ledger_entry)
                        if ledger_entry.witness is not None:
                            cutoff_witness = ledger_entry.witness
                            break
                        continue
                    if disposition == "revalidate":
                        counters["revalidations"] += 1
                        stats.witness_revalidations += 1
                        probe_started = time.perf_counter()
                        if ledger_entry.witness is not None:
                            alive = await revalidate_witness_async(
                                checker.workspace, checker.engine, query,
                                ledger_entry.witness, stats,
                            )
                        else:
                            alive = await component_still_satisfied_async(
                                checker.engine, query, candidates, stats
                            )
                        self._observe_probe(
                            time.perf_counter() - probe_started,
                            len(candidates),
                        )
                        if alive:
                            counters["revalidation_hits"] += 1
                            refreshed = self.ledger.store(
                                entry.name, ledger_entry.key,
                                ledger_entry.footprint, ledger_entry.witness,
                                checker.epoch,
                            )
                            if refreshed.witness is not None:
                                cutoff_witness = refreshed.witness
                                break
                            continue
                    sweep_indices.append(index)
                best_witness: frozenset[str] | None = None
                for index in sweep_indices:
                    candidates = survivors[index]
                    with obs_span("solve_component", component=index):
                        witness = await solve_component_async(
                            checker.workspace, checker.fd_graph, query,
                            candidates, checker.engine, pivot=pivot,
                            stats=stats,
                        )
                    counters["swept"] += 1
                    self.ledger.store(
                        entry.name, candidates,
                        component_footprint(checker.db, candidates),
                        witness, checker.epoch,
                    )
                    if witness is not None:
                        best_witness = witness
                        break
                if best_witness is not None:
                    return DCSatResult(
                        satisfied=False, witness=best_witness, stats=stats
                    )
                if cutoff_witness is not None:
                    return DCSatResult(
                        satisfied=False, witness=cutoff_witness, stats=stats
                    )
                return DCSatResult(satisfied=True, stats=stats)
            finally:
                stats.elapsed_seconds = time.perf_counter() - started
                sp.fold_stats(stats)
                checker.workspace.clear_active()

    def _observe_probe(self, seconds: float, size: int) -> None:
        """Feed one revalidation probe into the shared cost model.

        Recorded under ``mode="revalidate"`` so the model (and
        ``/perfz``) keeps the probe-vs-sweep cost split visible — the
        whole point of revalidation is that this series stays orders of
        magnitude below the sweep series for the same size bucket.
        """
        default_cost_model().observe(
            seconds,
            size,
            engine=self.checker.engine.name,
            planner=getattr(self.checker, "planner", ""),
            mode="revalidate",
        )

    def ledger_stats(self) -> dict:
        """The verdict ledger's counters (``/perfz`` and describe())."""
        return self.ledger.snapshot()

    # ------------------------------------------------------------------
    # State changes (targeted invalidation)

    def _invalidate_touching(self, relations: frozenset[str]) -> list[str]:
        """Drop cached verdicts over relations the change can reach.

        The changed relations are first expanded through ind-connectivity
        and pending co-writes (:func:`coupled_relations`): a commit into
        relation ``A`` can flip the verdict of a constraint whose query
        never mentions ``A``, because it changes which transactions are
        appendable over an ind-coupled (or co-written) relation ``B``.
        Intersecting raw footprints served stale verdicts in that case.
        """
        with obs_span("monitor.invalidate") as sp:
            touched = coupled_relations(
                relations,
                self.checker.db.constraints,
                (tx.relation_names for tx in self.checker.db.pending),
            )
            invalidated = []
            for entry in self._entries.values():
                if entry.result is not None and entry.relations & touched:
                    entry.result = None
                    invalidated.append(entry.name)
            sp.set(touched=len(touched), invalidated=len(invalidated))
        return invalidated

    def _note_change(
        self, kind: str, tx_id: str | None, invalidated: list[str]
    ) -> list[str]:
        """Propagate one state change into the ledger's dirty-sets."""
        self.last_dirty_components = self.ledger.note_change(
            kind, tx_id, invalidated, self.checker.epoch
        )
        for name, count in self.last_dirty_components.items():
            self._dirty_since_check[name] = (
                self._dirty_since_check.get(name, 0) + count
            )
        return invalidated

    def issue(self, tx: Transaction) -> list[str]:
        """Forward a newly issued transaction; returns the names of the
        constraints whose cached verdicts were invalidated."""
        self.checker.issue(tx)
        invalidated = self._invalidate_touching(frozenset(tx.relation_names))
        return self._note_change("issue", tx.tx_id, invalidated)

    def commit(self, tx_id: str) -> list[str]:
        tx = self.checker.commit(tx_id)
        invalidated = self._invalidate_touching(frozenset(tx.relation_names))
        return self._note_change("commit", tx_id, invalidated)

    def forget(self, tx_id: str) -> list[str]:
        tx = self.checker.forget(tx_id)
        invalidated = self._invalidate_touching(frozenset(tx.relation_names))
        return self._note_change("forget", tx_id, invalidated)

    def absorb(self, tx: Transaction) -> list[str]:
        """Insert externally committed facts (mined-block coinbases,
        transactions first heard about inside a block) and invalidate the
        cached verdicts the new facts can reach.

        Without this, calling :meth:`DCSatChecker.absorb` underneath a
        monitor left every cached verdict stale.
        """
        self.checker.absorb(tx)
        invalidated = self._invalidate_touching(frozenset(tx.relation_names))
        return self._note_change("absorb", None, invalidated)

    def __repr__(self) -> str:
        cached = sum(1 for e in self._entries.values() if e.result is not None)
        return (
            f"ConstraintMonitor({len(self._entries)} constraints, "
            f"{cached} cached verdicts)"
        )
