"""Deriving contradicting transactions (the paper's future-work item).

Section 8 names "automatically derive a new transaction that contradicts
previous transactions" as future work.  Two transactions contradict when
no possible world contains both — in the model, the robust way to force
this is a functional-dependency clash: give the new transaction a tuple
agreeing with a target tuple on some FD's left-hand side but differing
on its right-hand side.  (This is exactly Bitcoin's trick of reissuing a
payment that spends one of the original inputs: both spends share the
``TxIn`` key ``(prevTxId, prevSer)`` with different ``newTxId``.)
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.blockchain_db import BlockchainDatabase
from repro.errors import ReproError
from repro.relational.checking import transactions_fd_consistent
from repro.relational.transaction import Transaction


def _bump_value(value: object) -> object:
    """A deterministic, type-preserving 'different' value."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "'"
    if isinstance(value, bytes):
        return value + b"'"
    raise ReproError(f"cannot derive a distinct value for {value!r}")


def conflict_candidates(
    db: BlockchainDatabase, target: Transaction
) -> list[tuple[str, tuple, int]]:
    """All ``(relation, tuple, rhs position)`` conflict points of *target*.

    Each entry names a fact of the target transaction that is governed by
    a functional dependency, together with a right-hand-side position
    *outside* the left-hand side that a contradicting tuple can differ
    on.
    """
    candidates: list[tuple[str, tuple, int]] = []
    for rel in target.relation_names:
        for rfd in db.constraints.fds_for(rel):
            mutable = [
                p for p in rfd.rhs_positions if p not in rfd.lhs_positions
            ]
            if not mutable:
                continue
            for values in target.tuples(rel):
                for position in mutable:
                    candidates.append((rel, values, position))
    return candidates


def contradicting_transaction(
    db: BlockchainDatabase,
    target: Transaction,
    payload: Iterable[tuple[str, tuple]] = (),
    tx_id: str | None = None,
    mutate: Callable[[object], object] = _bump_value,
) -> Transaction:
    """Build a transaction that can never coexist with *target*.

    Takes the first conflict point of *target* (a fact governed by a
    functional dependency), copies it with the right-hand side changed by
    *mutate*, and bundles it with any extra *payload* facts.  Raises
    :class:`~repro.errors.ReproError` when the target has no fact
    governed by a functional dependency — in that case no insert-only
    transaction can contradict it.
    """
    candidates = conflict_candidates(db, target)
    if not candidates:
        raise ReproError(
            f"transaction {target.tx_id!r} has no FD-governed fact; "
            "it cannot be contradicted by insertion"
        )
    relation, values, position = candidates[0]
    clashing = list(values)
    clashing[position] = mutate(values[position])
    facts = [(relation, tuple(clashing))] + [
        (rel, tuple(vals)) for rel, vals in payload
    ]
    conflict = Transaction(facts, tx_id=tx_id)
    if transactions_fd_consistent(
        {rel: list(conflict.tuples(rel)) for rel in conflict.relation_names},
        {rel: list(target.tuples(rel)) for rel in target.relation_names},
        db.constraints,
    ):
        raise ReproError(
            "derived transaction does not actually contradict the target "
            "(mutate produced an equivalent right-hand side?)"
        )
    return conflict


def are_contradicting(
    db: BlockchainDatabase, first: Transaction, second: Transaction
) -> bool:
    """True when the two transactions can never share a possible world
    because of the functional dependencies (``T ∪ T' ⊭ I_fd``)."""
    return not transactions_fd_consistent(
        {rel: list(first.tuples(rel)) for rel in first.relation_names},
        {rel: list(second.tuples(rel)) for rel in second.relation_names},
        db.constraints,
    )
