"""The steady-state DCSat engine (Section 6.3).

:class:`DCSatChecker` owns the precomputed structures the paper keeps
between checks — the merged store with its ``current`` cursor, the
per-transaction "can be included in R" status, the fd-transaction graph
and the Θ_I side of the ind-q-transaction graph — maintains them as
transactions are issued and committed, and answers denial-constraint
satisfaction with the algorithm of the caller's choice:

* ``"naive"`` — NaiveDCSat (Figure 4), monotone queries;
* ``"opt"`` — OptDCSat (Figure 5), monotone *connected* queries;
* ``"assign"`` — the assignment-driven sound-and-complete solver;
* ``"tractable"`` — the PTIME fragment solvers of Theorems 1–2;
* ``"brute"`` — exhaustive possible-world enumeration (any query, small
  pending sets);
* ``"auto"`` — pick for the caller: opt when applicable, naive for other
  monotone queries, a tractable solver or brute force otherwise.

Every check first evaluates ``q`` over the current state alone (if the
state already violates the constraint no algorithm is needed), then —
for monotone queries — applies the paper's short-circuit: if ``q`` is
false even over ``R ∪ T``, it is false in every possible world.
"""

from __future__ import annotations

import time

from repro.core.assignment import assignment_dcsat
from repro.core.bitset import make_fd_graph, resolve_planner_name
from repro.core.blockchain_db import BlockchainDatabase
from repro.core.brute import DEFAULT_PENDING_LIMIT, brute_dcsat, brute_dcsat_async
from repro.core.engine import EvaluationEngine, make_engine
from repro.core.fd_graph import FdTransactionGraph
from repro.core.ind_graph import IndQTransactionGraph
from repro.core.naive import naive_dcsat, naive_dcsat_async
from repro.core.opt import opt_dcsat, opt_dcsat_async
from repro.core.results import DCSatResult, DCSatStats
from repro.core.tractable import (
    dcsat_aggregate_fd,
    dcsat_aggregate_ind,
    dcsat_fd_only,
    dcsat_ind_only,
)
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.obs.trace import span as obs_span
from repro.query.analysis import is_connected, is_monotone
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.relational.transaction import Transaction
from repro.storage import Backend, make_backend

ALGORITHMS = ("auto", "naive", "opt", "assign", "tractable", "brute")


class DCSatChecker:
    """Denial-constraint satisfaction over a blockchain database."""

    def __init__(
        self,
        db: BlockchainDatabase,
        backend: str | Backend | None = None,
        assume_nonnegative_sums: bool = False,
        engine: str | EvaluationEngine | None = None,
        planner: str | None = None,
    ):
        self.db = db
        self.workspace = Workspace(db)
        # ``None`` defers to REPRO_BITSET (default: the set planner).
        # Both planners emit byte-identical evaluation plans; the bitset
        # one sweeps cliques over interned machine-word masks instead of
        # Python sets (repro.core.bitset, docs/ENGINES.md).
        self.planner: str = resolve_planner_name(planner)
        self.fd_graph: FdTransactionGraph = make_fd_graph(
            self.planner, self.workspace
        )
        self.ind_graph = IndQTransactionGraph(self.workspace)
        self.assume_nonnegative_sums = assume_nonnegative_sums
        #: Monotone state-change counter.  Bumped by every issue / commit
        #: / forget / absorb, so callers holding derived state (e.g. the
        #: solver pool's worker snapshots) can detect staleness cheaply.
        self.epoch = 0
        # ``None`` defers to the REPRO_BACKEND / REPRO_ENGINE environment
        # variables (defaults: memory, sync) — how CI runs the whole
        # suite over sqlite or a different engine without editing tests.
        self.backend: Backend = (
            backend
            if not (backend is None or isinstance(backend, str))
            else make_backend(backend)
        )
        self.backend.attach(self.workspace)
        #: The evaluation engine deciding *how* candidate worlds reach
        #: the backend: "sync", "batched" or "async" (docs/ENGINES.md).
        self.engine: EvaluationEngine = (
            engine
            if isinstance(engine, EvaluationEngine)
            else make_engine(engine, self.backend)
        )

    # ------------------------------------------------------------------
    # Steady-state maintenance

    def issue(self, tx: Transaction) -> None:
        """A user issued a new transaction: add it to the pending set."""
        self.workspace.issue(tx)
        self.fd_graph.add_transaction(tx.tx_id)
        self.ind_graph.invalidate()
        self.backend.on_issue(tx)
        self.epoch += 1

    def commit(self, tx_id: str) -> Transaction:
        """A pending transaction was accepted into the blockchain."""
        tx = self.workspace.commit(tx_id)
        self.fd_graph.remove_transaction(tx_id)
        self.fd_graph.refresh_after_commit()
        self.ind_graph.invalidate()
        self.backend.on_commit(tx)
        self.epoch += 1
        return tx

    def forget(self, tx_id: str) -> Transaction:
        """Drop a pending transaction without committing it."""
        tx = self.workspace.forget(tx_id)
        self.fd_graph.remove_transaction(tx_id)
        self.ind_graph.invalidate()
        self.backend.on_forget(tx)
        self.epoch += 1
        return tx

    def absorb(self, tx: Transaction) -> None:
        """Insert externally committed facts directly into the state.

        For facts that were never in the pending set — e.g. a mined
        block's coinbase rows, or transactions first heard about inside
        a block.  Pending transactions now clashing with the new facts
        become never-appendable, as with :meth:`commit`.
        """
        for rel, values in tx:
            self.workspace.base.insert(rel, values)
        self.fd_graph.refresh_after_commit()
        self.ind_graph.invalidate()
        self.backend.on_commit(tx)
        self.epoch += 1

    # ------------------------------------------------------------------
    # Checking

    def _evaluate_world(
        self, query: ConjunctiveQuery | AggregateQuery, active: frozenset[str]
    ) -> bool:
        return self.engine.evaluate(query, active)

    def evaluate_world(
        self, query: ConjunctiveQuery | AggregateQuery, active: frozenset[str]
    ) -> bool:
        """Evaluate *query* over the world ``R ∪ {facts of active}``."""
        return self.engine.evaluate(query, active)

    def _parse(self, query) -> ConjunctiveQuery | AggregateQuery:
        if isinstance(query, str):
            return parse_query(query)
        return query

    def check(
        self,
        query: ConjunctiveQuery | AggregateQuery | str,
        algorithm: str = "auto",
        short_circuit: bool = True,
        use_coverage: bool = True,
        pivot: bool = True,
        pending_limit: int = DEFAULT_PENDING_LIMIT,
        normalize: bool = True,
    ) -> DCSatResult:
        """Decide ``D |= ¬q``: is the denial constraint safe?

        Returns a :class:`~repro.core.results.DCSatResult`; when the
        constraint can be violated, ``result.witness`` holds the pending
        transactions of a violating possible world.  With ``normalize``
        (default) the query is first simplified; a provably
        unsatisfiable query is answered without touching the data.
        """
        if algorithm not in ALGORITHMS:
            raise AlgorithmError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        query = self._parse(query)
        stats = DCSatStats(algorithm=algorithm if algorithm != "auto" else "")
        if normalize:
            from repro.query.rewriter import Verdict
            from repro.query.rewriter import normalize as normalize_query

            query, verdict = normalize_query(query)
            if verdict is Verdict.UNSATISFIABLE:
                stats.algorithm = "rewrite"
                return DCSatResult(satisfied=True, stats=stats)
        started = time.perf_counter()
        with obs_span("dcsat.check", requested=algorithm) as sp:
            try:
                return self._check(
                    query, algorithm, short_circuit, use_coverage, pivot,
                    pending_limit, stats,
                )
            finally:
                stats.elapsed_seconds = time.perf_counter() - started
                sp.fold_stats(stats)
                self.workspace.clear_active()

    def _check(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        algorithm: str,
        short_circuit: bool,
        use_coverage: bool,
        pivot: bool,
        pending_limit: int,
        stats: DCSatStats,
    ) -> DCSatResult:
        monotone = is_monotone(query, self.assume_nonnegative_sums)

        decided = self.fast_paths(query, monotone, short_circuit, stats)
        if decided is not None:
            return decided

        if algorithm == "auto":
            algorithm = self._pick_algorithm(query, monotone)
            stats.algorithm = algorithm

        if algorithm == "naive":
            self._require_monotone(query, monotone, "NaiveDCSat")
            return naive_dcsat(
                self.workspace, self.fd_graph, query, self.engine,
                pivot=pivot, stats=stats,
            )
        if algorithm == "opt":
            self._require_monotone(query, monotone, "OptDCSat")
            return opt_dcsat(
                self.workspace, self.fd_graph, self.ind_graph, query,
                self.engine, pivot=pivot, use_coverage=use_coverage,
                stats=stats,
            )
        if algorithm == "assign":
            return assignment_dcsat(
                self.workspace, self.fd_graph, self.ind_graph, query,
                self._evaluate_world, pivot=pivot, stats=stats,
            )
        if algorithm == "tractable":
            return self._tractable(query, stats)
        return brute_dcsat(
            self.workspace, query, self.engine,
            pending_limit=pending_limit, stats=stats,
        )

    async def check_async(
        self,
        query: ConjunctiveQuery | AggregateQuery | str,
        algorithm: str = "auto",
        short_circuit: bool = True,
        use_coverage: bool = True,
        pivot: bool = True,
        pending_limit: int = DEFAULT_PENDING_LIMIT,
        normalize: bool = True,
    ) -> DCSatResult:
        """:meth:`check` on the engine's coroutine surface.

        With an :class:`~repro.core.engine.AsyncEngine` the world
        evaluations are awaited, so a server calling this from its
        event loop overlaps them with request handling; sync engines
        run unchanged (their awaitables complete immediately).
        ``assign`` and ``tractable`` have no world sweep to overlap and
        run inline.
        """
        if algorithm not in ALGORITHMS:
            raise AlgorithmError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        query = self._parse(query)
        stats = DCSatStats(algorithm=algorithm if algorithm != "auto" else "")
        if normalize:
            from repro.query.rewriter import Verdict
            from repro.query.rewriter import normalize as normalize_query

            query, verdict = normalize_query(query)
            if verdict is Verdict.UNSATISFIABLE:
                stats.algorithm = "rewrite"
                return DCSatResult(satisfied=True, stats=stats)
        started = time.perf_counter()
        with obs_span("dcsat.check", requested=algorithm, mode="async") as sp:
            try:
                return await self._check_async(
                    query, algorithm, short_circuit, use_coverage, pivot,
                    pending_limit, stats,
                )
            finally:
                stats.elapsed_seconds = time.perf_counter() - started
                sp.fold_stats(stats)
                self.workspace.clear_active()

    async def _check_async(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        algorithm: str,
        short_circuit: bool,
        use_coverage: bool,
        pivot: bool,
        pending_limit: int,
        stats: DCSatStats,
    ) -> DCSatResult:
        monotone = is_monotone(query, self.assume_nonnegative_sums)

        decided = await self.fast_paths_async(query, monotone, short_circuit, stats)
        if decided is not None:
            return decided

        if algorithm == "auto":
            algorithm = self._pick_algorithm(query, monotone)
            stats.algorithm = algorithm

        if algorithm == "naive":
            self._require_monotone(query, monotone, "NaiveDCSat")
            return await naive_dcsat_async(
                self.workspace, self.fd_graph, query, self.engine,
                pivot=pivot, stats=stats,
            )
        if algorithm == "opt":
            self._require_monotone(query, monotone, "OptDCSat")
            return await opt_dcsat_async(
                self.workspace, self.fd_graph, self.ind_graph, query,
                self.engine, pivot=pivot, use_coverage=use_coverage,
                stats=stats,
            )
        if algorithm == "assign":
            return assignment_dcsat(
                self.workspace, self.fd_graph, self.ind_graph, query,
                self._evaluate_world, pivot=pivot, stats=stats,
            )
        if algorithm == "tractable":
            return self._tractable(query, stats)
        return await brute_dcsat_async(
            self.workspace, query, self.engine,
            pending_limit=pending_limit, stats=stats,
        )

    def fast_paths(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        monotone: bool,
        short_circuit: bool,
        stats: DCSatStats,
    ) -> DCSatResult | None:
        """The two solver-free decision paths, or ``None`` if undecided.

        Shared by :meth:`_check` and the parallel solver pool so the
        parallel path answers the easy cases without touching workers.
        """
        with obs_span("fast_paths") as sp:
            # The current state is itself a possible world: if it already
            # satisfies the underlying query, no algorithm is needed.
            stats.evaluations += 1
            if self._evaluate_world(query, frozenset()):
                stats.algorithm = stats.algorithm or "state-check"
                sp.set(decided="state-check")
                return DCSatResult(
                    satisfied=False, witness=frozenset(), stats=stats
                )

            # The paper's monotone short-circuit: q false over R ∪ T implies
            # q false over every possible world (each is a subset).
            if monotone and short_circuit:
                stats.evaluations += 1
                all_active = frozenset(self.db.pending_ids)
                if not self._evaluate_world(query, all_active):
                    stats.short_circuit_used = True
                    stats.short_circuit_result = True
                    stats.algorithm = stats.algorithm or "short-circuit"
                    sp.set(decided="short-circuit")
                    return DCSatResult(satisfied=True, stats=stats)
                stats.short_circuit_used = True
                stats.short_circuit_result = False
            sp.set(decided="")
        return None

    async def fast_paths_async(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        monotone: bool,
        short_circuit: bool,
        stats: DCSatStats,
    ) -> DCSatResult | None:
        """:meth:`fast_paths` with awaited world evaluations."""
        with obs_span("fast_paths") as sp:
            stats.evaluations += 1
            if await self.engine.evaluate_async(query, frozenset()):
                stats.algorithm = stats.algorithm or "state-check"
                sp.set(decided="state-check")
                return DCSatResult(
                    satisfied=False, witness=frozenset(), stats=stats
                )

            if monotone and short_circuit:
                stats.evaluations += 1
                all_active = frozenset(self.db.pending_ids)
                if not await self.engine.evaluate_async(query, all_active):
                    stats.short_circuit_used = True
                    stats.short_circuit_result = True
                    stats.algorithm = stats.algorithm or "short-circuit"
                    sp.set(decided="short-circuit")
                    return DCSatResult(satisfied=True, stats=stats)
                stats.short_circuit_used = True
                stats.short_circuit_result = False
            sp.set(decided="")
        return None

    def _require_monotone(self, query, monotone: bool, name: str) -> None:
        if not monotone:
            raise AlgorithmError(
                f"{name} is only sound for monotone denial constraints; "
                f"{query!s} is not (or cannot be verified) monotone"
            )

    def _pick_algorithm(
        self, query: ConjunctiveQuery | AggregateQuery, monotone: bool
    ) -> str:
        if monotone:
            if is_connected(query):
                return "opt"
            return "naive"
        constraints = self.db.constraints
        if isinstance(query, ConjunctiveQuery):
            if constraints.only_keys_and_fds() or constraints.only_inds():
                return "tractable"
        else:
            if constraints.only_keys_and_fds() and query.is_positive:
                if (query.func == "max" and query.op in (">", ">=")) or (
                    query.op in ("<", "<=")
                ):
                    return "tractable"
        return "brute"

    def _tractable(
        self, query: ConjunctiveQuery | AggregateQuery, stats: DCSatStats
    ) -> DCSatResult:
        constraints = self.db.constraints
        if isinstance(query, ConjunctiveQuery):
            if constraints.only_keys_and_fds():
                return dcsat_fd_only(self.workspace, self.fd_graph, query, stats)
            if constraints.only_inds():
                return dcsat_ind_only(self.workspace, query, stats)
            raise AlgorithmError(
                "no tractable fragment applies: conjunctive queries need a "
                "{key, fd}-only or {ind}-only database (Theorem 1)"
            )
        if constraints.only_keys_and_fds():
            return dcsat_aggregate_fd(self.workspace, self.fd_graph, query, stats)
        if constraints.only_inds():
            return dcsat_aggregate_ind(
                self.workspace, query,
                assume_nonnegative=self.assume_nonnegative_sums, stats=stats,
            )
        raise AlgorithmError(
            "no tractable fragment applies to this aggregate query"
        )

    # ------------------------------------------------------------------
    # Batch checking

    def check_batch(
        self,
        queries: list[ConjunctiveQuery | AggregateQuery | str],
        short_circuit: bool = True,
        pivot: bool = True,
    ) -> list[DCSatResult]:
        """Check several monotone denial constraints in one world sweep.

        Far cheaper than sequential :meth:`check` calls when several
        constraints are undecided by the fast paths: the maximal-clique
        enumeration and world construction are shared.
        """
        from repro.core.batch import batch_dcsat

        parsed = [self._parse(query) for query in queries]
        return batch_dcsat(
            self.workspace,
            self.fd_graph,
            parsed,
            self.engine,
            assume_nonnegative_sums=self.assume_nonnegative_sums,
            short_circuit=short_circuit,
            pivot=pivot,
        )

    # ------------------------------------------------------------------
    # Weighted worlds (future work §8)

    def violation_probability(
        self,
        query: ConjunctiveQuery | AggregateQuery | str,
        model,
        samples: int = 1000,
        seed: int = 0,
        exact: bool | None = None,
    ):
        """Estimate ``P(q is violated)`` under an inclusion model.

        ``model`` maps pending transaction ids to inclusion
        probabilities (see :mod:`repro.likelihood.model`).  With
        ``exact=None`` the method enumerates exactly when the pending
        set is small and falls back to Monte-Carlo otherwise.
        """
        from repro.likelihood.estimator import (
            estimate_violation_probability,
            exact_violation_probability,
        )

        query = self._parse(query)
        if exact is None:
            exact = len(self.db.pending_ids) <= 8
        if exact:
            return exact_violation_probability(self.db, query, model)
        return estimate_violation_probability(
            self.db, query, model, samples=samples, seed=seed
        )

    # ------------------------------------------------------------------
    # Dry runs (Example 4's workflow)

    def dry_run(
        self,
        tx: Transaction,
        query: ConjunctiveQuery | AggregateQuery | str,
        **check_kwargs,
    ) -> DCSatResult:
        """Hypothetically issue *tx*, check the denial constraint, retract.

        This is the paper's intended usage: before broadcasting a
        transaction, verify that no possible world (with the new
        transaction among the pending ones) violates the constraint.
        """
        self.issue(tx)
        try:
            return self.check(query, **check_kwargs)
        finally:
            self.forget(tx.tx_id)

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "DCSatChecker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DCSatChecker({self.db!r}, fd_graph={self.fd_graph!r})"
        )
