"""Assignment-driven DCSat ("AssignDCSat").

A sound *and* complete solver for monotone denial constraints that works
from satisfying assignments instead of enumerating all maximal worlds:

1. Evaluate the query's body over the full overlay ``R ∪ ⋃T`` (every
   pending transaction active).  For a monotone (hence positive) query,
   every assignment satisfied in *some* possible world appears here.
2. For each satisfying assignment, each matched fact is supplied by the
   committed state or by one of its pending *provider* transactions;
   iterate over provider combinations to obtain candidate support sets
   ``S``.
3. ``q`` is violated iff some support set ``S`` extends to a possible
   world.  ``S`` must be a clique of the fd-transaction graph, and its
   inclusion-dependency support can only come from the ind-components
   that ``S`` touches; enumerate the maximal cliques containing ``S``
   inside those components and test ``S ⊆ getMaximal(clique)``.

This repairs the incompleteness of OptDCSat for assignments whose atom
chain passes through committed tuples (see :mod:`repro.core.opt`), while
typically examining far fewer worlds than NaiveDCSat.
"""

from __future__ import annotations

import itertools

from repro.core.fd_graph import FdTransactionGraph
from repro.core.ind_graph import IndQTransactionGraph
from repro.core.possible_worlds import get_maximal
from repro.core.results import DCSatResult, DCSatStats
from repro.core.workspace import Workspace
from repro.errors import AlgorithmError
from repro.graphs import UndirectedGraph, bron_kerbosch
from repro.query.ast import AggregateQuery, ConjunctiveQuery
from repro.query.evaluator import iter_matches

#: Upper bound on provider combinations examined per assignment.
MAX_PROVIDER_COMBINATIONS = 4096


def _support_sets(workspace: Workspace, matched):
    """Yield candidate support sets (frozensets of tx ids) for a match.

    Each matched fact not present in the committed state must be supplied
    by one of its pending providers; the Cartesian product over facts
    gives all minimal support choices.
    """
    options: list[list[str | None]] = []
    for relation, values in matched:
        if workspace.fact_in_base(relation, values):
            continue
        providers = sorted(workspace.providers_of(relation, values))
        if not providers:
            return  # fact not available anywhere: match impossible
        options.append(providers)
    total = 1
    for providers in options:
        total *= len(providers)
        if total > MAX_PROVIDER_COMBINATIONS:
            raise AlgorithmError(
                "assignment solver aborted: too many provider combinations "
                f"({total} > {MAX_PROVIDER_COMBINATIONS})"
            )
    if not options:
        yield frozenset()
        return
    seen: set[frozenset[str]] = set()
    for combo in itertools.product(*options):
        support = frozenset(combo)
        if support not in seen:
            seen.add(support)
            yield support


def _world_containing(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    ind_graph: IndQTransactionGraph,
    support: frozenset[str],
    pivot: bool,
    stats: DCSatStats,
) -> frozenset[str] | None:
    """Find a possible world including every transaction of *support*."""
    if not support:
        return frozenset()
    if not fd_graph.is_clique(support):
        return None
    # Inclusion-dependency helpers can only live in the ind-components of
    # the support transactions (parents share projected values).
    components = ind_graph.components()
    pool: set[str] = set()
    for component in components:
        if component & support:
            pool |= component
    pool &= fd_graph.nodes
    pool -= support
    # Candidates must be fd-compatible with the whole support set.
    candidates = {
        tx
        for tx in pool
        if all(fd_graph.has_edge(tx, member) for member in support)
    }
    contested = {tx for tx in candidates if fd_graph.conflicts[tx] & candidates}
    free = candidates - contested
    if not contested:
        clique_iter = iter([frozenset()])
    else:
        subgraph = UndirectedGraph(nodes=contested)
        contested_list = sorted(contested)
        for i, u in enumerate(contested_list):
            for v in contested_list[i + 1 :]:
                if v not in fd_graph.conflicts[u]:
                    subgraph.add_edge(u, v)
        clique_iter = bron_kerbosch(subgraph, pivot=pivot)
    for extension in clique_iter:
        clique = support | free | extension
        stats.cliques_enumerated += 1
        world = get_maximal(workspace, clique)
        stats.worlds_checked += 1
        if support <= world:
            return world
    return None


def assignment_dcsat(
    workspace: Workspace,
    fd_graph: FdTransactionGraph,
    ind_graph: IndQTransactionGraph,
    query: ConjunctiveQuery | AggregateQuery,
    evaluate_world,
    pivot: bool = True,
    stats: DCSatStats | None = None,
) -> DCSatResult:
    """Decide ``D |= ¬q`` for a monotone *conjunctive* denial constraint.

    Aggregate queries are rejected: a single assignment does not witness
    an aggregate threshold (use NaiveDCSat for those).
    """
    if isinstance(query, AggregateQuery):
        raise AlgorithmError(
            "the assignment solver handles conjunctive denial constraints "
            "only; aggregate thresholds need whole-world evaluation"
        )
    if not query.is_positive:
        raise AlgorithmError(
            "the assignment solver requires a positive (monotone) query"
        )
    stats = stats if stats is not None else DCSatStats()
    stats.algorithm = stats.algorithm or "assign"

    workspace.activate_all()
    # Materialize matches first: the workspace's active set changes
    # during world construction, which would disturb a live iterator.
    matches = [list(matched) for _, matched in iter_matches(query, workspace)]
    for matched in matches:
        stats.assignments_examined += 1
        for support in _support_sets(workspace, matched):
            world = _world_containing(
                workspace, fd_graph, ind_graph, support, pivot, stats
            )
            if world is not None:
                return DCSatResult(satisfied=False, witness=world, stats=stats)
    return DCSatResult(satisfied=True, stats=stats)
