"""Command-line interface.

::

    python -m repro generate --preset D100-S --out chain.json
    python -m repro stats chain.json
    python -m repro check chain.json --query "q() <- TxOut(t, s, 'X', a)"
    python -m repro worlds chain.json --limit 50
    python -m repro bench diff benchmarks/BASELINE.json BENCH_abc1234.json --gate

``generate`` builds a synthetic Bitcoin dataset and serializes its
relational blockchain database; ``check`` runs denial-constraint
satisfaction over a serialized database (exit status 1 signals a
violable constraint — script-friendly); ``worlds`` enumerates possible
worlds of small instances; ``bench`` renders trend reports over the
benchmark suite's ``BENCH_*.json`` artifacts and gates regressions
against the committed baseline.
"""

from __future__ import annotations

import argparse
import sys

from repro import serialize
from repro.core.bitset import PLANNERS
from repro.core.checker import ALGORITHMS, DCSatChecker
from repro.core.engine import ENGINES
from repro.errors import ReproError
from repro.obs.bench import add_bench_subcommands
from repro.obs.log import LEVELS, configure_logging


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.bitcoin.generator import PRESETS, generate_dataset

    spec = PRESETS.get(args.preset)
    if spec is None:
        print(
            f"unknown preset {args.preset!r}; options: {sorted(PRESETS)}",
            file=sys.stderr,
        )
        return 2
    if args.contradictions is not None:
        spec = spec.scaled(contradictions=args.contradictions)
    if args.seed is not None:
        spec = spec.scaled(seed=args.seed)
    dataset = generate_dataset(spec)
    db = dataset.to_blockchain_database()
    serialize.dump(db, args.out)
    stats = dataset.stats()
    print(
        f"wrote {args.out}: {stats.blocks} blocks, "
        f"{stats.transactions} committed txs, "
        f"{stats.pending_transactions} pending "
        f"({stats.contradictions} contradictions)"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = serialize.load(args.database)
    print(f"relations: {', '.join(db.current.relation_names)}")
    for name in db.current.relation_names:
        print(f"  {name}: {len(db.current[name])} committed tuples")
    print(f"constraints: {len(db.constraints.fds)} FDs, {len(db.constraints.inds)} INDs")
    for constraint in db.constraints:
        print(f"  {constraint}")
    print(f"pending transactions: {len(db.pending)}")
    checker = DCSatChecker(db)
    graph = checker.fd_graph
    print(
        f"fd-graph: {len(graph.nodes)} appendable, "
        f"{graph.conflict_count()} conflict pairs, "
        f"{len(graph.never_appendable)} never-appendable"
    )
    print(f"ind-components: {len(checker.ind_graph.components())}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    db = serialize.load(args.database)
    checker = DCSatChecker(
        db,
        backend=args.backend,
        assume_nonnegative_sums=args.assume_nonnegative_sums,
        engine=args.engine,
        planner=args.planner,
    )
    result = checker.check(
        args.query,
        algorithm=args.algorithm,
        short_circuit=not args.no_short_circuit,
    )
    stats = result.stats
    if result.satisfied:
        print("SATISFIED: the denial constraint holds in every possible world")
    else:
        witness = sorted(result.witness or ())
        world = " + ".join(witness) if witness else "(the current state)"
        print(f"VIOLATED: possible world {world} satisfies the query")
        if args.explain:
            from repro.core.explain import explain_violation
            from repro.query.parser import parse_query

            explanation = explain_violation(
                db, parse_query(args.query), result
            )
            print(explanation.render())
    print(
        f"  algorithm={stats.algorithm} engine={stats.engine or 'sync'} "
        f"planner={checker.planner} "
        f"worlds={stats.worlds_checked} "
        f"cliques={stats.cliques_enumerated} "
        f"components={stats.components_total} "
        f"(pruned {stats.components_pruned}) "
        f"elapsed={stats.elapsed_seconds * 1000:.2f}ms"
    )
    return 0 if result.satisfied else 1


def _cmd_worlds(args: argparse.Namespace) -> int:
    from repro.core.possible_worlds import enumerate_possible_worlds

    db = serialize.load(args.database)
    count = 0
    try:
        for world in enumerate_possible_worlds(db, limit=args.limit):
            label = " + ".join(sorted(world)) if world else "(current state)"
            print(f"  R ∪ {{{label}}}" if world else f"  R {label}")
            count += 1
    except ReproError as error:
        print(f"stopped: {error}", file=sys.stderr)
        return 3
    print(f"{count} possible worlds")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.monitor import ConstraintMonitor
    from repro.service.metrics import MetricsRegistry
    from repro.service.pool import PooledDCSatChecker, default_pool_size
    from repro.service.server import ConstraintService
    from repro.service.shard import ShardedMonitor

    db = serialize.load(args.database)
    metrics = MetricsRegistry()
    if args.shards > 1:
        # Split the worker budget evenly across shards; a shard with a
        # single worker gets a plain sequential checker (no pool).
        per_shard_workers = args.pool_size or max(
            1, default_pool_size() // args.shards
        )

        def shard_checker(shard_db):
            if per_shard_workers > 1:
                return PooledDCSatChecker(
                    shard_db,
                    backend=args.backend,
                    assume_nonnegative_sums=args.assume_nonnegative_sums,
                    engine=args.engine,
                    max_workers=per_shard_workers,
                )
            return DCSatChecker(
                shard_db,
                backend=args.backend,
                assume_nonnegative_sums=args.assume_nonnegative_sums,
                engine=args.engine,
            )

        monitor = ShardedMonitor(
            db,
            shards=args.shards,
            checker_factory=shard_checker,
            metrics=metrics,
        )
        detail = f"shards={args.shards}x{per_shard_workers} workers"
    else:
        checker = PooledDCSatChecker(
            db,
            backend=args.backend,
            assume_nonnegative_sums=args.assume_nonnegative_sums,
            engine=args.engine,
            max_workers=args.pool_size,
        )
        monitor = ConstraintMonitor(checker)
        detail = f"pool={checker.pool.max_workers} workers"
    service = ConstraintService(
        monitor,
        metrics=metrics,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        drain_timeout=args.drain_timeout,
    )

    def ready(host: str, port: int) -> None:
        print(
            f"repro-service listening on {host}:{port} "
            f"({detail}, queue={args.queue_limit}, deadline={args.deadline}s)",
            flush=True,
        )

    def ready_with_http(host: str, port: int) -> None:
        ready(host, port)
        if service.http_port is not None:
            print(
                f"observability endpoint on "
                f"http://{service.http_host}:{service.http_port} "
                f"(/metrics /healthz /tracez /perfz)",
                flush=True,
            )

    try:
        asyncio.run(
            service.run(
                args.host,
                args.port,
                ready=ready_with_http,
                install_signal_handlers=True,
                http_host=args.http_host,
                http_port=args.http_port,
            )
        )
    finally:
        if isinstance(monitor, ShardedMonitor):
            monitor.close()
        else:
            monitor.checker.close()
    print("repro-service stopped (drained)", flush=True)
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    import asyncio

    from repro.fabric import (
        FabricJournal,
        FabricMonitor,
        FleetSupervisor,
        ShardSpec,
        reap_stale,
    )
    from repro.service.metrics import MetricsRegistry
    from repro.service.server import ConstraintService

    db = serialize.load(args.database)
    metrics = MetricsRegistry()
    spec = ShardSpec(
        db_path=args.database,
        backend=args.backend,
        engine=args.engine,
        pool_size=args.shard_pool_size,
        queue_limit=args.queue_limit,
        deadline=args.deadline,
        log_level=args.log_level,
    )

    journal = None
    state_path = None
    if args.recover and not args.journal_dir:
        print("repro fabric: --recover requires --journal-dir", flush=True)
        return 2
    if args.journal_dir:
        had_journal = FabricJournal.exists(args.journal_dir)
        if had_journal and not args.recover:
            print(
                f"repro fabric: {args.journal_dir} already holds a journal; "
                "pass --recover to rebuild from it, or use a fresh "
                "--journal-dir",
                flush=True,
            )
            return 2
        if args.recover and not had_journal:
            print(
                f"repro fabric: no journal at {args.journal_dir} to recover "
                "from",
                flush=True,
            )
            return 2
        journal = FabricJournal(
            args.journal_dir, shards=args.shards, fsync=args.fsync
        )
        state_path = journal.fleet_state_path
        if args.recover:
            # Shard subprocesses orphaned by the crashed router would
            # otherwise hold their ports and data forever.
            reaped = reap_stale(state_path)
            if reaped:
                print(
                    f"repro fabric: reaped {len(reaped)} orphaned shard "
                    f"process(es): {reaped}",
                    flush=True,
                )

    fleet = FleetSupervisor(spec, shards=args.shards, state_path=state_path)
    if args.recover:
        fleet.start()
        monitor = FabricMonitor.recover(
            db,
            fleet,
            journal=journal,
            metrics=metrics,
            journal_max_ops=args.journal_max_ops,
        )
    else:
        monitor = FabricMonitor(
            db,
            fleet,
            metrics=metrics,
            journal=journal,
            journal_max_ops=args.journal_max_ops,
        )
    if args.watchdog_interval > 0:
        monitor.start_watchdog(
            interval=args.watchdog_interval,
            flap_limit=args.watchdog_flap_limit,
            flap_window=args.watchdog_flap_window,
        )
    service = ConstraintService(
        monitor,
        metrics=metrics,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        drain_timeout=args.drain_timeout,
    )

    def ready(host: str, port: int) -> None:
        ports = [
            f"{item['port']}(pid {item['pid']})"
            for item in monitor.fleet_health()["shards"]
        ]
        print(
            f"repro-service listening on {host}:{port} "
            f"(fabric router, {args.shards} shard processes: "
            f"{', '.join(ports)})",
            flush=True,
        )
        if args.journal_dir:
            print(
                f"durable journal at {args.journal_dir} "
                f"(fsync={args.fsync}"
                + (", recovered" if args.recover else "")
                + ")",
                flush=True,
            )
        if service.http_port is not None:
            print(
                f"observability endpoint on "
                f"http://{service.http_host}:{service.http_port} "
                f"(/metrics /healthz /tracez /perfz)",
                flush=True,
            )

    try:
        asyncio.run(
            service.run(
                args.host,
                args.port,
                ready=ready,
                install_signal_handlers=True,
                http_host=args.http_host,
                http_port=args.http_port,
            )
        )
    finally:
        monitor.close()
    print("repro-fabric stopped (fleet drained)", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Denial-constraint satisfaction over blockchain databases "
            "(Cohen, Rosenthal, Zohar — ICDE 2020 reproduction)"
        ),
    )
    parser.add_argument(
        "--log-level", choices=LEVELS, default="warning",
        help="structured-log threshold for the repro.* loggers",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one JSON object per log line (trace-id correlated)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic dataset and serialize it"
    )
    generate.add_argument("--preset", default="D100-S")
    generate.add_argument("--out", required=True)
    generate.add_argument("--contradictions", type=int, default=None)
    generate.add_argument("--seed", type=int, default=None)
    generate.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="summarize a serialized database")
    stats.add_argument("database")
    stats.set_defaults(func=_cmd_stats)

    check = sub.add_parser(
        "check", help="check a denial constraint (exit 1 when violable)"
    )
    check.add_argument("database")
    check.add_argument("--query", required=True)
    check.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    check.add_argument(
        "--backend", choices=["memory", "sqlite"], default=None,
        help="storage backend (default: $REPRO_BACKEND or memory)",
    )
    check.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="evaluation engine driving the backend: sync (one round "
        "trip per world), batched (many worlds per round trip), or "
        "async (coroutine backend surface); default: $REPRO_ENGINE "
        "or sync",
    )
    check.add_argument(
        "--planner", choices=list(PLANNERS), default=None,
        help="world-enumeration planner: set (Python sets) or bitset "
        "(interned ids + machine-word masks; identical plans); "
        "default: $REPRO_BITSET or set",
    )
    check.add_argument("--no-short-circuit", action="store_true")
    check.add_argument("--assume-nonnegative-sums", action="store_true")
    check.add_argument(
        "--explain", action="store_true",
        help="when violated, print the witnessing assignment and facts",
    )
    check.set_defaults(func=_cmd_check)

    worlds = sub.add_parser("worlds", help="enumerate possible worlds")
    worlds.add_argument("database")
    worlds.add_argument("--limit", type=int, default=256)
    worlds.set_defaults(func=_cmd_worlds)

    bench = sub.add_parser(
        "bench",
        help="benchmark trend reports and the CI regression gate over "
        "BENCH_*.json artifacts",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    add_bench_subcommands(bench_sub)

    serve = sub.add_parser(
        "serve",
        help="run the constraint-checking service over a serialized database",
    )
    serve.add_argument("database")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411)
    serve.add_argument(
        "--pool-size", type=int, default=None,
        help="solver worker processes (default: CPU count, capped at 8; "
        "1 disables the pool; with --shards, workers per shard)",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="partition registered constraints across this many monitor "
        "shards, routing state changes only to the shards they can "
        "affect (1 keeps the single monitor)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="bounded solve queue; beyond this, requests are rejected "
        "with retry-after (backpressure)",
    )
    serve.add_argument(
        "--deadline", type=float, default=30.0,
        help="default per-request deadline in seconds",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="how long graceful shutdown waits for in-flight checks",
    )
    serve.add_argument(
        "--http-port", type=int, default=None,
        help="also serve GET /metrics, /healthz and /tracez over plain "
        "HTTP on this port (0 picks a free one; default: disabled)",
    )
    serve.add_argument(
        "--http-host", default="127.0.0.1",
        help="bind address for the observability endpoint",
    )
    serve.add_argument(
        "--backend", choices=["memory", "sqlite"], default=None,
        help="storage backend (default: $REPRO_BACKEND or memory)",
    )
    serve.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="evaluation engine for the coordinator checker and the "
        "solver-pool workers (default: $REPRO_ENGINE or sync); with "
        "async, uncached status solves run on the server's event loop",
    )
    serve.add_argument("--assume-nonnegative-sums", action="store_true")
    serve.set_defaults(func=_cmd_serve)

    fabric = sub.add_parser(
        "fabric",
        help="run a shard fleet: one server subprocess per shard behind "
        "a routing front-end speaking the same wire protocol",
    )
    fabric.add_argument("database")
    fabric.add_argument("--host", default="127.0.0.1")
    fabric.add_argument("--port", type=int, default=7411)
    fabric.add_argument(
        "--shards", type=int, default=2,
        help="shard server subprocesses to spawn and route across",
    )
    fabric.add_argument(
        "--shard-pool-size", type=int, default=1,
        help="solver worker processes per shard subprocess (1 keeps "
        "each shard's solver sequential)",
    )
    fabric.add_argument(
        "--queue-limit", type=int, default=64,
        help="bounded solve queue on the router and on every shard",
    )
    fabric.add_argument(
        "--deadline", type=float, default=30.0,
        help="default per-request deadline in seconds",
    )
    fabric.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="how long graceful shutdown waits for in-flight checks",
    )
    fabric.add_argument(
        "--http-port", type=int, default=None,
        help="also serve GET /metrics, /healthz and /tracez over plain "
        "HTTP on this port (0 picks a free one; default: disabled)",
    )
    fabric.add_argument(
        "--http-host", default="127.0.0.1",
        help="bind address for the observability endpoint",
    )
    fabric.add_argument(
        "--backend", choices=["memory", "sqlite"], default=None,
        help="storage backend for the shard subprocesses",
    )
    fabric.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="evaluation engine for the shard subprocesses",
    )
    fabric.add_argument(
        "--journal-dir", default=None,
        help="directory for the durable write-ahead shard journal; "
        "enables crash recovery with --recover (default: in-memory "
        "journaling only)",
    )
    fabric.add_argument(
        "--fsync", choices=["always", "batch", "never"], default="batch",
        help="journal durability: fsync every record, every few records, "
        "or never (leave it to the OS)",
    )
    fabric.add_argument(
        "--recover", action="store_true",
        help="rebuild router state and shard fleet from --journal-dir "
        "after a crash (reaps orphaned shard processes first)",
    )
    fabric.add_argument(
        "--journal-max-ops", type=int, default=4096,
        help="compact a shard's journal (snapshot + truncate) once it "
        "holds more than this many records; 0 disables compaction",
    )
    fabric.add_argument(
        "--watchdog-interval", type=float, default=2.0,
        help="seconds between liveness-watchdog probes that proactively "
        "respawn dead shards; 0 disables the watchdog",
    )
    fabric.add_argument(
        "--watchdog-flap-limit", type=int, default=5,
        help="crashes within --watchdog-flap-window that circuit-break "
        "a shard instead of respawning it again",
    )
    fabric.add_argument(
        "--watchdog-flap-window", type=float, default=30.0,
        help="sliding window in seconds for flap detection",
    )
    fabric.set_defaults(func=_cmd_fabric)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_mode=args.log_json)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
