"""Hardness gadgets: constructive reductions behind the CoNP lower bounds.

Theorem 1.2 states that ``DCSat(Q+c, {key, ind})`` is CoNP-complete.
:mod:`repro.reductions.sat` builds the reduction witnessing hardness:
from any CNF formula, a blockchain database and a (fixed, constant-size)
positive conjunctive denial constraint such that the constraint is
satisfied iff the formula is unsatisfiable.  The test suite checks the
reduction against a brute-force SAT oracle, which simultaneously
exercises the solvers on adversarial instances.
"""

from repro.reductions.sat import (
    CnfFormula,
    brute_force_satisfiable,
    reduction_from_cnf,
)

__all__ = ["CnfFormula", "reduction_from_cnf", "brute_force_satisfiable"]
