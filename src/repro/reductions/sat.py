"""SAT → DCSat: the {key, ind} hardness gadget (Theorem 1.2 flavour).

Given a CNF formula φ over variables ``x1..xn`` with clauses ``c1..cm``,
build a blockchain database ``D`` and the fixed denial constraint

    ``q() <- Done(m)``

such that **D ⊭ ¬q iff φ is satisfiable**:

* Relations: ``Assign(var, value)`` with key ``var`` (a variable gets
  one truth value), ``Sat(clause)``, ``Done(marker)``.
* For each variable ``x`` two pending transactions ``x=true`` /
  ``x=false``; each inserts its ``Assign`` fact plus ``Sat(c)`` for
  every clause its literal satisfies.  The key on ``Assign`` makes the
  two conflict — at most one truth value per variable.
* One *collector* transaction inserts ``Done(marker)`` together with
  ``Clause(c)`` facts for every clause, under the inclusion dependency
  ``Clause[clause] ⊆ Sat[clause]`` — it can only be appended once every
  clause is satisfied.

A possible world containing the ``Done`` marker therefore encodes a
(partial, but clause-covering) assignment satisfying every clause, and
conversely any satisfying assignment yields such a world.  The query is
constant-size, as data complexity demands.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.blockchain_db import BlockchainDatabase
from repro.errors import ReproError
from repro.query.ast import Atom, ConjunctiveQuery, Constant
from repro.relational.constraints import ConstraintSet, InclusionDependency, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

#: A literal: (variable index, polarity); ``(3, False)`` means ``¬x3``.
Literal = tuple[int, bool]


@dataclass(frozen=True)
class CnfFormula:
    """A CNF formula: a tuple of clauses, each a tuple of literals."""

    clauses: tuple[tuple[Literal, ...], ...]

    def __post_init__(self):
        object.__setattr__(
            self,
            "clauses",
            tuple(tuple(clause) for clause in self.clauses),
        )
        for clause in self.clauses:
            if not clause:
                raise ReproError("empty clauses make the formula trivially unsat")

    @property
    def variables(self) -> tuple[int, ...]:
        return tuple(
            sorted({var for clause in self.clauses for var, _ in clause})
        )

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        return all(
            any(assignment.get(var, False) == polarity for var, polarity in clause)
            for clause in self.clauses
        )


def brute_force_satisfiable(formula: CnfFormula) -> bool:
    """The oracle: try every assignment (for test-sized formulas)."""
    variables = formula.variables
    for bits in itertools.product([False, True], repeat=len(variables)):
        if formula.evaluate(dict(zip(variables, bits))):
            return True
    return False


def reduction_from_cnf(
    formula: CnfFormula,
) -> tuple[BlockchainDatabase, ConjunctiveQuery]:
    """Build ``(D, q)`` with ``D |= ¬q`` iff *formula* is unsatisfiable."""
    schema = make_schema(
        {
            "Assign": ["var", "value"],
            "Sat": ["clause"],
            "Clause": ["clause"],
            "Done": ["marker"],
        }
    )
    constraints = ConstraintSet(
        schema,
        [
            Key("Assign", ["var"], schema),
            InclusionDependency("Clause", ["clause"], "Sat", ["clause"]),
        ],
    )
    current = Database(schema)

    transactions: list[Transaction] = []
    for var in formula.variables:
        for polarity in (True, False):
            facts: list[tuple[str, tuple]] = [("Assign", (var, int(polarity)))]
            for clause_index, clause in enumerate(formula.clauses):
                if (var, polarity) in clause:
                    facts.append(("Sat", (clause_index,)))
            suffix = "t" if polarity else "f"
            transactions.append(
                Transaction(facts, tx_id=f"x{var}={suffix}")
            )

    collector_facts: list[tuple[str, tuple]] = [("Done", (0,))]
    for clause_index in range(len(formula.clauses)):
        collector_facts.append(("Clause", (clause_index,)))
    transactions.append(Transaction(collector_facts, tx_id="collector"))

    db = BlockchainDatabase(current, constraints, transactions)
    query = ConjunctiveQuery([Atom("Done", (Constant(0),))], name="q_done")
    return db, query
