"""Repo-level pytest bootstrap: make ``src/`` importable even when the
package has not been pip-installed (offline environments)."""

import pathlib
import sys

_SRC = pathlib.Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
