"""The paper's motivating example (Section 1): a Bitcoin exchange
reissuing a stuck withdrawal.

Simulates the full story on the Bitcoin substrate:

1. The exchange pays a customer; fees spike and the withdrawal sits in
   the mempool.
2. The exchange wants to reissue.  A *dry run* of the double-payment
   denial constraint shows the naive reissue (from fresh coins) is
   unsafe — some possible world pays the customer twice.
3. The safe reissue is a fee bump spending the same inputs: the two
   versions contradict, so no world contains both.  The dry run now
   reports the constraint satisfied and the exchange broadcasts.

Run:  python examples/exchange_double_payment.py
"""

from repro.bitcoin import (
    Blockchain,
    KeyPair,
    Mempool,
    Miner,
    TxOutput,
    Wallet,
    to_blockchain_database,
)
from repro.bitcoin.relmap import combined_resolver, transaction_to_relational
from repro.bitcoin.transactions import COIN
from repro.core import DCSatChecker

exchange = Wallet(KeyPair.generate("exchange"), name="exchange")
customer = Wallet(KeyPair.generate("customer"), name="customer")
miner = Miner(KeyPair.generate("miner").public_key)


def double_payment_constraint() -> str:
    """No two different transactions may move exchange funds to the
    customer (Example 4's constraint, instantiated with real keys)."""
    return (
        f"q() <- TxIn(pt1, ps1, '{exchange.public_key}', a1, n1, sg1), "
        f"TxOut(n1, os1, '{customer.public_key}', b1), "
        f"TxIn(pt2, ps2, '{exchange.public_key}', a2, n2, sg2), "
        f"TxOut(n2, os2, '{customer.public_key}', b2), n1 != n2"
    )


def main() -> None:
    # -- Setup: the exchange holds two coins on-chain. ------------------
    chain = Blockchain()
    chain.append_genesis(
        [
            TxOutput(30 * COIN, exchange.script),
            TxOutput(15 * COIN, exchange.script),
        ]
    )
    print(f"Chain bootstrapped: exchange holds {exchange.balance(chain.utxos) / COIN} coins")

    # -- Step 1: the withdrawal is issued but not confirmed. ------------
    withdrawal = exchange.create_payment(
        chain.utxos, customer.public_key, 5 * COIN, fee=100
    )
    print(f"\nWithdrawal issued: {withdrawal.txid[:16]}... (fee 100, stuck)")

    db = to_blockchain_database(chain, [withdrawal])
    checker = DCSatChecker(db)
    constraint = double_payment_constraint()
    print(
        "Initial check: constraint "
        + ("SATISFIED" if checker.check(constraint).satisfied else "VIOLATED")
    )

    # -- Step 2: dry-run the naive reissue. ------------------------------
    naive_reissue = exchange.reissue_unsafe(
        chain.utxos, withdrawal, customer.public_key, 5 * COIN, fee=500
    )
    resolve = combined_resolver(chain, [withdrawal, naive_reissue])
    result = checker.dry_run(
        transaction_to_relational(naive_reissue, resolve), constraint
    )
    print(
        f"\nDry run, naive reissue {naive_reissue.txid[:16]}...: "
        + ("SAFE" if result.satisfied else "UNSAFE — a world pays twice!")
    )
    assert not result.satisfied

    # -- Step 3: dry-run the fee-bumped (conflicting) reissue. -----------
    bumped = exchange.bump_fee(chain.utxos, withdrawal, extra_fee=900)
    resolve = combined_resolver(chain, [withdrawal, bumped])
    result = checker.dry_run(
        transaction_to_relational(bumped, resolve), constraint
    )
    print(
        f"Dry run, fee-bumped reissue {bumped.txid[:16]}...: "
        + ("SAFE — conflicts with the original" if result.satisfied else "UNSAFE")
    )
    assert result.satisfied

    # -- Step 4: broadcast the safe version; a miner picks one. ----------
    pool = Mempool(allow_conflicts=True)  # the network-wide view
    pool.add(withdrawal, chain)
    pool.add(bumped, chain)
    block = miner.mine(pool, chain)
    confirmed = {tx.txid for tx in block.transactions}
    winner = "fee-bumped" if bumped.txid in confirmed else "original"
    print(f"\nMiner confirmed the {winner} withdrawal (higher feerate wins).")
    paid = sum(
        output.value
        for tx in block.transactions
        for output in tx.outputs
        if output.script.owner == customer.public_key
    )
    print(f"Customer received {paid / COIN} coins — exactly once.")
    assert paid == 5 * COIN


if __name__ == "__main__":
    main()
