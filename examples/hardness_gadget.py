"""Why DCSat is CoNP-complete: the SAT reduction, live.

Theorem 1 places denial-constraint satisfaction with keys *and*
inclusion dependencies in CoNP-complete territory.  This example builds
the witnessing gadget for a concrete formula and lets the DCSat solvers
decide satisfiability:

* each propositional variable becomes a *pair of contradicting pending
  transactions* (the key on ``Assign`` admits one truth value);
* each literal transaction also inserts ``Sat(c)`` facts for the clauses
  it satisfies;
* a *collector* transaction carries ``Done`` plus one ``Clause(c)`` fact
  per clause under ``Clause[clause] ⊆ Sat[clause]`` — it can only be
  appended once every clause is witnessed.

``D |= ¬(q() <- Done(0))`` therefore holds iff the formula is
UNSATISFIABLE: the solvers are deciding SAT.

Run:  python examples/hardness_gadget.py
"""

from repro.core import DCSatChecker
from repro.core.possible_worlds import enumerate_possible_worlds
from repro.reductions import (
    CnfFormula,
    brute_force_satisfiable,
    reduction_from_cnf,
)

#: (x1 ∨ ¬x2) ∧ (x2 ∨ x3) ∧ (¬x1 ∨ ¬x3) — satisfiable (e.g. x1, x2, ¬x3)
SATISFIABLE = CnfFormula(
    (
        ((1, True), (2, False)),
        ((2, True), (3, True)),
        ((1, False), (3, False)),
    )
)

#: x1 ∧ ¬x1 spread over three clauses via x2 — unsatisfiable.
UNSATISFIABLE = CnfFormula(
    (
        ((1, True), (2, True)),
        ((1, True), (2, False)),
        ((1, False),),
    )
)


def analyze(label: str, formula: CnfFormula) -> None:
    print(f"\n=== {label} ===")
    clauses = " ∧ ".join(
        "(" + " ∨ ".join(
            ("" if polarity else "¬") + f"x{var}" for var, polarity in clause
        ) + ")"
        for clause in formula.clauses
    )
    print(f"φ = {clauses}")
    print(f"SAT oracle: {'satisfiable' if brute_force_satisfiable(formula) else 'UNSAT'}")

    db, query = reduction_from_cnf(formula)
    print(
        f"gadget: {len(db.pending)} pending transactions "
        f"({len(formula.variables)} variable pairs + collector), "
        f"constraint q = {query}"
    )

    worlds = list(enumerate_possible_worlds(db))
    done_worlds = [w for w in worlds if "collector" in w]
    print(f"possible worlds: {len(worlds)}, containing Done: {len(done_worlds)}")
    if done_worlds:
        witness = min(done_worlds, key=len)
        assignment = sorted(t for t in witness if t != "collector")
        print(f"smallest satisfying world encodes the assignment {assignment}")

    checker = DCSatChecker(db)
    for algorithm in ("naive", "assign", "brute"):
        result = checker.check(query, algorithm=algorithm)
        verdict = "UNSAT (constraint satisfied)" if result.satisfied else "SAT (constraint violated)"
        print(f"  DCSat[{algorithm:>6}] says: {verdict}")
        assert result.satisfied == (not brute_force_satisfiable(formula))


def main() -> None:
    print("Deciding SAT with a blockchain database (Theorem 1.2 gadget)")
    analyze("satisfiable formula", SATISFIABLE)
    analyze("unsatisfiable formula", UNSATISFIABLE)
    print(
        "\nBoth answers match the oracle — the reduction is faithful, and\n"
        "this is exactly why no polynomial algorithm can exist for the\n"
        "full {key, ind} fragment (unless P = NP)."
    )


if __name__ == "__main__":
    main()
