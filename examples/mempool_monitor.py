"""A steady-state node: blocks arrive, the mempool churns, and the
DCSat engine maintains its precomputed structures incrementally
(Section 6.3) while estimating violation likelihoods (future work §8).

The simulation runs a three-node network.  One node hosts the
:class:`DCSatChecker`; every broadcast updates the checker via
``issue`` and every mined block via ``commit``/``forget``, so the
fd-transaction graph and Θ_I index never need rebuilding from scratch.

Run:  python examples/mempool_monitor.py
"""

import random

from repro.bitcoin import (
    KeyPair,
    Miner,
    Network,
    Node,
    TxOutput,
    Wallet,
    to_blockchain_database,
)
from repro.bitcoin.relmap import combined_resolver, transaction_to_relational
from repro.bitcoin.transactions import COIN
from repro.core import DCSatChecker
from repro.errors import ChainValidationError
from repro.likelihood import estimate_violation_probability, feerate_inclusion_model
from repro.workloads.queries import aggregate_constraint

rng = random.Random(2020)
wallets = [Wallet(KeyPair.generate(f"user{i}"), name=f"user{i}") for i in range(6)]
watched = wallets[3]  # the account our denial constraint watches


def build_network() -> Network:
    network = Network()
    for index in range(3):
        network.add_node(
            Node(
                f"node{index}",
                allow_conflicts=False,
                miner=Miner(KeyPair.generate("miner").public_key)
                if index == 0
                else None,
            )
        )
    first = next(iter(network.nodes.values()))
    genesis = first.chain.append_genesis(
        [TxOutput(8 * COIN, w.script) for w in wallets]
    )
    for node in list(network.nodes.values())[1:]:
        node.chain.append_block(genesis)
    return network


def random_payment(network: Network):
    node = network.nodes["node0"]
    view = node.mempool.extended_utxos(node.chain)
    exclude = node.mempool.spent_outpoints()
    payer = rng.choice(wallets)
    payee = rng.choice([w for w in wallets if w is not payer])
    balance = sum(o.value for _, o in payer.spendable(view, exclude))
    if balance < 10_000:
        return None
    amount = rng.randint(1000, balance // 3)
    fee = rng.randint(50, 5000)
    try:
        return payer.create_payment(view, payee.public_key, amount, fee, exclude=exclude)
    except ChainValidationError:
        return None


def main() -> None:
    network = build_network()
    node = network.nodes["node0"]

    db = to_blockchain_database(node.chain, [])
    checker = DCSatChecker(db, assume_nonnegative_sums=True)
    # Denial constraint: the watched account never accumulates 20+ coins.
    constraint = aggregate_constraint(watched.public_key, 20 * COIN)
    print(f"Watching: {watched.name} must never reach 20 coins\n")

    for round_index in range(1, 6):
        # --- Mempool churn: new payments gossip through the network. ---
        arrivals = 0
        for _ in range(6):
            tx = random_payment(network)
            if tx is None:
                continue
            accepted = network.broadcast_transaction(tx)
            if accepted["node0"]:
                resolve = combined_resolver(
                    node.chain, list(node.mempool) + [tx]
                )
                checker.issue(transaction_to_relational(tx, resolve))
                arrivals += 1

        result = checker.check(constraint, algorithm="naive")
        feerates = {
            tx.txid: node.mempool.feerate(tx.txid) for tx in node.mempool
        }
        risk = "n/a"
        if feerates and not result.satisfied:
            model = feerate_inclusion_model(feerates)
            estimate = estimate_violation_probability(
                checker.db, constraint, model, samples=300, seed=round_index
            )
            risk = f"{estimate.probability:.1%} ± {1.96 * estimate.stderr:.1%}"
        print(
            f"round {round_index}: +{arrivals} pending "
            f"(total {len(checker.db.pending_ids)}), constraint "
            f"{'SATISFIED' if result.satisfied else 'VIOLABLE'}, "
            f"P(violation) = {risk}"
        )

        # --- A block is mined; sync the checker with reality. ----------
        block = network.mine_block("node0")
        confirmed = {tx.txid for tx in block.transactions}
        for tx_id in list(checker.db.pending_ids):
            if tx_id in confirmed:
                checker.commit(tx_id)
            elif tx_id not in node.mempool:
                checker.forget(tx_id)  # evicted (conflict confirmed)
        # The coinbase was never pending: absorb its rows directly.
        from repro.bitcoin.relmap import chain_resolver

        checker.absorb(
            transaction_to_relational(block.coinbase, chain_resolver(node.chain))
        )
        print(
            f"         block {block.height} confirmed "
            f"{len(block.transactions) - 1} txs; "
            f"fd-graph: {checker.fd_graph}"
        )

    final = checker.check(constraint, algorithm="naive")
    print(
        f"\nFinal state: constraint "
        f"{'SATISFIED' if final.satisfied else 'VIOLABLE'} with "
        f"{len(checker.db.pending_ids)} pending transactions."
    )


if __name__ == "__main__":
    main()
