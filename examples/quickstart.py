"""Quickstart: the paper's running example, end to end.

Builds the blockchain database of Figure 2 (the simplified Bitcoin
schema of Example 1 with pending transactions T1–T5), enumerates its
possible worlds (Example 3), and checks denial constraints with every
solver — including Example 4's "did I pay twice?" constraint.

Run:  python examples/quickstart.py
"""

from repro import (
    BlockchainDatabase,
    ConstraintSet,
    Database,
    DCSatChecker,
    InclusionDependency,
    Key,
    Transaction,
    enumerate_possible_worlds,
    make_schema,
)


def build_figure2() -> BlockchainDatabase:
    """The blockchain database D = (R, I, T) of Figure 2."""
    schema = make_schema(
        {
            "TxOut": ["txId", "ser", "pk", "amount"],
            "TxIn": ["prevTxId", "prevSer", "pk", "amount", "newTxId", "sig"],
        }
    )
    constraints = ConstraintSet(
        schema,
        [
            Key("TxOut", ["txId", "ser"], schema),
            Key("TxIn", ["prevTxId", "prevSer"], schema),
            InclusionDependency(
                "TxIn",
                ["prevTxId", "prevSer", "pk", "amount"],
                "TxOut",
                ["txId", "ser", "pk", "amount"],
            ),
            InclusionDependency("TxIn", ["newTxId"], "TxOut", ["txId"]),
        ],
    )
    current = Database.from_dict(
        schema,
        {
            "TxOut": [
                (1, 1, "U1Pk", 1.0),
                (2, 1, "U1Pk", 1.0),
                (2, 2, "U2Pk", 4.0),
                (3, 1, "U3Pk", 1.0),
                (3, 2, "U4Pk", 0.5),
                (3, 3, "U1Pk", 0.5),
            ],
            "TxIn": [
                (1, 1, "U1Pk", 1.0, 3, "U1Sig"),
                (2, 1, "U1Pk", 1.0, 3, "U1Sig"),
            ],
        },
    )
    pending = [
        Transaction(
            {
                "TxIn": [(2, 2, "U2Pk", 4.0, 4, "U2Sig")],
                "TxOut": [(4, 1, "U5Pk", 1.0), (4, 2, "U2Pk", 3.0)],
            },
            tx_id="T1",
        ),
        Transaction(
            {
                "TxIn": [(4, 2, "U2Pk", 3.0, 5, "U2Sig")],
                "TxOut": [(5, 1, "U4Pk", 3.0)],
            },
            tx_id="T2",
        ),
        Transaction(
            {
                "TxIn": [(3, 3, "U1Pk", 0.5, 6, "U1Sig")],
                "TxOut": [(6, 1, "U4Pk", 0.5)],
            },
            tx_id="T3",
        ),
        Transaction(
            {
                "TxIn": [
                    (6, 1, "U4Pk", 0.5, 7, "U4Sig"),
                    (5, 1, "U4Pk", 3.0, 7, "U4Sig"),
                ],
                "TxOut": [(7, 1, "U7Pk", 2.5), (7, 2, "U8Pk", 1.0)],
            },
            tx_id="T4",
        ),
        Transaction(
            {
                "TxIn": [(2, 2, "U2Pk", 4.0, 8, "U2Sig")],
                "TxOut": [(8, 1, "U7Pk", 4.0)],
            },
            tx_id="T5",
        ),
    ]
    return BlockchainDatabase(current, constraints, pending)


def main() -> None:
    db = build_figure2()
    print(f"Blockchain database: {db}")

    # Example 3: the nine possible worlds.
    print("\nPossible worlds (Example 3):")
    for world in sorted(
        enumerate_possible_worlds(db), key=lambda w: (len(w), sorted(w))
    ):
        label = " ∪ ".join(sorted(world)) if world else "(current state only)"
        print(f"  R ∪ {{{label}}}" if world else f"  R {label}")

    checker = DCSatChecker(db, assume_nonnegative_sums=True)

    # Example 6/8: can U8Pk ever receive bitcoins?
    qs = "qs() <- TxOut(ntx, s, 'U8Pk', a)"
    for algorithm in ("naive", "opt", "assign"):
        result = checker.check(qs, algorithm=algorithm)
        status = "SATISFIED" if result.satisfied else "VIOLATED"
        print(
            f"\n[{algorithm:>6}] {qs}\n         -> {status}"
            + (f" by world {sorted(result.witness)}" if result.witness else "")
            + f" ({result.stats.worlds_checked} worlds checked)"
        )

    # Example 4 flavour: does any world transfer U2Pk's money to U7Pk
    # twice, under two different transactions?
    double_pay = (
        "q1() <- TxIn(pt1, ps1, 'U2Pk', a1, n1, 'U2Sig'), "
        "TxOut(n1, s1, 'U7Pk', b1), "
        "TxIn(pt2, ps2, 'U2Pk', a2, n2, 'U2Sig'), "
        "TxOut(n2, s2, 'U7Pk', b2), n1 != n2"
    )
    result = checker.check(double_pay)
    print(
        f"\nDouble-payment denial constraint: "
        f"{'SATISFIED — safe' if result.satisfied else 'VIOLATED — unsafe'}"
    )

    # An aggregate constraint: U7Pk must never receive 6+ coins in total.
    qa = "[qa(sum(a)) <- TxOut(t, s, 'U7Pk', a)] >= 6"
    result = checker.check(qa, algorithm="naive")
    print(
        f"Aggregate constraint (U7Pk total < 6): "
        f"{'SATISFIED — safe' if result.satisfied else 'VIOLATED'}"
        " (T4's 2.5 and T5's 4.0 can never coexist)"
    )


if __name__ == "__main__":
    main()
