"""A non-currency blockchain database: tracking goods in a supply chain.

The paper's model is protocol-independent — any append-only ledger with
integrity constraints fits.  Here a consortium chain tracks crates of
pharmaceuticals:

* ``Asset(assetId, product)``            — registered crates,
* ``Custody(assetId, step, holder)``     — the custody chain per crate,
* ``Certified(holder)``                  — accredited facilities.

Constraints:

* key ``Custody(assetId, step)``         — one holder per step: two
  pending hand-overs for the same step *contradict* (the supply-chain
  analogue of a double spend);
* ``Custody[assetId] ⊆ Asset[assetId]``  — no custody for unregistered
  crates (a dependency between pending registrations and hand-overs).

Denial constraints then answer questions like "can this crate ever end
up at two different step-3 facilities?" or "can an uncertified facility
ever hold it?" *before* submitting a hand-over.

Run:  python examples/supply_chain.py
"""

from repro import (
    BlockchainDatabase,
    ConstraintSet,
    Database,
    DCSatChecker,
    InclusionDependency,
    Key,
    Transaction,
    make_schema,
)
from repro.core.contradiction import contradicting_transaction


def build_ledger() -> BlockchainDatabase:
    schema = make_schema(
        {
            "Asset": ["assetId", "product"],
            "Custody": ["assetId", "step", "holder"],
            "Certified": ["holder"],
        }
    )
    constraints = ConstraintSet(
        schema,
        [
            Key("Custody", ["assetId", "step"], schema),
            InclusionDependency("Custody", ["assetId"], "Asset", ["assetId"]),
        ],
    )
    committed = Database.from_dict(
        schema,
        {
            "Asset": [("crate-1", "vaccine"), ("crate-2", "insulin")],
            "Custody": [
                ("crate-1", 1, "factory"),
                ("crate-1", 2, "carrier-A"),
                ("crate-2", 1, "factory"),
            ],
            "Certified": [("factory",), ("carrier-A",), ("pharmacy",)],
        },
    )
    pending = [
        # Two competing hand-overs for crate-1's step 3: they contradict.
        Transaction({"Custody": [("crate-1", 3, "pharmacy")]}, tx_id="H1"),
        Transaction({"Custody": [("crate-1", 3, "gray-market")]}, tx_id="H2"),
        # A new crate registration and a hand-over depending on it.
        Transaction({"Asset": [("crate-3", "antibiotics")]}, tx_id="REG3"),
        Transaction({"Custody": [("crate-3", 1, "factory")]}, tx_id="H3"),
    ]
    return BlockchainDatabase(committed, constraints, pending)


def main() -> None:
    db = build_ledger()
    checker = DCSatChecker(db)
    print(f"Supply-chain ledger: {db}")

    # Q1: can crate-1 end up at the gray market?
    q1 = "q() <- Custody('crate-1', s, 'gray-market')"
    result = checker.check(q1)
    print(
        f"\n[Q1] crate-1 reaches the gray market: "
        + ("impossible" if result.satisfied else f"POSSIBLE via {sorted(result.witness)}")
    )

    # Q2: can any crate be held by an uncertified facility?  (negation)
    q2 = "q() <- Custody(a, s, h), not Certified(h)"
    result = checker.check(q2)  # auto-falls back to brute force
    print(
        f"[Q2] some crate held by an uncertified facility: "
        + ("impossible" if result.satisfied else f"POSSIBLE via {sorted(result.witness)}")
    )

    # Q3: could custody of crate-3 begin before registration?  Never —
    # the inclusion dependency orders the transactions.
    q3 = "q() <- Custody('crate-3', s, h), not Asset('crate-3', 'antibiotics')"
    result = checker.check(q3)
    print(
        f"[Q3] crate-3 custody without registration: "
        + ("impossible" if result.satisfied else "POSSIBLE")
    )

    # Q4: the double-custody constraint — two holders at the same step.
    q4 = (
        "q() <- Custody(a, s, h1), Custody(a, s, h2), h1 != h2"
    )
    result = checker.check(q4)
    print(
        f"[Q4] two holders at the same step: "
        + ("impossible (the key constraint rules it out)" if result.satisfied else "POSSIBLE")
    )

    # Finally: derive the transaction that *blocks* the gray-market
    # hand-over — the future-work feature.  Issuing a contradicting
    # hand-over (same key, different holder) makes H2 unconfirmable
    # alongside it.
    blocker = contradicting_transaction(
        db, db.transaction("H2"), tx_id="BLOCK-H2"
    )
    print(f"\nDerived blocker for H2: {sorted(blocker.facts)}")
    checker.issue(blocker)
    # H2 may still win the race, but H2 *and* the pharmacy hand-over can
    # now never both be stranded: exactly one of the step-3 custodians
    # confirms.
    from repro.core.possible_worlds import enumerate_possible_worlds

    assert not any(
        {"H2", "BLOCK-H2"} <= world for world in enumerate_possible_worlds(db)
    )
    print("No possible world contains both H2 and its blocker — verified.")


if __name__ == "__main__":
    main()
