"""Weighted possible worlds: models and violation-probability estimation."""

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.errors import ReproError
from repro.likelihood import (
    UniformInclusion,
    estimate_violation_probability,
    exact_violation_probability,
    feerate_inclusion_model,
)
from repro.likelihood.model import MappingInclusion, model_from_callable
from repro.query.parser import parse_query
from repro.relational.constraints import ConstraintSet, Key
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction


def _single_tx_db() -> BlockchainDatabase:
    schema = make_schema({"R": ["a", "b"]})
    constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
    return BlockchainDatabase(
        Database.from_dict(schema, {"R": []}),
        constraints,
        [Transaction({"R": [(1, "x")]}, tx_id="T1")],
    )


def _conflict_db() -> BlockchainDatabase:
    schema = make_schema({"R": ["a", "b"]})
    constraints = ConstraintSet(schema, [Key("R", ["a"], schema)])
    return BlockchainDatabase(
        Database.from_dict(schema, {"R": []}),
        constraints,
        [
            Transaction({"R": [(1, "x")]}, tx_id="T1"),
            Transaction({"R": [(1, "y")]}, tx_id="T2"),
        ],
    )


class TestModels:
    def test_uniform_bounds(self):
        assert UniformInclusion(0.3).probability("any") == 0.3
        with pytest.raises(ReproError):
            UniformInclusion(1.5)

    def test_mapping_model(self):
        model = MappingInclusion({"a": 0.9}, default=0.1)
        assert model.probability("a") == 0.9
        assert model.probability("zz") == 0.1
        with pytest.raises(ReproError):
            MappingInclusion({"a": 2.0})

    def test_feerate_model_monotone_in_feerate(self):
        model = feerate_inclusion_model({"slow": 1.0, "mid": 5.0, "fast": 50.0})
        assert (
            model.probability("slow")
            < model.probability("mid")
            <= model.probability("fast")
        )

    def test_feerate_model_needs_data(self):
        with pytest.raises(ReproError):
            feerate_inclusion_model({})

    def test_callable_adapter(self):
        model = model_from_callable(lambda tx_id: 0.25)
        assert model.probability("x") == 0.25


class TestExact:
    def test_single_transaction_probability_is_p(self):
        db = _single_tx_db()
        q = parse_query("q() <- R(1, 'x')")
        estimate = exact_violation_probability(db, q, UniformInclusion(0.3))
        assert estimate.probability == pytest.approx(0.3)

    def test_conflicting_pair_order_resolution(self):
        # q matches T1's fact only.  T1 enters unless T2 beat it: with
        # both offered (p^2) T1 wins half the orders.
        db = _conflict_db()
        q = parse_query("q() <- R(1, 'x')")
        p = 0.5
        estimate = exact_violation_probability(db, q, UniformInclusion(p))
        expected = p * (1 - p) + p * p * 0.5
        assert estimate.probability == pytest.approx(expected)

    def test_certain_violation(self):
        db = _single_tx_db()
        db.current.insert("R", (9, "committed"))
        q = parse_query("q() <- R(9, 'committed')")
        estimate = exact_violation_probability(db, q, UniformInclusion(0.0))
        assert estimate.probability == pytest.approx(1.0)

    def test_limit_guard(self):
        db = _single_tx_db()
        q = parse_query("q() <- R(1, 'x')")
        with pytest.raises(ReproError):
            exact_violation_probability(
                db, q, UniformInclusion(0.5), pending_limit=0
            )


class TestMonteCarlo:
    def test_matches_exact(self):
        db = _conflict_db()
        q = parse_query("q() <- R(1, 'x')")
        exact = exact_violation_probability(db, q, UniformInclusion(0.5))
        mc = estimate_violation_probability(
            db, q, UniformInclusion(0.5), samples=4000, seed=7
        )
        assert abs(mc.probability - exact.probability) < 4 * mc.stderr + 0.01

    def test_seeded_reproducibility(self):
        db = _conflict_db()
        q = parse_query("q() <- R(1, 'x')")
        a = estimate_violation_probability(db, q, UniformInclusion(0.5), seed=1)
        b = estimate_violation_probability(db, q, UniformInclusion(0.5), seed=1)
        assert a.probability == b.probability

    def test_sample_validation(self):
        db = _single_tx_db()
        q = parse_query("q() <- R(1, 'x')")
        with pytest.raises(ReproError):
            estimate_violation_probability(db, q, UniformInclusion(0.5), samples=0)

    def test_confidence_interval(self):
        db = _single_tx_db()
        q = parse_query("q() <- R(1, 'x')")
        estimate = estimate_violation_probability(
            db, q, UniformInclusion(0.5), samples=500, seed=2
        )
        low, high = estimate.confidence_interval()
        assert 0.0 <= low <= estimate.probability <= high <= 1.0


class TestRelationshipToDCSat:
    def test_dcsat_satisfied_implies_zero_probability(self):
        db = _conflict_db()
        q = parse_query("q() <- R(1, 'x'), R(1, 'y')")  # needs both: never
        estimate = exact_violation_probability(db, q, UniformInclusion(0.9))
        assert estimate.probability == 0.0
        from repro.core.checker import DCSatChecker

        assert DCSatChecker(db).check(q).satisfied

    def test_dcsat_violated_implies_positive_probability(self):
        db = _single_tx_db()
        q = parse_query("q() <- R(1, 'x')")
        from repro.core.checker import DCSatChecker

        assert not DCSatChecker(db).check(q).satisfied
        estimate = exact_violation_probability(db, q, UniformInclusion(0.5))
        assert estimate.probability > 0.0
