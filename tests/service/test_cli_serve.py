"""End-to-end ``repro serve``: a real subprocess, a real socket, and a
SIGINT that must drain cleanly (exit 0, "stopped (drained)" on stdout).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro import serialize
from repro.relational.transaction import Transaction
from repro.service.client import ServiceClient
from tests.service.conftest import Q_CONFLICT, Q_TWO_A, component_db


@pytest.fixture(scope="module")
def db_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "chain.json"
    serialize.dump(component_db(components=3), str(path))
    return str(path)


def start_server(db_path, *extra_args):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            db_path,
            "--port",
            "0",
            "--pool-size",
            "2",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        # Own process group: the pool's fork workers inherit the stdout
        # pipe, so cleanup must be able to kill the whole group or a
        # failed assertion would hang communicate() forever.
        start_new_session=True,
    )
    banner = process.stdout.readline()
    if not banner:
        kill_group(process)
        raise AssertionError(f"no banner; stderr: {process.stderr.read()}")
    # "repro-service listening on 127.0.0.1:PORT (pool=2 workers, ...)"
    assert "repro-service listening on " in banner
    address = banner.split("listening on ", 1)[1].split(" ", 1)[0]
    host, port = address.rsplit(":", 1)
    return process, host, int(port)


def kill_group(process):
    try:
        os.killpg(process.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    process.wait(timeout=10)


def test_serve_round_trip_and_sigint_drain(db_path):
    process, host, port = start_server(db_path)
    try:
        with ServiceClient(host, port) as client:
            assert client.ping()["pong"] is True
            client.register("conflict", Q_CONFLICT)
            client.register("two-a", Q_TWO_A)
            assert client.status("conflict")["satisfied"] is True
            assert client.status("two-a")["satisfied"] is False
            invalidated = client.issue(
                Transaction({"R": [(0, 9, "a")]}, tx_id="NEW")
            )
            assert sorted(invalidated) == ["conflict", "two-a"]
            client.status("conflict")  # re-warm one cached verdict
            assert client.commit("NEW") == ["conflict"]
            text = client.metrics_text()
            assert 'repro_requests_total{op="register"} 2' in text
            assert "repro_registered_constraints 2" in text

        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
        assert "repro-service stopped (drained)" in stdout
    finally:
        if process.poll() is None:
            kill_group(process)


@pytest.fixture(scope="module")
def two_relation_db_path(tmp_path_factory):
    from repro.core.blockchain_db import BlockchainDatabase
    from repro.relational.constraints import ConstraintSet, FunctionalDependency
    from repro.relational.database import Database, make_schema

    schema = make_schema({"R": ["cid", "k", "v"], "S": ["x"]})
    constraints = ConstraintSet(
        schema, [FunctionalDependency("R", ["cid", "k"], ["v"])]
    )
    db = BlockchainDatabase(
        Database.from_dict(schema, {"R": [], "S": []}), constraints
    )
    path = tmp_path_factory.mktemp("serve-sharded") / "chain.json"
    serialize.dump(db, str(path))
    return str(path)


def test_serve_sharded_round_trip(two_relation_db_path):
    # --pool-size 1 (overriding start_server's default 2) keeps each
    # shard on a plain sequential checker: no fork workers to manage.
    process, host, port = start_server(
        two_relation_db_path, "--shards", "2", "--pool-size", "1"
    )
    try:
        with ServiceClient(host, port) as client:
            assert client.ping()["pong"] is True
            described = client.shards()
            assert described["sharded"] is True
            assert described["shards"] == 2

            client.register("conflict", Q_CONFLICT)
            client.register("quiet-s", "q() <- S('boom')")
            assert client.status("conflict")["satisfied"] is True
            assert client.status("quiet-s")["satisfied"] is True
            assert client.issue(
                Transaction({"S": [("boom",)]}, tx_id="T-S")
            ) == ["quiet-s"]
            assert client.status("quiet-s")["satisfied"] is False
            assert client.commit("T-S") == ["quiet-s"]
            assert client.absorb(
                Transaction({"R": [(1, 1, "a")]}, tx_id="ABS")
            ) == ["conflict"]
            text = client.metrics_text()
            assert 'repro_shard_constraints{shard="0"} 1' in text
            assert 'repro_shard_constraints{shard="1"} 1' in text

        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
        assert "repro-service stopped (drained)" in stdout
    finally:
        if process.poll() is None:
            kill_group(process)


def test_serve_sigint_with_request_in_flight(db_path):
    process, host, port = start_server(db_path, "--deadline", "60")
    try:
        with ServiceClient(host, port) as client:
            client.register("conflict", Q_CONFLICT)
            # Interrupt while the connection is open and a verdict was
            # just served: the drain must still complete promptly.
            assert client.status("conflict")["satisfied"] is True
            process.send_signal(signal.SIGINT)
            deadline = time.time() + 30
            while process.poll() is None and time.time() < deadline:
                time.sleep(0.05)
        stdout, stderr = process.communicate(timeout=30)
        assert process.returncode == 0, stderr
        assert "stopped (drained)" in stdout
    finally:
        if process.poll() is None:
            kill_group(process)
