"""Shared service-test fixtures: a small multi-component workload.

The synthetic schema is one relation ``R(cid, k, v)`` with the FD
``(cid, k) -> v``.  Per component *cid* and key *k* there are two
pending transactions writing conflicting values ``'a'`` / ``'b'``, so
each component contributes ``2^keys`` maximal cliques and the query
``q() <- R(c, k, 'a'), R(c, k, 'b')`` can never be satisfied (the FD
keeps the two values out of every possible world) — the worst case for
the solvers and the best case for observing real per-component work.
"""

from __future__ import annotations

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.relational.constraints import ConstraintSet, FunctionalDependency
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction

#: Satisfied on the component workload (needs 'a' and 'b' on one key).
Q_CONFLICT = "q() <- R(c, k, 'a'), R(c, k, 'b')"
#: Violated (two 'a' facts on different keys coexist fine).
Q_TWO_A = "q() <- R(c, k1, 'a'), R(c, k2, 'a'), k1 != k2"
#: Decided by the monotone short-circuit (no 'zz' anywhere).
Q_ABSENT = "q() <- R(c, k, 'zz')"


def component_db(components: int = 4, keys: int = 2) -> BlockchainDatabase:
    schema = make_schema({"R": ["cid", "k", "v"]})
    constraints = ConstraintSet(
        schema, [FunctionalDependency("R", ["cid", "k"], ["v"])]
    )
    state = Database.from_dict(schema, {"R": []})
    pending = []
    for cid in range(components):
        for key in range(keys):
            pending.append(
                Transaction({"R": [(cid, key, "a")]}, tx_id=f"C{cid}K{key}a")
            )
            pending.append(
                Transaction({"R": [(cid, key, "b")]}, tx_id=f"C{cid}K{key}b")
            )
    return BlockchainDatabase(state, constraints, pending)


def r_tx(tx_id: str, cid: int, key: int, value: str) -> Transaction:
    return Transaction({"R": [(cid, key, value)]}, tx_id=tx_id)


@pytest.fixture
def small_db() -> BlockchainDatabase:
    return component_db(components=4, keys=2)
