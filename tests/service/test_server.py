"""Client/server round trips, targeted invalidation, subsumption, and
the failure modes the protocol promises: deadlines, backpressure, and
graceful shutdown that drains in-flight work.

Interleavings are made deterministic by driving every mutation through
the server's single solver thread and, where timing matters, by
injecting a ``before_op`` hook that slows the solver down on cue.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.blockchain_db import BlockchainDatabase
from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.errors import ServiceError
from repro.relational.constraints import ConstraintSet, FunctionalDependency
from repro.relational.database import Database, make_schema
from repro.relational.transaction import Transaction
from repro.service.client import ServiceClient
from repro.service.metrics import MetricsRegistry
from repro.service.server import ConstraintService, serve_in_thread

Q_R_CONFLICT = "q() <- R(c, k, 'a'), R(c, k, 'b')"
Q_R_TWO_A = "q() <- R(c, k1, 'a'), R(c, k2, 'a'), k1 != k2"
Q_R_ABSENT = "q() <- R(c, k, 'zz')"
Q_R_ABSENT_SPECIFIC = "q() <- R(c, 5, 'zz')"
Q_S_BOOM = "q() <- S('boom')"


def two_relation_db() -> BlockchainDatabase:
    schema = make_schema({"R": ["cid", "k", "v"], "S": ["x"]})
    constraints = ConstraintSet(
        schema, [FunctionalDependency("R", ["cid", "k"], ["v"])]
    )
    state = Database.from_dict(schema, {"R": [], "S": []})
    pending = [
        Transaction({"R": [(0, 0, "a")]}, tx_id="R00a"),
        Transaction({"R": [(0, 0, "b")]}, tx_id="R00b"),
        Transaction({"R": [(0, 1, "a")]}, tx_id="R01a"),
        Transaction({"S": [("quiet",)]}, tx_id="S0"),
    ]
    return BlockchainDatabase(state, constraints, pending)


def running_service(before_op=None, **service_kwargs):
    checker = DCSatChecker(two_relation_db())
    monitor = ConstraintMonitor(checker)
    service = ConstraintService(
        monitor,
        metrics=MetricsRegistry(),
        before_op=before_op,
        **service_kwargs,
    )
    handle = serve_in_thread(service)
    return checker, service, handle


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def server(self):
        checker, service, handle = running_service()
        yield handle
        handle.stop()
        checker.close()

    @pytest.fixture()
    def client(self, server):
        with ServiceClient(server.host, server.port) as client:
            yield client
            for name in list(client.constraints()):
                client.unregister(name)

    def test_ping(self, client):
        assert client.ping()["pong"] is True

    def test_register_status_and_cache(self, client):
        relations = client.register("conflict", Q_R_CONFLICT)["relations"]
        assert relations == ["R"]
        first = client.status("conflict")
        assert first["satisfied"] is True
        assert first["cached"] is False
        second = client.status("conflict")
        assert second["satisfied"] is True
        assert second["cached"] is True
        client.unregister("conflict")

    def test_violated_reports_witness(self, client):
        client.register("two-a", Q_R_TWO_A)
        violated = client.violated()
        assert set(violated) == {"two-a"}
        assert violated["two-a"]["witness"] == ["R00a", "R01a"]

    def test_issue_invalidates_only_touching_constraints(self, client):
        client.register("on-r", Q_R_CONFLICT)
        client.register("on-s", Q_S_BOOM)
        client.status_all()  # warm both cached verdicts

        invalidated = client.issue(
            Transaction({"R": [(7, 7, "a")]}, tx_id="T-R")
        )
        assert invalidated == ["on-r"]
        assert client.status("on-s")["cached"] is True
        assert client.status("on-r")["cached"] is False

        client.status_all()
        invalidated = client.issue(Transaction({"S": [("boom",)]}, tx_id="T-S"))
        assert invalidated == ["on-s"]
        assert client.status("on-s")["satisfied"] is False

        # commit / forget invalidate with the same targeting
        client.status_all()
        assert client.forget("T-S") == ["on-s"]
        client.status_all()
        assert client.commit("T-R") == ["on-r"]
        client.unregister("on-r")
        client.unregister("on-s")

    def test_subsumption_answers_through_server(self, client):
        client.register("absent-gen", Q_R_ABSENT)
        assert client.status("absent-gen")["satisfied"] is True
        client.register("absent-spec", Q_R_ABSENT_SPECIFIC)
        verdict = client.status("absent-spec")
        assert verdict["satisfied"] is True
        assert verdict["stats"]["algorithm"] == "subsumed-by:absent-gen"
        text = client.metrics_text()
        assert "repro_monitor_subsumption_answers_total 1" in text
        client.unregister("absent-gen")
        client.unregister("absent-spec")

    def test_constraints_listing(self, client):
        client.register("listed", Q_R_CONFLICT)
        listing = client.constraints()
        assert "listed" in listing
        assert listing["listed"]["query"].startswith("q()")
        client.unregister("listed")

    def test_metrics_exposition(self, client):
        client.ping()
        text = client.metrics_text()
        assert 'repro_requests_total{op="ping"}' in text
        assert "repro_queue_depth" in text
        assert "repro_solve_seconds_bucket" in text
        assert "repro_registered_constraints" in text

    def test_domain_error_reaches_client(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("ghost")
        assert excinfo.value.code == "error"
        assert "ghost" in str(excinfo.value)

    def test_unknown_op_is_bad_request(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("frobnicate")
        assert excinfo.value.code == "bad-request"

    def test_pipelined_requests_one_connection(self, client):
        client.register("pipelined", Q_R_CONFLICT)
        for _ in range(3):
            assert client.status("pipelined")["satisfied"] is True
        client.unregister("pipelined")

    def test_absorb_commits_straight_to_state(self, client):
        client.register("boom", Q_S_BOOM)
        assert client.status("boom")["satisfied"] is True
        invalidated = client.absorb(Transaction({"S": [("boom",)]}, tx_id="ABS"))
        assert invalidated == ["boom"]
        verdict = client.status("boom")
        assert verdict["cached"] is False
        assert verdict["satisfied"] is False
        client.unregister("boom")

    def test_shards_describe_single_monitor(self, client):
        assert client.shards() == {"sharded": False, "shards": 1}


class TestShardedService:
    def test_round_trip_through_sharded_monitor(self):
        from repro.service.shard import ShardedMonitor

        monitor = ShardedMonitor(two_relation_db(), shards=2)
        service = ConstraintService(monitor, metrics=MetricsRegistry())
        handle = serve_in_thread(service)
        try:
            with ServiceClient(handle.host, handle.port) as client:
                client.register("on-r", Q_R_CONFLICT)
                client.register("on-s", Q_S_BOOM)
                described = client.shards()
                assert described["sharded"] is True
                assert described["shards"] == 2
                assert {
                    len(d["constraints"]) for d in described["detail"]
                } == {1}

                assert client.status("on-r")["satisfied"] is True
                assert client.status("on-s")["satisfied"] is True
                invalidated = client.issue(
                    Transaction({"S": [("boom",)]}, tx_id="T-S")
                )
                assert invalidated == ["on-s"]
                assert client.status("on-s")["satisfied"] is False
                assert client.commit("T-S") == ["on-s"]
                assert client.absorb(
                    Transaction({"R": [(3, 3, "a")]}, tx_id="ABS")
                ) == ["on-r"]
                assert client.ping()["pong"] is True
                text = client.metrics_text()
                assert 'repro_shard_constraints{shard="0"} 1' in text
                assert 'repro_shard_constraints{shard="1"} 1' in text
        finally:
            handle.stop()
            monitor.close()


class TestDeadlines:
    def test_deadline_expires_but_operation_completes(self):
        release = threading.Event()

        def slow_issue(op, args):
            if op == "issue":
                release.wait(timeout=5.0)

        checker, service, handle = running_service(before_op=slow_issue)
        try:
            with ServiceClient(handle.host, handle.port) as client:
                thread_error: list[ServiceError] = []

                def issue_with_deadline():
                    try:
                        client.issue(
                            Transaction({"R": [(9, 9, "a")]}, tx_id="SLOW"),
                            deadline=0.05,
                        )
                    except ServiceError as error:
                        thread_error.append(error)

                worker = threading.Thread(target=issue_with_deadline)
                worker.start()
                worker.join(timeout=10.0)
                assert thread_error and thread_error[0].code == "deadline"
                release.set()

            with ServiceClient(handle.host, handle.port) as client:
                # The mutation was applied despite the expired deadline:
                # forgetting the transaction succeeds.
                assert client.forget("SLOW") == []
                text = client.metrics_text()
                assert "repro_deadline_timeouts_total 1" in text
        finally:
            handle.stop()
            checker.close()


class TestBackpressure:
    def test_busy_rejection_carries_retry_after(self):
        release = threading.Event()

        def slow_status(op, args):
            if op == "status":
                release.wait(timeout=5.0)

        checker, service, handle = running_service(
            before_op=slow_status, queue_limit=1, retry_after=0.02
        )
        try:
            with ServiceClient(handle.host, handle.port) as setup:
                setup.register("slow", Q_R_CONFLICT)

            outcomes: list[str] = []
            lock = threading.Lock()

            def hammer():
                with ServiceClient(handle.host, handle.port) as client:
                    try:
                        client.status("slow", deadline=10.0)
                        result = "ok"
                    except ServiceError as error:
                        result = error.code
                        if error.code == "busy":
                            assert error.retry_after == 0.02
                with lock:
                    outcomes.append(result)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            # Let all four requests land before releasing the solver:
            # 1 in flight + 1 queued; the other two must bounce.
            deadline = time.time() + 5.0
            while time.time() < deadline:
                with lock:
                    if len(outcomes) >= 2:
                        break
                time.sleep(0.01)
            release.set()
            for thread in threads:
                thread.join(timeout=10.0)

            assert outcomes.count("busy") == 2
            assert outcomes.count("ok") == 2
            with ServiceClient(handle.host, handle.port) as client:
                assert "repro_rejected_busy_total 2" in client.metrics_text()
        finally:
            release.set()
            handle.stop()
            checker.close()

    def test_call_with_retry_rides_out_busy(self):
        slow = {"delay": 0.15}

        def slow_once(op, args):
            if op == "status":
                time.sleep(slow.get("delay", 0))
                slow["delay"] = 0.0

        checker, service, handle = running_service(
            before_op=slow_once, queue_limit=1, retry_after=0.02
        )
        try:
            with ServiceClient(handle.host, handle.port) as setup:
                setup.register("slow", Q_R_CONFLICT)

            def occupy():
                with ServiceClient(handle.host, handle.port) as client:
                    client.call_with_retry(
                        "status", name="slow", max_attempts=50, deadline=10.0
                    )

            blockers = [threading.Thread(target=occupy) for _ in range(2)]
            for thread in blockers:
                thread.start()
            time.sleep(0.05)  # both in the pipe: 1 solving + 1 queued
            with ServiceClient(handle.host, handle.port) as client:
                verdict = client.call_with_retry(
                    "status", name="slow", max_attempts=50, deadline=10.0
                )
                assert verdict["satisfied"] is True
            for thread in blockers:
                thread.join(timeout=10.0)
        finally:
            handle.stop()
            checker.close()


class TestGracefulShutdown:
    def test_stop_drains_in_flight_requests(self):
        entered = threading.Event()
        release = threading.Event()

        def slow_status(op, args):
            if op == "status":
                entered.set()
                release.wait(timeout=5.0)

        checker, service, handle = running_service(
            before_op=slow_status, drain_timeout=10.0
        )
        try:
            with ServiceClient(handle.host, handle.port) as setup:
                setup.register("slow", Q_R_CONFLICT)

            answers: list[dict] = []

            def in_flight():
                with ServiceClient(handle.host, handle.port) as client:
                    answers.append(client.status("slow", deadline=10.0))

            worker = threading.Thread(target=in_flight)
            worker.start()
            assert entered.wait(timeout=5.0)

            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            time.sleep(0.05)
            release.set()
            worker.join(timeout=10.0)
            stopper.join(timeout=10.0)

            # The in-flight verdict was computed and delivered, not dropped.
            assert answers and answers[0]["satisfied"] is True

            # And the listener is really gone.
            with pytest.raises(OSError):
                socket.create_connection(
                    (handle.host, handle.port), timeout=1.0
                ).close()
        finally:
            release.set()
            handle.stop()
            checker.close()


class TestUnregisterObservability:
    def test_unregister_drops_labelled_series_and_ledger_state(self):
        """Regression: register/unregister churn must not leak the
        per-constraint latency series or the constraint's ledger
        entries (both are keyed by the constraint's name)."""
        checker, service, handle = running_service()
        try:
            with ServiceClient(handle.host, handle.port) as client:
                client.register("churny", Q_R_CONFLICT)
                client.status("churny")
                text = service.metrics.render_text()
                assert 'constraint="churny"' in text
                assert service.monitor.ledger.entry_count >= 1
                client.unregister("churny")
                text = service.metrics.render_text()
                assert 'constraint="churny"' not in text
                assert service.monitor.ledger.entry_count == 0
                # Other constraints' series survive the removal.
                client.register("keeper", Q_R_ABSENT)
                client.status("keeper")
                client.register("gone", Q_R_TWO_A)
                client.status("gone")
                client.unregister("gone")
                text = service.metrics.render_text()
                assert 'constraint="keeper"' in text
                assert 'constraint="gone"' not in text
        finally:
            handle.stop()
            checker.close()
