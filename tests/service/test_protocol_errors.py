"""Protocol hardening: a hostile or buggy peer must get a structured
error back, and the connection (and the server) must keep serving.

Everything here talks raw sockets on purpose — the stock
:class:`ServiceClient` cannot even produce most of these frames.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.core.checker import DCSatChecker
from repro.core.monitor import ConstraintMonitor
from repro.service import protocol
from repro.service.metrics import MetricsRegistry
from repro.service.server import ConstraintService, serve_in_thread

from tests.service.test_server import two_relation_db


@pytest.fixture
def server():
    service = ConstraintService(
        ConstraintMonitor(DCSatChecker(two_relation_db())),
        metrics=MetricsRegistry(),
    )
    handle = serve_in_thread(service)
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def sock(server):
    with socket.create_connection((server.host, server.port), timeout=30.0) as s:
        s.settimeout(30.0)
        yield s


def send_raw(sock, payload: bytes) -> None:
    sock.sendall(payload)


def read_response(sock) -> dict:
    file = sock.makefile("rb")
    line = file.readline()
    assert line, "server closed the connection instead of answering"
    return json.loads(line)


def roundtrip(sock, request: dict) -> dict:
    send_raw(sock, json.dumps(request).encode() + b"\n")
    return read_response(sock)


def assert_bad_request(response: dict, request_id=None):
    assert response["ok"] is False
    assert response["code"] == "bad-request"
    assert response["id"] == request_id
    assert isinstance(response["error"], str) and response["error"]


def assert_still_serving(sock):
    """The hardening contract: after any bad frame, the same connection
    still answers a well-formed request."""
    response = roundtrip(sock, {"id": 99, "op": "ping", "args": {}})
    assert response["ok"] is True
    assert response["id"] == 99


class TestMalformedFrames:
    def test_malformed_json_line(self, sock):
        send_raw(sock, b'{"id": 1, "op": "ping", not json at all\n')
        assert_bad_request(read_response(sock))
        assert_still_serving(sock)

    def test_non_object_request(self, sock):
        send_raw(sock, b'["not", "a", "request"]\n')
        assert_bad_request(read_response(sock))
        assert_still_serving(sock)

    def test_empty_line_is_skipped(self, sock):
        # Blank keep-alive lines are tolerated silently.
        send_raw(sock, b"\n\n")
        assert_still_serving(sock)

    def test_oversized_frame_is_rejected_not_fatal(self, sock):
        # One frame over the 4 MiB line limit: the server must answer
        # with a structured error, resynchronize on the newline, and
        # keep the connection alive.
        filler = "x" * (protocol.MAX_LINE_BYTES + 1024)
        frame = json.dumps({"id": 7, "op": "ping", "args": {"pad": filler}})
        send_raw(sock, frame.encode() + b"\n")
        response = read_response(sock)
        assert response["ok"] is False
        assert response["code"] == "bad-request"
        assert "exceeds" in response["error"]
        assert_still_serving(sock)

    def test_two_oversized_frames_back_to_back(self, sock):
        filler = b"y" * (protocol.MAX_LINE_BYTES + 1)
        file = sock.makefile("rb")
        for _ in range(2):
            send_raw(sock, filler + b"\n")
            response = json.loads(file.readline())
            assert response["code"] == "bad-request"
        assert_still_serving(sock)


class TestMalformedRequests:
    def test_unknown_op(self, sock):
        response = roundtrip(sock, {"id": 3, "op": "explode", "args": {}})
        assert_bad_request(response, request_id=3)
        assert_still_serving(sock)

    def test_non_string_op(self, sock):
        response = roundtrip(sock, {"id": 4, "op": 17, "args": {}})
        assert_bad_request(response, request_id=4)
        assert_still_serving(sock)

    def test_non_dict_args(self, sock):
        response = roundtrip(sock, {"id": 5, "op": "ping", "args": [1, 2]})
        assert_bad_request(response, request_id=5)
        assert_still_serving(sock)

    def test_missing_required_arg(self, sock):
        response = roundtrip(sock, {"id": 6, "op": "status", "args": {}})
        assert_bad_request(response, request_id=6)
        assert "name" in response["error"]
        assert_still_serving(sock)

    def test_errors_counted_not_crashed(self, server, sock):
        roundtrip(sock, {"id": 8, "op": "nope", "args": {}})
        send_raw(sock, b"garbage\n")
        read_response(sock)
        assert_still_serving(sock)
        text = server.service.metrics.render_text()
        assert "repro_request_errors_total" in text


class TestConnectionIsolation:
    def test_bad_connection_does_not_poison_others(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=30.0
        ) as bad, socket.create_connection(
            (server.host, server.port), timeout=30.0
        ) as good:
            bad.settimeout(30.0)
            good.settimeout(30.0)
            send_raw(bad, b"z" * (protocol.MAX_LINE_BYTES + 1) + b"\n")
            read_response(bad)  # structured rejection
            assert_still_serving(good)
            assert_still_serving(bad)
