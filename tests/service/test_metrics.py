"""The in-process metrics registry and its text exposition."""

import threading

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_up_and_down(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc()
        gauge.dec(4)
        assert gauge.value == 7

    def test_histogram_buckets_cumulative(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        buckets = dict(histogram.cumulative_buckets())
        assert buckets["0.1"] == 1
        assert buckets["1"] == 3
        assert buckets["10"] == 4
        assert buckets["+Inf"] == 5

    def test_histogram_boundary_is_inclusive(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(1.0)
        assert dict(histogram.cumulative_buckets())["1"] == 1


class TestRegistry:
    def test_same_series_is_shared(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_requests_total", labels={"op": "status"})
        b = registry.counter("repro_requests_total", labels={"op": "status"})
        other = registry.counter("repro_requests_total", labels={"op": "issue"})
        assert a is b and a is not other

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(ValueError):
            registry.gauge("repro_x")

    def test_render_text_format(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_requests_total", "Requests.", labels={"op": "status"}
        ).inc(3)
        registry.gauge("repro_queue_depth", "Depth.").set(2)
        registry.histogram(
            "repro_solve_seconds", "Solve.", buckets=(0.5, 1.0)
        ).observe(0.7)
        text = registry.render_text()
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{op="status"} 3' in text
        assert "# HELP repro_queue_depth Depth." in text
        assert "repro_queue_depth 2" in text
        assert 'repro_solve_seconds_bucket{le="0.5"} 0' in text
        assert 'repro_solve_seconds_bucket{le="1"} 1' in text
        assert 'repro_solve_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_solve_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        # Constraint names are user-supplied and become label values; a
        # backslash, quote or newline must not corrupt the exposition.
        registry = MetricsRegistry()
        registry.counter(
            "repro_checks_total",
            "Checks.",
            labels={"constraint": 'back\\slash "quoted"\nsecond line'},
        ).inc()
        text = registry.render_text()
        expected = (
            'repro_checks_total{constraint='
            '"back\\\\slash \\"quoted\\"\\nsecond line"} 1'
        )
        assert expected in text
        # The raw newline never leaks into the output mid-sample.
        assert '"quoted"\nsecond line' not in text

    def test_numeric_label_values_coerced(self):
        registry = MetricsRegistry()
        registry.gauge("repro_shard_pending", labels={"shard": 3}).set(7)
        assert 'repro_shard_pending{shard="3"} 7' in registry.render_text()

    def test_remove_series_drops_one_labelling(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_constraint_check_seconds", "t", labels={"constraint": "a"}
        ).observe(0.1)
        registry.histogram(
            "repro_constraint_check_seconds", "t", labels={"constraint": "b"}
        ).observe(0.2)
        assert registry.remove_series(
            "repro_constraint_check_seconds", {"constraint": "a"}
        )
        text = registry.render_text()
        assert 'constraint="a"' not in text
        assert 'constraint="b"' in text
        # Idempotent: a second removal (or an unknown family) is a no-op.
        assert not registry.remove_series(
            "repro_constraint_check_seconds", {"constraint": "a"}
        )
        assert not registry.remove_series("no_such_family", {"x": "y"})
        # The family survives, so re-registering restarts a fresh series.
        registry.histogram(
            "repro_constraint_check_seconds", "t", labels={"constraint": "a"}
        ).observe(0.3)
        assert 'constraint="a"' in registry.render_text()

    def test_concurrent_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000

    def test_labelled_histogram_rendering(self):
        # Per-constraint latency series: the le bucket label must merge
        # with the series labels inside one brace group, while _sum and
        # _count keep the plain label set.
        registry = MetricsRegistry()
        registry.histogram(
            "repro_constraint_check_seconds",
            "Latency.",
            labels={"constraint": "no-double-spend"},
            buckets=(0.5, 1.0),
        ).observe(0.7)
        registry.histogram(
            "repro_constraint_check_seconds",
            labels={"constraint": "hot-wallet"},
            buckets=(0.5, 1.0),
        ).observe(0.1)
        text = registry.render_text()
        assert (
            'repro_constraint_check_seconds_bucket'
            '{constraint="no-double-spend",le="0.5"} 0' in text
        )
        assert (
            'repro_constraint_check_seconds_bucket'
            '{constraint="no-double-spend",le="1"} 1' in text
        )
        assert (
            'repro_constraint_check_seconds_bucket'
            '{constraint="hot-wallet",le="0.5"} 1' in text
        )
        assert (
            'repro_constraint_check_seconds_sum{constraint="hot-wallet"}'
            in text
        )
        assert (
            'repro_constraint_check_seconds_count'
            '{constraint="no-double-spend"} 1' in text
        )

    def test_labelled_histogram_escaping_in_merged_labels(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_constraint_check_seconds",
            labels={"constraint": 'odd "name"\\here'},
            buckets=(1.0,),
        ).observe(0.5)
        text = registry.render_text()
        assert (
            'repro_constraint_check_seconds_bucket'
            '{constraint="odd \\"name\\"\\\\here",le="1"} 1' in text
        )


class TestSnapshots:
    def test_getters_are_locked_and_snapshot_consistent(self):
        histogram = Histogram(buckets=(0.5,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                histogram.observe(1.0)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(2000):
                total, count = histogram.snapshot()
                # Every observation adds exactly 1.0, so a consistent
                # pair always satisfies sum == count; a torn read (new
                # sum with old count, or vice versa) breaks it.
                assert total == pytest.approx(float(count))
        finally:
            stop.set()
            thread.join()

    def test_export_is_self_consistent(self):
        histogram = Histogram(buckets=(0.5,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                histogram.observe(1.0)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(2000):
                buckets, total, count = histogram.export()
                assert dict(buckets)["+Inf"] == count
                assert total == pytest.approx(float(count))
        finally:
            stop.set()
            thread.join()


class TestExemplars:
    def test_observe_stores_latest_exemplar(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(0.5)
        assert histogram.exemplar() is None
        histogram.observe(0.25, exemplar="trace-one")
        histogram.observe(0.75, exemplar="trace-two")
        trace_id, value, unix_time = histogram.exemplar()
        assert trace_id == "trace-two"
        assert value == 0.75
        assert unix_time > 0

    def test_render_emits_exemplar_comment(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_check_seconds", "t", labels={"constraint": "c1"}
        ).observe(0.1, exemplar="abc123")
        text = registry.render_text()
        assert (
            '# EXEMPLAR repro_check_seconds{constraint="c1"} '
            'trace_id="abc123" value=0.1 timestamp='
        ) in text
        # The comment sits after its series' count line.
        lines = text.splitlines()
        count_at = lines.index('repro_check_seconds_count{constraint="c1"} 1')
        assert lines[count_at + 1].startswith("# EXEMPLAR")

    def test_unexemplared_series_render_without_comment(self):
        registry = MetricsRegistry()
        registry.histogram("plain_seconds", "t").observe(0.1)
        assert "# EXEMPLAR" not in registry.render_text()

    def test_exemplar_trace_id_is_escaped(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(0.1, exemplar='tr"ace\nid')
        registry = MetricsRegistry()
        registry._series(
            "histogram", "h", "", None, lambda: histogram
        )
        assert 'trace_id="tr\\"ace\\nid"' in registry.render_text()
