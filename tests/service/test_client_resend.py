"""Resend safety: after an ambiguous transport failure (request sent,
reply never arrived) the client must resend idempotent reads but NEVER
a mutating op — the double-apply the fabric's journal semantics forbid.

A scripted fake server misbehaves deterministically per connection, and
the request log proves how many times each op actually arrived.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service.client import ServiceClient


class ScriptedServer:
    """One scripted behavior per accepted connection, then ``serve``."""

    def __init__(self, behaviors):
        self._behaviors = list(behaviors)
        self.requests: list[str] = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.host, self.port = self._sock.getsockname()
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            behavior = self._behaviors.pop(0) if self._behaviors else "serve"
            threading.Thread(
                target=self._serve_conn, args=(conn, behavior), daemon=True
            ).start()

    def _serve_conn(self, conn, behavior):
        file = conn.makefile("rb")
        try:
            while True:
                line = file.readline()
                if not line:
                    return
                request = json.loads(line)
                self.requests.append(request["op"])
                reply = (
                    json.dumps(
                        {"id": request["id"], "ok": True, "result": {}}
                    ).encode()
                    + b"\n"
                )
                if behavior == "drop_reply":
                    return  # op processed, reply lost
                if behavior == "truncate":
                    conn.sendall(reply[: len(reply) // 2])
                    return
                if behavior == "garbage":
                    conn.sendall(b"}{ not json\n")
                    return
                if behavior == "stall":
                    time.sleep(1.0)
                    return
                conn.sendall(reply)
        except OSError:
            return
        finally:
            for closer in (file, conn):
                try:
                    closer.close()
                except OSError:
                    pass

    def close(self):
        # shutdown() first: close() alone leaves the accept thread
        # blocked and the port bound (the in-flight accept pins the
        # kernel socket), silently swallowing later connections.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


@pytest.fixture
def scripted():
    servers = []

    def make(*behaviors):
        server = ScriptedServer(behaviors)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


def test_idempotent_op_is_resent_after_lost_reply(scripted):
    server = scripted("drop_reply")
    with ServiceClient(server.host, server.port, timeout=5.0) as client:
        assert client.call("ping") == {}
    assert server.requests == ["ping", "ping"]


def test_mutating_op_is_never_resent_after_lost_reply(scripted):
    server = scripted("drop_reply")
    with ServiceClient(server.host, server.port, timeout=5.0) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.call("issue", tx={"id": "T1", "facts": {}})
        assert excinfo.value.code == "unavailable"
    assert server.requests == ["issue"]  # exactly once


def test_mutating_op_is_never_resent_after_truncated_reply(scripted):
    server = scripted("truncate")
    with ServiceClient(server.host, server.port, timeout=5.0) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.call("commit", tx_id="T1")
        assert excinfo.value.code == "unavailable"
    assert server.requests == ["commit"]


def test_mutating_op_is_never_resent_after_unparseable_reply(scripted):
    server = scripted("garbage")
    with ServiceClient(server.host, server.port, timeout=5.0) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.call("absorb", tx={"id": "T2", "facts": {}})
        assert excinfo.value.code == "unavailable"
    assert server.requests == ["absorb"]


def test_mutating_op_is_never_resent_after_read_timeout(scripted):
    server = scripted("stall")
    with ServiceClient(server.host, server.port, timeout=0.2) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.call("register", name="c", query="q() <- A(k, v)")
        assert excinfo.value.code == "unavailable"
    assert server.requests == ["register"]


def test_idempotent_read_recovers_from_truncated_reply(scripted):
    server = scripted("truncate")
    with ServiceClient(server.host, server.port, timeout=5.0) as client:
        assert client.call("status", name="c") == {}
        assert client.retries >= 1
    assert server.requests == ["status", "status"]


def test_unknown_op_counts_as_mutating(scripted):
    # Forward compatibility: an op this client build does not know must
    # get the conservative (no-resend) treatment.
    server = scripted("drop_reply")
    with ServiceClient(server.host, server.port, timeout=5.0) as client:
        with pytest.raises(ServiceError):
            client.call("frobnicate")
    assert server.requests == ["frobnicate"]
