"""End-to-end observability: a check through the service client returns
a trace id whose ``/tracez`` entry holds the whole nested span tree —
queue wait, solve, monitor, solver internals, and spans produced inside
pool fork workers — while ``/metrics`` and ``/healthz`` answer over the
same HTTP endpoint.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing

import pytest

from repro.core.monitor import ConstraintMonitor
from repro.service.client import ServiceClient
from repro.service.metrics import MetricsRegistry
from repro.service.pool import PooledDCSatChecker
from repro.service.server import ConstraintService, serve_in_thread
from repro.service.shard import ShardedMonitor

from tests.service.conftest import Q_CONFLICT, Q_TWO_A, component_db, r_tx

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool span capture exercises fork workers",
)


def http_get(host: str, port: int, target: str) -> tuple[int, str]:
    conn = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def fetch_trace(handle, trace_id: str) -> dict:
    status, body = http_get(
        handle.http_host, handle.http_port, f"/tracez?trace_id={trace_id}"
    )
    assert status == 200
    traces = json.loads(body)["traces"]
    assert len(traces) == 1, f"trace {trace_id} not in the ring"
    return traces[0]


def span_names(trace: dict) -> set[str]:
    return {span["name"] for span in trace["spans"]}


@needs_fork
class TestPooledEndToEnd:
    @pytest.fixture(scope="class")
    def server(self):
        checker = PooledDCSatChecker(
            component_db(components=4, keys=2), max_workers=2
        )
        monitor = ConstraintMonitor(checker)
        service = ConstraintService(monitor, metrics=MetricsRegistry())
        handle = serve_in_thread(service, http_port=0)
        yield handle
        handle.stop()
        checker.close()

    @pytest.fixture()
    def client(self, server):
        with ServiceClient(server.host, server.port) as client:
            yield client
            for name in list(client.constraints()):
                client.unregister(name)

    def test_check_returns_a_fully_nested_trace(self, server, client):
        client.register("conflict", Q_CONFLICT)
        verdict = client.status("conflict")
        assert verdict["satisfied"] is True
        assert client.last_trace_id is not None

        trace = fetch_trace(server, client.last_trace_id)
        names = span_names(trace)
        # The event-loop / solver-thread side of the request...
        assert {"request", "queue_wait", "solve", "monitor.status"} <= names
        # ...the checker internals...
        assert {"dcsat.check", "parallel_dispatch"} <= names
        # ...and the spans captured inside the pool's fork workers.
        assert {"solve_component", "clique_sweep"} <= names

        by_name: dict[str, list[dict]] = {}
        for span in trace["spans"]:
            by_name.setdefault(span["name"], []).append(span)
        ids = {span["span_id"]: span for span in trace["spans"]}
        root = by_name["request"][0]
        assert root["attributes"]["op"] == "status"
        assert by_name["queue_wait"][0]["parent_id"] == root["span_id"]
        assert by_name["solve"][0]["parent_id"] == root["span_id"]
        # Worker-origin spans are re-parented under the dispatch span
        # and prove their origin with the worker's pid.
        dispatch = by_name["parallel_dispatch"][0]
        for component in by_name["solve_component"]:
            assert component["parent_id"] == dispatch["span_id"]
            assert component["attributes"]["worker_pid"] > 0
        for sweep in by_name["clique_sweep"]:
            parent = ids[sweep["parent_id"]]
            assert parent["name"] == "solve_component"

    def test_metrics_has_per_constraint_latency_series(self, server, client):
        client.register("two-a", Q_TWO_A)
        client.status("two-a")
        status, body = http_get(server.http_host, server.http_port, "/metrics")
        assert status == 200
        assert (
            'repro_constraint_check_seconds_bucket{constraint="two-a",le='
            in body
        )
        assert (
            'repro_constraint_check_seconds_count{constraint="two-a"} 1'
            in body
        )
        assert "repro_queue_depth" in body

    def test_healthz_reports_queue_and_pool(self, server, client):
        client.ping()
        status, body = http_get(server.http_host, server.http_port, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["queue_limit"] == server.service.queue_limit
        assert payload["pools"][0]["max_workers"] == 2

    def test_perfz_exposes_the_cost_model_end_to_end(self, server, client):
        client.register("perf-conflict", Q_CONFLICT)
        client.status("perf-conflict")
        status, body = http_get(server.http_host, server.http_port, "/perfz")
        assert status == 200
        payload = json.loads(body)
        # The pooled check above fed the process-wide cost model, and
        # the scrape renders it: observation counts plus per-bucket
        # EWMA rows tagged with engine and planner.
        model = payload["cost_model"]
        assert model["observations"] >= 1
        assert model["estimates"], "no cost estimates after a pooled check"
        row = model["estimates"][0]
        assert {"size_bucket", "engine", "planner", "ewma_seconds", "samples"} <= set(row)
        # Histogram summaries carry derived quantiles for the hot paths.
        for summary in payload["histograms"].values():
            for series in summary.values():
                assert {"count", "sum", "p50", "p95"} <= set(series)
        # And the build stamp ties the scrape to a revision.
        assert payload["build"]["git_rev"]
        assert payload["build"]["version"]
        assert payload["build"]["uptime_seconds"] >= 0

    def test_healthz_carries_the_build_stamp(self, server, client):
        client.ping()
        status, body = http_get(server.http_host, server.http_port, "/healthz")
        assert status == 200
        build = json.loads(body)["build"]
        assert set(build) == {"git_rev", "version", "python", "uptime_seconds"}

    def test_client_supplied_trace_id_is_honored(self, server, client):
        client.register("supplied", Q_CONFLICT)
        client.status("supplied", deadline=30.0)
        result = client.call("status", trace="my-correlation-id", name="supplied")
        assert result["cached"] is True
        assert client.last_trace_id == "my-correlation-id"
        trace = fetch_trace(server, "my-correlation-id")
        assert {"request", "solve", "monitor.status"} <= span_names(trace)

    def test_error_responses_carry_the_trace_id(self, server, client):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            client.status("never-registered")
        assert client.last_trace_id is not None
        trace = fetch_trace(server, client.last_trace_id)
        assert "request" in span_names(trace)


class TestShardedEndToEnd:
    @pytest.fixture(scope="class")
    def server(self):
        monitor = ShardedMonitor(component_db(components=4, keys=2), shards=2)
        service = ConstraintService(monitor, metrics=MetricsRegistry())
        handle = serve_in_thread(service, http_port=0)
        yield handle
        handle.stop()
        monitor.close()

    def test_routing_and_solve_spans_cross_the_shards(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.register("conflict", Q_CONFLICT)
            client.issue(r_tx("fresh", 0, 0, "c"))
            issue_trace = fetch_trace(server, client.last_trace_id)
            assert "shard.route" in span_names(issue_trace)
            route = next(
                span
                for span in issue_trace["spans"]
                if span["name"] == "shard.route"
            )
            assert route["attributes"]["kind"] == "issue"
            assert (
                route["attributes"]["applied"]
                + route["attributes"]["skipped"]
                == 2
            )

            client.status("conflict")
            status_trace = fetch_trace(server, client.last_trace_id)
            assert {
                "monitor.status",
                "dcsat.check",
                "clique_sweep",
            } <= span_names(status_trace)


class TestEngineObservability:
    """Engine-tagged metrics and trace exemplars through the service."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.core.checker import DCSatChecker

        checker = DCSatChecker(component_db(components=2, keys=2))
        monitor = ConstraintMonitor(checker)
        service = ConstraintService(monitor, metrics=MetricsRegistry())
        handle = serve_in_thread(service, http_port=0)
        yield handle
        handle.stop()
        checker.close()

    def test_exemplar_links_the_scrape_to_tracez(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.register("conflict", Q_CONFLICT)
            client.status("conflict")
            trace_id = client.last_trace_id
            status, body = http_get(
                server.http_host, server.http_port, "/metrics"
            )
        assert status == 200
        assert (
            '# EXEMPLAR repro_constraint_check_seconds'
            f'{{constraint="conflict"}} trace_id="{trace_id}"'
        ) in body
        # The linked trace exists and its solve span carries the same
        # latency the histogram observed.
        trace = fetch_trace(server, trace_id)
        solve = next(
            span for span in trace["spans"] if span["name"] == "solve"
        )
        assert solve["attributes"]["check_seconds"] >= 0

    def test_scrape_includes_default_registry_series(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.register("sweep", Q_TWO_A)
            client.status("sweep")
            status, body = http_get(
                server.http_host, server.http_port, "/metrics"
            )
        assert status == 200
        # The engines' world counter lives in the process-wide default
        # registry; the server folds it into the same scrape.
        assert 'repro_worlds_evaluated_total{engine="sync"}' in body


class TestAsyncEngineDispatch:
    """With a coroutine-native engine, status solves run on the event
    loop itself (``mode=async`` spans) and still verdict-match."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.core.checker import DCSatChecker

        checker = DCSatChecker(
            component_db(components=2, keys=2), engine="async"
        )
        monitor = ConstraintMonitor(checker)
        service = ConstraintService(monitor, metrics=MetricsRegistry())
        handle = serve_in_thread(service, http_port=0)
        yield handle
        handle.stop()
        checker.close()

    def test_status_solves_on_the_loop(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.register("conflict", Q_CONFLICT)
            verdict = client.status("conflict")
            assert verdict["satisfied"] is True
            trace = fetch_trace(server, client.last_trace_id)
        spans = {span["name"]: span for span in trace["spans"]}
        assert spans["solve"]["attributes"]["mode"] == "async"
        assert spans["monitor.status"]["attributes"]["mode"] == "async"
        assert spans["dcsat.check"]["attributes"]["mode"] == "async"

    def test_mutations_still_use_the_solver_thread(self, server):
        with ServiceClient(server.host, server.port) as client:
            client.register("two-a", Q_TWO_A)
            assert client.status("two-a")["satisfied"] is False
            invalidated = client.issue(r_tx("fresh-async", 0, 0, "c"))
            assert "two-a" in invalidated
            # The re-check after invalidation goes through the async
            # path again and still answers.
            assert client.status("two-a")["satisfied"] is False
